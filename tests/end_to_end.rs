//! End-to-end integration tests spanning every crate of the workspace:
//! datasets are generated with `maxrs-datagen`, stored through `maxrs-em`, and
//! solved with the algorithms of `maxrs-core` and `maxrs-baselines`, checking
//! that all of them agree with each other and with brute force.

use maxrs::baselines::{asb_tree_sweep, naive_sweep, Algorithm};
use maxrs::core::{brute_force_max_rs, rect_objective};
use maxrs::datagen::{Dataset, DatasetKind, WeightMode};
use maxrs::{
    exact_max_rs, load_objects, max_rs_in_memory, EmConfig, EmContext, ExactMaxRsOptions, RectSize,
};

/// The four algorithm implementations (three external, one in-memory) must
/// return the same maximum weight on every dataset family.
#[test]
fn all_algorithms_agree_on_every_dataset_family() {
    for kind in DatasetKind::ALL {
        let dataset = Dataset::generate(kind, 400, 123);
        let size = RectSize::square(40_000.0);
        let reference = max_rs_in_memory(&dataset.objects, size);

        let config = EmConfig::new(4096, 8 * 4096).unwrap();
        let ctx = EmContext::new(config);
        let file = load_objects(&ctx, &dataset.objects).unwrap();

        let exact = exact_max_rs(&ctx, &file, size, &ExactMaxRsOptions::default()).unwrap();
        let asb = asb_tree_sweep(&ctx, &file, size).unwrap();
        let naive = naive_sweep(&ctx, &file, size).unwrap();

        assert_eq!(exact.total_weight, reference.total_weight, "{kind:?}");
        assert_eq!(asb.total_weight, reference.total_weight, "{kind:?}");
        assert_eq!(naive.total_weight, reference.total_weight, "{kind:?}");
        assert!(reference.total_weight >= 1.0, "{kind:?}");

        // Every returned center must actually achieve the reported weight.
        for r in [&exact, &asb, &naive] {
            assert_eq!(
                rect_objective(&dataset.objects, r.center, size),
                r.total_weight,
                "{kind:?}"
            );
        }
    }
}

/// Weighted objects: the optimum maximizes total weight, not the object count.
#[test]
fn weighted_objects_are_respected_end_to_end() {
    let dataset = Dataset::generate_weighted(
        DatasetKind::Uniform,
        300,
        5,
        WeightMode::UniformRandom { max: 9.0 },
    );
    let size = RectSize::square(100_000.0);
    let reference = max_rs_in_memory(&dataset.objects, size);
    let brute = brute_force_max_rs(&dataset.objects, size);
    // Weights are arbitrary floats here, so sums computed in different orders
    // may differ in the last bits; compare with a relative tolerance.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        close(reference.total_weight, brute.total_weight),
        "{} vs {}",
        reference.total_weight,
        brute.total_weight
    );

    let ctx = EmContext::new(EmConfig::new(4096, 8 * 4096).unwrap());
    let exact = maxrs::exact_max_rs_from_objects(
        &ctx,
        &dataset.objects,
        size,
        &ExactMaxRsOptions::default(),
    )
    .unwrap();
    assert!(
        close(exact.total_weight, brute.total_weight),
        "{} vs {}",
        exact.total_weight,
        brute.total_weight
    );
}

/// The answer must be invariant to the EM configuration (buffer and block
/// sizes only change the I/O cost, never the result).
#[test]
fn answers_are_invariant_to_memory_configuration() {
    let dataset = Dataset::generate(DatasetKind::Gaussian, 1500, 9);
    let size = RectSize::square(20_000.0);
    let mut weights = Vec::new();
    for (block, buffer_blocks) in [(1024usize, 4usize), (4096, 8), (4096, 64), (512, 16)] {
        let ctx = EmContext::new(EmConfig::new(block, block * buffer_blocks).unwrap());
        let r = maxrs::exact_max_rs_from_objects(
            &ctx,
            &dataset.objects,
            size,
            &ExactMaxRsOptions::default(),
        )
        .unwrap();
        weights.push(r.total_weight);
    }
    assert!(
        weights.windows(2).all(|w| w[0] == w[1]),
        "weights = {weights:?}"
    );
}

/// I/O ordering across a cardinality sweep: ExactMaxRS scales near-linearly
/// while the baselines blow up, reproducing the qualitative shape of Fig. 12.
#[test]
fn io_scaling_reproduces_figure12_shape() {
    let config = EmConfig::new(4096, 8 * 4096).unwrap();
    let size = RectSize::square(1000.0);
    let mut exact_ios = Vec::new();
    let mut naive_ios = Vec::new();
    for n in [400usize, 800] {
        let dataset = Dataset::generate(DatasetKind::Uniform, n, 77);
        let exact = maxrs_bench_run(Algorithm::ExactMaxRs, config, &dataset, size);
        let asb = maxrs_bench_run(Algorithm::AsbTree, config, &dataset, size);
        let naive = maxrs_bench_run(Algorithm::NaiveSweep, config, &dataset, size);
        assert!(exact < asb, "n={n}: exact {exact} < asb {asb}");
        assert!(asb < naive, "n={n}: asb {asb} < naive {naive}");
        exact_ios.push(exact);
        naive_ios.push(naive);
    }
    // Doubling N roughly quadruples the naive cost but far less than doubles
    // the advantage ... verify growth factors.
    let exact_growth = exact_ios[1] as f64 / exact_ios[0] as f64;
    let naive_growth = naive_ios[1] as f64 / naive_ios[0] as f64;
    assert!(
        naive_growth > exact_growth,
        "naive must grow faster (naive {naive_growth:.2}x vs exact {exact_growth:.2}x)"
    );
}

fn maxrs_bench_run(
    algorithm: Algorithm,
    config: EmConfig,
    dataset: &Dataset,
    size: RectSize,
) -> u64 {
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &dataset.objects).unwrap();
    ctx.reset_stats();
    match algorithm {
        Algorithm::ExactMaxRs => {
            exact_max_rs(&ctx, &file, size, &ExactMaxRsOptions::default()).unwrap();
        }
        Algorithm::AsbTree => {
            asb_tree_sweep(&ctx, &file, size).unwrap();
        }
        Algorithm::NaiveSweep => {
            naive_sweep(&ctx, &file, size).unwrap();
        }
    }
    ctx.stats().total()
}

/// Degenerate inputs must not panic anywhere in the pipeline.
#[test]
fn degenerate_inputs_are_handled_gracefully() {
    let ctx = EmContext::new(EmConfig::new(4096, 8 * 4096).unwrap());
    let size = RectSize::square(10.0);

    // Empty dataset.
    let r =
        maxrs::exact_max_rs_from_objects(&ctx, &[], size, &ExactMaxRsOptions::default()).unwrap();
    assert_eq!(r.total_weight, 0.0);

    // All objects at the same location.
    let same: Vec<_> = (0..500)
        .map(|_| maxrs::WeightedPoint::unit(5.0, 5.0))
        .collect();
    let r =
        maxrs::exact_max_rs_from_objects(&ctx, &same, size, &ExactMaxRsOptions::default()).unwrap();
    assert_eq!(r.total_weight, 500.0);

    // All objects on one vertical line (every slab boundary collapses).
    let line: Vec<_> = (0..500)
        .map(|i| maxrs::WeightedPoint::unit(100.0, i as f64))
        .collect();
    let opts = ExactMaxRsOptions {
        memory_rects: Some(50),
        fanout: Some(4),
        ..Default::default()
    };
    let r =
        maxrs::exact_max_rs_from_objects(&ctx, &line, RectSize::new(10.0, 50.0), &opts).unwrap();
    let reference = max_rs_in_memory(&line, RectSize::new(10.0, 50.0));
    assert_eq!(r.total_weight, reference.total_weight);

    // Zero-weight objects.
    let zeros: Vec<_> = (0..100)
        .map(|i| maxrs::WeightedPoint::at(i as f64, 0.0, 0.0))
        .collect();
    let r = maxrs::exact_max_rs_from_objects(&ctx, &zeros, size, &ExactMaxRsOptions::default())
        .unwrap();
    assert_eq!(r.total_weight, 0.0);
}
