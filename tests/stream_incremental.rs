//! Incremental-correctness suite for the streaming subsystem: replaying
//! random event sequences (≥10k events, coordinate ties and zero-weight
//! objects included) into a [`StreamEngine`] and asserting that
//! `StreamEngine::answer()` is **bit-identical** to a from-scratch
//! [`MaxRsEngine::run`] over the surviving object set at every checkpoint.
//!
//! The event sequences come from the shared generator
//! [`maxrs_datagen::event_stream`] — the same streams the `stream`
//! experiment harness replays — so a generator change that broke
//! reproducibility would fail here, not silently skew a benchmark.

use maxrs::{MaxRsEngine, Query, RectSize, WeightedPoint};
use maxrs_datagen::{event_stream, EventStreamConfig};
use maxrs_stream::{Event, StreamConfig, StreamEngine};
use proptest::prelude::*;

/// Replays `events` into a fresh engine and checks the incremental answer
/// against a from-scratch engine run on the survivors every
/// `checkpoint_every` events (and once at the end).  Also replays the
/// survivor set independently so a bookkeeping bug in `survivors()` cannot
/// mask itself.
fn assert_replay_matches_batch(
    events: &[Event],
    query: &Query,
    config: StreamConfig,
    checkpoint_every: usize,
) {
    let mut engine = StreamEngine::new(config).expect("valid stream config");
    let batch = MaxRsEngine::new();
    let mut reference: Vec<(u64, WeightedPoint)> = Vec::new();
    let mut checkpoints = 0usize;
    for (i, event) in events.iter().enumerate() {
        engine.apply(event).expect("generated events are valid");
        match *event {
            Event::Insert { id, object, .. } => reference.push((id, object)),
            Event::Delete { id, .. } => reference.retain(|&(rid, _)| rid != id),
            Event::Tick { .. } => {}
        }
        if (i + 1) % checkpoint_every == 0 || i + 1 == events.len() {
            let survivors: Vec<WeightedPoint> = reference.iter().map(|&(_, o)| o).collect();
            assert_eq!(
                engine.survivors(),
                survivors,
                "survivor bookkeeping diverged after {} events",
                i + 1
            );
            let incremental = engine.answer();
            let from_scratch = batch.run(&survivors, query).expect("batch run");
            assert_eq!(
                incremental.run.answer,
                from_scratch.answer,
                "incremental answer diverged from batch after {} events ({} survivors)",
                i + 1,
                survivors.len()
            );
            checkpoints += 1;
        }
    }
    assert!(checkpoints > 0, "at least one checkpoint must run");
}

/// The acceptance-criteria run: one ≥10k-event stream with ties and
/// zero-weight objects, checked against the batch engine at every
/// 250-event checkpoint.
#[test]
fn ten_thousand_event_replay_is_bit_identical_to_batch() {
    let cfg = EventStreamConfig {
        events: 12_000,
        ..Default::default()
    };
    let events = event_stream(&cfg, 42);
    assert!(events.len() >= 10_000);
    let size = RectSize::square(40_000.0);
    assert_replay_matches_batch(
        &events,
        &Query::max_rs(size),
        StreamConfig::max_rs(size),
        250,
    );
}

/// Top-k maintenance over the same stream family: the whole placement list
/// must match the batch greedy at every checkpoint.
#[test]
fn top_k_replay_is_bit_identical_to_batch() {
    let cfg = EventStreamConfig {
        events: 10_000,
        ..Default::default()
    };
    let events = event_stream(&cfg, 7);
    let size = RectSize::square(60_000.0);
    assert_replay_matches_batch(
        &events,
        &Query::top_k(size, 3),
        StreamConfig::top_k(size, 3),
        500,
    );
}

/// Sliding-window mode: the engine expires objects on its own; the reference
/// survivor set is reconstructed from the same window rule, and answers must
/// still be bit-identical.
#[test]
fn sliding_window_replay_matches_batch_on_window_survivors() {
    let cfg = EventStreamConfig {
        events: 10_000,
        window_skew: 0.7,
        ..Default::default()
    };
    let events = event_stream(&cfg, 21);
    let window = 400.0;
    let size = RectSize::square(50_000.0);
    let query = Query::max_rs(size);
    let mut engine = StreamEngine::new(StreamConfig::max_rs(size).with_window(window)).unwrap();
    let batch = MaxRsEngine::new();

    // Reference: (id, object, expiry) with the engine's window rule
    // (alive while now < insert_time + window; time never runs backwards).
    let mut reference: Vec<(u64, WeightedPoint, f64)> = Vec::new();
    let mut now = f64::NEG_INFINITY;
    for (i, event) in events.iter().enumerate() {
        engine.apply(event).unwrap();
        now = now.max(event.at());
        reference.retain(|&(_, _, exp)| now < exp);
        match *event {
            Event::Insert { id, object, .. } => reference.push((id, object, now + window)),
            Event::Delete { id, .. } => reference.retain(|&(rid, _, _)| rid != id),
            Event::Tick { .. } => {}
        }
        if (i + 1) % 500 == 0 || i + 1 == events.len() {
            let survivors: Vec<WeightedPoint> = reference.iter().map(|&(_, o, _)| o).collect();
            assert_eq!(engine.survivors(), survivors, "window survivors diverged");
            let incremental = engine.answer();
            let from_scratch = batch.run(&survivors, &query).unwrap();
            assert_eq!(incremental.run.answer, from_scratch.answer);
        }
    }
    // The window actually did something: fewer survivors than a windowless
    // replay would keep.
    let unwindowed_survivors = events
        .iter()
        .filter(|e| matches!(e, Event::Insert { .. }))
        .count()
        - events
            .iter()
            .filter(|e| matches!(e, Event::Delete { .. }))
            .count();
    assert!(engine.len() < unwindowed_survivors);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized stream shapes: seeds, delete pressure, tie densities and
    /// query sizes all vary; every case replays ≥10k events with periodic
    /// bit-identity checkpoints.
    #[test]
    fn random_streams_are_bit_identical_to_batch(
        seed in 0u64..1_000_000,
        delete_pct in 0u32..45,
        snap_pct in 0u32..80,
        skew_pct in 0u32..100,
        side in 10u32..90,
    ) {
        let cfg = EventStreamConfig {
            events: 10_000,
            delete_fraction: f64::from(delete_pct) / 100.0,
            snap_fraction: f64::from(snap_pct) / 100.0,
            window_skew: f64::from(skew_pct) / 100.0,
            ..Default::default()
        };
        let events = event_stream(&cfg, seed);
        let size = RectSize::square(f64::from(side) * 1_000.0);
        assert_replay_matches_batch(
            &events,
            &Query::max_rs(size),
            StreamConfig::max_rs(size),
            1_000,
        );
    }
}
