//! Property-based tests (proptest) of the core invariants:
//!
//! * the in-memory plane sweep equals brute force on arbitrary inputs,
//! * the external ExactMaxRS pipeline equals the in-memory sweep under
//!   arbitrary (tiny) memory configurations,
//! * ApproxMaxCRS never violates its approximation bound and never reports a
//!   weight its own center does not achieve,
//! * the external sort really sorts and preserves multiplicities,
//! * the exact MaxCRS reference is consistent with its own objective.

use maxrs::core::{
    brute_force_max_rs, circle_objective, closed_disk_weight, exact_max_crs_in_memory,
    rect_objective, ApproxMaxCrsOptions,
};
use maxrs::{
    approx_max_crs_from_objects, exact_max_rs_from_objects, max_rs_in_memory, EmConfig, EmContext,
    ExactMaxRsOptions, RectSize, WeightedPoint,
};
use maxrs_em::external_sort_by_key;
use proptest::prelude::*;

/// Strategy: a small cloud of weighted points with coordinates on a coarse
/// lattice, so that ties and exactly-touching rectangles (the tricky boundary
/// cases) appear frequently.
fn objects_strategy(max_len: usize) -> impl Strategy<Value = Vec<WeightedPoint>> {
    prop::collection::vec(
        (0i32..40, 0i32..40, 1u32..4)
            .prop_map(|(x, y, w)| WeightedPoint::at(x as f64, y as f64, w as f64)),
        1..max_len,
    )
}

/// Strategy: query rectangle sizes, including sizes that exactly match lattice
/// distances (boundary cases).
fn size_strategy() -> impl Strategy<Value = RectSize> {
    (1u32..20, 1u32..20).prop_map(|(w, h)| RectSize::new(w as f64, h as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plane_sweep_matches_brute_force(objects in objects_strategy(24), size in size_strategy()) {
        let fast = max_rs_in_memory(&objects, size);
        let slow = brute_force_max_rs(&objects, size);
        prop_assert_eq!(fast.total_weight, slow.total_weight);
        // The returned center achieves the reported weight under open-boundary
        // semantics.
        prop_assert_eq!(rect_objective(&objects, fast.center, size), fast.total_weight);
    }

    #[test]
    fn external_pipeline_matches_in_memory(
        objects in objects_strategy(60),
        size in size_strategy(),
        mem in 8usize..40,
        fanout in 2usize..6,
    ) {
        let reference = max_rs_in_memory(&objects, size);
        let ctx = EmContext::new(EmConfig::new(256, 1024).unwrap());
        let opts = ExactMaxRsOptions {
            memory_rects: Some(mem),
            fanout: Some(fanout),
            ..Default::default()
        };
        let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
        prop_assert_eq!(external.total_weight, reference.total_weight);
        prop_assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }

    #[test]
    fn approx_max_crs_bound_and_consistency(
        objects in objects_strategy(30),
        diameter in 2u32..25,
    ) {
        let diameter = diameter as f64;
        let ctx = EmContext::new(EmConfig::new(4096, 16 * 4096).unwrap());
        let approx = approx_max_crs_from_objects(
            &ctx,
            &objects,
            diameter,
            &ApproxMaxCrsOptions::default(),
        )
        .unwrap();
        // Reported weight is exactly what its center covers.
        prop_assert_eq!(
            circle_objective(&objects, approx.center, diameter),
            approx.total_weight
        );
        // 1/4-approximation against the (closed-disk) optimum.
        let exact = exact_max_crs_in_memory(&objects, diameter);
        prop_assert!(exact.total_weight >= approx.total_weight - 1e-9);
        prop_assert!(approx.total_weight >= 0.25 * exact.total_weight - 1e-9);
    }

    #[test]
    fn exact_crs_reference_is_self_consistent(
        objects in objects_strategy(25),
        diameter in 2u32..25,
    ) {
        let diameter = diameter as f64;
        let exact = exact_max_crs_in_memory(&objects, diameter);
        // The reported optimum is achieved by its own center (closed disks)...
        let achieved = closed_disk_weight(&objects, exact.center, diameter);
        prop_assert!((achieved - exact.total_weight).abs() < 1e-6);
        // ... and no single object's neighborhood beats it.
        for o in &objects {
            let w = closed_disk_weight(&objects, o.point, diameter);
            prop_assert!(w <= exact.total_weight + 1e-9);
        }
    }

    #[test]
    fn external_sort_sorts_and_preserves_multiset(values in prop::collection::vec(any::<u32>(), 0..400)) {
        let ctx = EmContext::new(EmConfig::new(64, 256).unwrap());
        let as_u64: Vec<u64> = values.iter().map(|&v| v as u64).collect();
        let file = ctx.write_all(&as_u64).unwrap();
        let sorted = external_sort_by_key(&ctx, &file, |v| *v).unwrap();
        let out = ctx.read_all(&sorted).unwrap();
        let mut expected = as_u64.clone();
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn maxrs_is_monotone_in_the_query_size(objects in objects_strategy(25)) {
        // A larger rectangle can never cover less weight than a smaller one.
        let small = max_rs_in_memory(&objects, RectSize::new(3.0, 4.0));
        let large = max_rs_in_memory(&objects, RectSize::new(9.0, 12.0));
        prop_assert!(large.total_weight >= small.total_weight);
        // And the total weight of the dataset is an upper bound.
        let total: f64 = objects.iter().map(|o| o.weight).sum();
        prop_assert!(large.total_weight <= total + 1e-9);
    }
}
