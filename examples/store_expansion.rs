//! Store expansion planning with the future-work extensions of the paper:
//! MaxkRS (open several stores at once) and MinRS (find the least-served spot
//! inside a district) — asked of one [`PreparedDataset`] as a single
//! **batch**, so the external x-sort of the customer file is paid once and
//! the questions sharing the delivery-area size share one sweep pass too.
//!
//! ```text
//! cargo run --release --example store_expansion
//! ```
//!
//! [`PreparedDataset`]: maxrs::PreparedDataset

use maxrs::datagen::{Dataset, DatasetKind};
use maxrs::geometry::Rect;
use maxrs::{MaxRsEngine, Query, QueryBatch, RectSize};

fn main() {
    // Customer locations in a metropolitan area.
    let customers = Dataset::generate(DatasetKind::Ne, 15_000, 31);
    let delivery = RectSize::new(25_000.0, 25_000.0); // 25 km x 25 km service area
    println!(
        "{} customers, service area {} x {} m",
        customers.len(),
        delivery.width,
        delivery.height
    );

    // One engine answers every variant below; it auto-selects the execution
    // strategy (in-memory vs. external, sequential vs. parallel) per query.
    // `prepare` runs the transform-independent preprocessing (the external
    // x-sort) once; the whole batch below reuses it.
    let engine = MaxRsEngine::new();
    let prepared = engine.prepare(&customers.objects).unwrap();
    println!(
        "prepared once: {} objects, external={}, preprocessing cost {}",
        prepared.len(),
        prepared.is_external(),
        prepared.prepare_io()
    );

    // The whole planning session as one batch: the MaxRS and MaxkRS
    // questions share the delivery-size sweep pass, MinRS gets its own
    // weight-negated pass over the downtown slab.
    let downtown = Rect::new(200_000.0, 800_000.0, 200_000.0, 800_000.0);
    let queries = [
        Query::max_rs(delivery),
        Query::top_k(delivery, 4),
        Query::min_rs(delivery, downtown),
    ];
    let plan = QueryBatch::new(&queries).unwrap();
    println!(
        "batch: {} queries in {} shared sweep passes",
        plan.len(),
        plan.num_groups()
    );
    let runs = prepared.run_planned(&plan).unwrap();

    // --- One store: plain MaxRS ------------------------------------------------
    let single = *runs[0].answer.as_max_rs().expect("rectangle answer");
    println!(
        "\n1 store : place at ({:.0}, {:.0}) -> {} customers served [{}, {}]",
        single.center.x,
        single.center.y,
        single.total_weight,
        runs[0].strategy.name(),
        runs[0].io,
    );

    // --- A chain of four stores: greedy MaxkRS ---------------------------------
    let chain = runs[1]
        .answer
        .placements()
        .expect("placement list")
        .to_vec();
    println!("\n4 stores (greedy MaxkRS, non-overlapping service areas):");
    let mut covered = 0.0;
    for (i, store) in chain.iter().enumerate() {
        covered += store.total_weight;
        println!(
            "  #{}: ({:>9.0}, {:>9.0}) -> {:>6} customers",
            i + 1,
            store.center.x,
            store.center.y,
            store.total_weight
        );
    }
    println!(
        "  total {:.0} customers ({:.1}% of the city)",
        covered,
        100.0 * covered / customers.total_weight()
    );
    assert!(covered >= single.total_weight);

    // --- Where is the most under-served spot downtown? MinRS -------------------
    let quietest = *runs[2].answer.as_max_rs().expect("rectangle answer");
    println!(
        "\nLeast-served location inside downtown: ({:.0}, {:.0}) with only {} customers in range",
        quietest.center.x, quietest.center.y, quietest.total_weight
    );
    assert!(quietest.total_weight <= single.total_weight);

    // The batch is pure optimization: every answer is bit-identical to the
    // per-query path.
    let check = prepared.run(&Query::max_rs(delivery)).unwrap();
    assert_eq!(check.answer, runs[0].answer);
}
