//! Franchise placement: the paper's motivating example.
//!
//! "If we open, in an area with a grid shaped road network, a new pizza
//! franchise store that has a limited delivery range, it is important to
//! maximize the number of residents in a rectangular area around the pizza
//! store."
//!
//! This example generates a synthetic city (a dense NE-like population
//! surrogate), asks ExactMaxRS where to place a store with a 2 km x 2 km
//! delivery rectangle, compares against the two externalized plane-sweep
//! baselines the paper evaluates, and prints the I/O cost of each.
//!
//! ```text
//! cargo run --release --example franchise_placement
//! ```

use maxrs::baselines::{asb_tree_sweep, naive_sweep};
use maxrs::datagen::{Dataset, DatasetKind};
use maxrs::{load_objects, EmConfig, EmContext, MaxRsEngine, RectSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A city of 20,000 residences in a 1,000 km x 1,000 km space (the paper's
    // normalized 1M x 1M space, 1 unit = 1 m).
    let city = Dataset::generate(DatasetKind::Ne, 20_000, 7);
    println!(
        "city: {} residences, bounding box {}",
        city.len(),
        city.bounding_box().unwrap()
    );

    // Delivery range: 2 km x 2 km around the store.
    let delivery = RectSize::new(2_000.0, 2_000.0);

    // A modest machine: 4 KB blocks, 128 KB of buffer.
    let config = EmConfig::new(4096, 128 * 1024)?;

    // --- ExactMaxRS through the engine ------------------------------------------
    // The engine sees 20k objects against a 128 KB budget and routes the query
    // to the external distribution sweep (parallel if cores and buffer allow).
    let ctx = EmContext::new(config);
    let objects = load_objects(&ctx, &city.objects)?;
    ctx.reset_stats();
    let engine = MaxRsEngine::with_em_config(config);
    let run = engine.solve_file(&ctx, &objects, delivery)?;
    let best = run.result;
    let exact_io = run.io.total();
    println!(
        "ExactMaxRS : place the store at {} -> {} residences in range \
         ({} I/Os, strategy {}, {} worker(s))",
        best.center,
        best.total_weight,
        exact_io,
        run.strategy.name(),
        run.workers
    );

    // --- aSB-tree baseline ------------------------------------------------------
    let ctx = EmContext::new(config);
    let objects = load_objects(&ctx, &city.objects)?;
    ctx.reset_stats();
    let asb = asb_tree_sweep(&ctx, &objects, delivery)?;
    let asb_io = ctx.stats().total();
    println!(
        "aSB-tree   : same answer ({} residences), {} I/Os ({:.0}x more)",
        asb.total_weight,
        asb_io,
        asb_io as f64 / exact_io.max(1) as f64
    );

    // --- Naive plane sweep (on a smaller sample: it is quadratic) ---------------
    let sample = Dataset::generate(DatasetKind::Ne, 2_000, 7);
    let ctx = EmContext::new(config);
    let objects = load_objects(&ctx, &sample.objects)?;
    ctx.reset_stats();
    let naive = naive_sweep(&ctx, &objects, delivery)?;
    println!(
        "Naive sweep: on a 10x smaller sample it already needs {} I/Os (answer {})",
        ctx.stats().total(),
        naive.total_weight
    );

    assert_eq!(best.total_weight, asb.total_weight);
    Ok(())
}
