//! Tourist hotspot: the paper's second motivating example, using the circular
//! variant (MaxCRS).
//!
//! "Consider a tourist who wants to find the most representative spot in a
//! city.  The tourist will prefer to visit as many attractions as possible
//! around the spot, and at the same time s/he usually does not want to go too
//! far away from the spot."
//!
//! The walkable radius defines a circle; ApproxMaxCRS places it near-optimally
//! and we compare against the exact (but much more expensive) reference to see
//! how good the approximation really is — the measurement behind Figure 17.
//!
//! ```text
//! cargo run --release --example tourist_hotspot
//! ```

use maxrs::datagen::{Dataset, DatasetKind};
use maxrs::geometry::range_sum_circle;
use maxrs::{exact_max_crs_in_memory, EmConfig, MaxRsEngine, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Attractions of a touristic city (clustered like the UX dataset).
    let city = Dataset::generate(DatasetKind::Ux, 8_000, 2024);
    println!("city with {} attractions", city.len());

    // One engine serves every walking radius; it picks the execution strategy
    // (in-memory sweep vs. external pipeline) per query from the dataset size
    // and the memory budget.
    let engine = MaxRsEngine::with_em_config(EmConfig::paper_real());

    // The tourist is willing to walk 5 km from the hotel: diameter 10 km.
    for walk_km in [2.0, 5.0, 10.0] {
        let diameter = walk_km * 2.0 * 1000.0;
        let run = engine.run(&city.objects, &Query::approx_max_crs(diameter))?;
        let approx = *run.answer.as_max_crs().expect("circle answer");
        let exact = exact_max_crs_in_memory(&city.objects, diameter);
        let ratio = approx.total_weight / exact.total_weight.max(1.0);
        println!(
            "walk {walk_km:>4.1} km: hotel at ({:>9.0}, {:>9.0}) reaches {:>5} attractions \
             (optimum {:>5}, ratio {ratio:.3}, {} via {} I/Os)",
            approx.center.x,
            approx.center.y,
            approx.total_weight,
            exact.total_weight,
            run.strategy.name(),
            run.io.total()
        );
        // The returned spot really does cover the promised number of attractions.
        assert_eq!(
            range_sum_circle(&city.objects, approx.center, diameter),
            approx.total_weight
        );
        // And it never drops below the proven 1/4 bound (in practice ~0.9).
        assert!(ratio >= 0.25);
    }
    Ok(())
}
