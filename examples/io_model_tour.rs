//! A tour of the external-memory substrate: how the I/O cost of ExactMaxRS
//! reacts to the buffer size, and what the simulated disk and buffer pool are
//! doing underneath.
//!
//! This reproduces, in miniature, the behaviour of Figure 13 of the paper:
//! ExactMaxRS benefits from a larger buffer (the `log_{M/B}` factor shrinks
//! and the base cases grow), until the whole working set fits and the curve
//! flattens.
//!
//! The sweep honors the storage backend selected by `MAXRS_BACKEND` — run it
//! with `MAXRS_BACKEND=fs` and every block lands in a real file, while the
//! printed (logical) I/O counts stay exactly the same: the cost model counts
//! block transfers at the `BlockDevice` boundary, not what the OS does below.
//!
//! ```text
//! cargo run --release --example io_model_tour
//! MAXRS_BACKEND=fs cargo run --release --example io_model_tour
//! ```

use maxrs::datagen::{Dataset, DatasetKind};
use maxrs::{exact_max_rs, load_objects, EmConfig, EmContext, ExactMaxRsOptions, RectSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(DatasetKind::Gaussian, 30_000, 99);
    let size = RectSize::square(1000.0);
    println!(
        "dataset: {} objects ({} KB as 24-byte records), backend: {}\n",
        dataset.len(),
        dataset.len() * 24 / 1024,
        maxrs::StorageBackend::from_env().name()
    );
    println!(
        "{:>12}  {:>10}  {:>10}  {:>10}  {:>12}",
        "buffer (KB)", "reads", "writes", "total I/O", "pool hit-rate"
    );

    let mut previous: Option<u64> = None;
    for buffer_kb in [32usize, 64, 128, 256, 512, 1024, 2048] {
        let config = EmConfig::new(4096, buffer_kb * 1024)?;
        let ctx = EmContext::new(config);
        let objects = load_objects(&ctx, &dataset.objects)?;
        ctx.reset_stats();
        // Pinned to the sequential sweep: this tour measures the paper's I/O
        // curve, and the parallel tree reduction trades extra I/O for
        // wall-clock time (see `MaxRsEngine` for the auto-selecting facade).
        let result = exact_max_rs(&ctx, &objects, size, &ExactMaxRsOptions::sequential())?;
        let stats = ctx.stats();
        let (hits, misses) = ctx.pool_hit_stats();
        println!(
            "{:>12}  {:>10}  {:>10}  {:>10}  {:>11.1}%",
            buffer_kb,
            stats.reads,
            stats.writes,
            stats.total(),
            100.0 * hits as f64 / (hits + misses).max(1) as f64
        );
        // Sanity: the answer does not depend on the buffer size.
        assert!(result.total_weight >= 1.0);
        if let Some(prev) = previous {
            assert!(
                stats.total() <= prev + prev / 4,
                "more buffer should never cost substantially more I/O"
            );
        }
        previous = Some(stats.total());
    }

    println!(
        "\nThe curve flattens once the rectangle file fits in the buffer — the same\n\
         effect the paper observes in Figure 13 ('once the buffer size is larger than\n\
         a certain size, ExactMaxRS also shows behavior similar to the others')."
    );
    Ok(())
}
