//! Quickstart: solve a MaxRS query through the [`MaxRsEngine`] facade, then
//! peek under the hood (in-memory sweep, external-memory pipeline) and finish
//! with a MaxCRS query via the approximation algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maxrs::core::ApproxMaxCrsOptions;
use maxrs::{
    approx_max_crs_from_objects, exact_max_rs_from_objects, max_rs_in_memory, EmConfig, EmContext,
    ExactMaxRsOptions, MaxRsEngine, RectSize, WeightedPoint,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A handful of points of interest with weights (e.g. expected customers).
    let objects = vec![
        WeightedPoint::at(12.0, 14.0, 3.0),
        WeightedPoint::at(13.5, 15.0, 2.0),
        WeightedPoint::at(14.0, 13.0, 4.0),
        WeightedPoint::at(30.0, 30.0, 5.0),
        WeightedPoint::at(31.0, 31.5, 1.0),
        WeightedPoint::at(70.0, 10.0, 2.0),
    ];

    // --- MaxRS through the engine ----------------------------------------------
    // Where should we center a 6 x 6 service area to cover the most weight?
    // The engine picks the execution strategy from N, the memory budget and
    // the core count; six objects obviously stay in memory.
    let size = RectSize::square(6.0);
    let engine = MaxRsEngine::new();
    let run = engine.solve(&objects, size)?;
    println!(
        "[engine    ] best 6x6 rectangle center: {} covering weight {} (strategy: {})",
        run.result.center,
        run.result.total_weight,
        run.strategy.name()
    );

    // --- MaxRS, in memory -----------------------------------------------------
    // The same sweep, invoked directly.
    let in_memory = max_rs_in_memory(&objects, size);
    println!(
        "[in-memory ] best 6x6 rectangle center: {} covering weight {}",
        in_memory.center, in_memory.total_weight
    );
    assert_eq!(run.result.total_weight, in_memory.total_weight);

    // --- MaxRS, external memory -------------------------------------------------
    // The same query through ExactMaxRS against a simulated disk: identical
    // answer, and we can inspect how many blocks it transferred.
    let ctx = EmContext::new(EmConfig::paper_synthetic());
    let external = exact_max_rs_from_objects(&ctx, &objects, size, &ExactMaxRsOptions::default())?;
    println!(
        "[ExactMaxRS] best 6x6 rectangle center: {} covering weight {} ({} block I/Os)",
        external.center,
        external.total_weight,
        ctx.stats().total()
    );
    assert_eq!(in_memory.total_weight, external.total_weight);

    // --- MaxCRS (circular range), approximate ---------------------------------
    let diameter = 6.0;
    let circle =
        approx_max_crs_from_objects(&ctx, &objects, diameter, &ApproxMaxCrsOptions::default())?;
    println!(
        "[ApproxMaxCRS] best circle (d={diameter}) center: {} covering weight {}",
        circle.center, circle.total_weight
    );

    Ok(())
}
