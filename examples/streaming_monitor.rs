//! Streaming monitor: maintain the best dispatch zone over a live feed of
//! ride requests with a sliding window — the dynamic-data scenario the
//! `maxrs-stream` subsystem opens.
//!
//! A dispatcher wants to keep one van parked where a 2 km × 2 km service
//! area covers the most open ride requests *right now*.  Requests appear
//! (inserts), get fulfilled (deletes) and go stale after ten minutes (the
//! sliding window).  Recomputing MaxRS from scratch on every change is what
//! the static engine would do; the [`StreamEngine`] instead re-sweeps only
//! the grid cells an event touched — and the answers are bit-identical.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use maxrs::{MaxRsEngine, Query, RectSize};
use maxrs_stream::{Event, StreamConfig, StreamEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service area 2000 m square, requests go stale after 600 s.
    let size = RectSize::square(2_000.0);
    let mut monitor = StreamEngine::new(StreamConfig::max_rs(size).with_window(600.0))?;

    // A deterministic little city: request bursts around three hotspots.
    let hotspots = [(3_000.0, 4_000.0), (9_000.0, 9_500.0), (15_000.0, 2_500.0)];
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut id = 0u64;
    let mut open: Vec<u64> = Vec::new();
    for minute in 0..30 {
        let now = minute as f64 * 60.0;
        // A burst of new requests near a rotating hotspot…
        let (hx, hy) = hotspots[minute % hotspots.len()];
        for _ in 0..5 {
            let dx = (next() % 2_000) as f64 - 1_000.0;
            let dy = (next() % 2_000) as f64 - 1_000.0;
            monitor.apply(&Event::insert(id, hx + dx, hy + dy, 1.0, now))?;
            open.push(id);
            id += 1;
        }
        // …and a few fulfilled ones.
        for _ in 0..2 {
            if !open.is_empty() {
                let victim = open.swap_remove((next() % open.len() as u64) as usize);
                // Fulfilling an already-expired request is a harmless no-op.
                monitor.apply(&Event::delete(victim, now))?;
            }
        }

        if minute % 5 == 4 {
            let answer = monitor.answer();
            let best = answer.run.answer.as_max_rs().expect("max-rs answer");
            println!(
                "t={now:>6.0}s  open={:<3}  best zone center ({:>7.1}, {:>7.1}) covers {:>2} \
                 requests   [swept {}/{} cells]",
                monitor.len(),
                best.center.x,
                best.center.y,
                best.total_weight,
                answer.stats.cells_swept,
                answer.stats.cells_total,
            );
        }
    }

    // The incremental answer is exactly what a from-scratch engine computes.
    let survivors = monitor.survivors();
    let incremental = monitor.answer();
    let batch = MaxRsEngine::new().run(&survivors, &Query::max_rs(size))?;
    assert_eq!(incremental.run.answer, batch.answer);
    println!(
        "\nverified: incremental answer == from-scratch recompute over {} open requests",
        survivors.len()
    );
    Ok(())
}
