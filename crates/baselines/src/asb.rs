//! The aSB-tree baseline: an external aggregate tree over the sorted
//! x-boundaries (the "aSB-Tree" curve of Figures 12–16).
//!
//! Du et al. externalize the plane sweep by replacing the in-memory binary
//! tree with an *aggregate SB-tree*: a balanced external tree over the sorted
//! vertical boundaries in which every node stores, per child, a pending
//! addition (`add`) and the maximum location-weight of the child's subtree
//! (`max`).  A rectangle insertion or deletion then updates a single
//! root-to-leaf path — `O(log_B N)` node accesses — instead of rescanning the
//! whole status, and the upper levels of the path are almost always resident
//! in the buffer pool.  Total cost: `O(N log_B N)` I/Os, in between the naïve
//! sweep's `Θ(N²/B)` and ExactMaxRS's `O((N/B) log_{M/B}(N/B))`.
//!
//! Implementation notes:
//!
//! * One tree node occupies exactly one disk block and holds
//!   `block_size / 16` children, each represented by an `(add, max)` pair of
//!   `f64`s.  Leaves (the elementary intervals) are virtual — their state is
//!   the `(add, max)` entry of their parent.
//! * The mapping from an event's x-range to a leaf-index range is done with an
//!   in-memory directory of the boundary values.  A production aSB-tree keys
//!   its nodes by boundary value and performs this search inside the very same
//!   root-to-leaf descent it updates, so the I/O count is unchanged by this
//!   simplification (documented in DESIGN.md).

use maxrs_core::{MaxRsResult, ObjectRecord, Result};
use maxrs_em::{codec, EmContext, FileId, TupleFile};
use maxrs_geometry::{Point, Rect, RectSize};

use crate::events::prepare_sweep_inputs;

/// Structural statistics of the aSB-tree built for a run (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsbTreeStats {
    /// Number of elementary intervals (virtual leaves).
    pub leaves: u64,
    /// Number of tree levels (node levels, excluding the virtual leaves).
    pub levels: usize,
    /// Total number of nodes (= disk blocks) of the tree.
    pub nodes: u64,
    /// Children per node.
    pub fanout: usize,
}

/// Solves MaxRS with the aSB-tree externalized plane sweep.
pub fn asb_tree_sweep(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<MaxRsResult> {
    let (result, _stats) = asb_tree_sweep_with_stats(ctx, objects, size)?;
    Ok(result)
}

/// Like [`asb_tree_sweep`], additionally returning tree statistics.
pub fn asb_tree_sweep_with_stats(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<(MaxRsResult, AsbTreeStats)> {
    if objects.is_empty() {
        return Ok((
            MaxRsResult::empty(),
            AsbTreeStats {
                leaves: 0,
                levels: 0,
                nodes: 0,
                fanout: ctx.config().block_size / ENTRY_SIZE,
            },
        ));
    }
    let inputs = prepare_sweep_inputs(ctx, objects, size)?;

    // In-memory directory of boundary values (see module docs): boundaries[i]
    // is the left edge of elementary interval i; the last entry closes it.
    let status = ctx.read_all(&inputs.status)?;
    let mut boundaries: Vec<f64> = Vec::with_capacity(status.len() + 1);
    for s in &status {
        boundaries.push(s.x_lo);
    }
    if let Some(last) = status.last() {
        boundaries.push(last.x_hi);
    }
    ctx.delete_file(inputs.status)?;
    let leaves = status.len() as u64;
    drop(status);

    let mut tree = AsbTree::create(ctx, leaves)?;
    let stats = tree.stats();

    let mut events = ctx.open_reader(&inputs.events);
    let mut best_sum = 0.0f64;
    let mut best_leaf: Option<u64> = None;
    let mut best_y = f64::NEG_INFINITY;
    let mut best_next_y: Option<f64> = None;
    let mut awaiting_next = false;

    while let Some(y) = events.peek()?.map(|e| e.y) {
        if awaiting_next {
            best_next_y = Some(y);
            awaiting_next = false;
        }
        let mut group_max = f64::NEG_INFINITY;
        while let Some(e) = events.peek()? {
            if e.y > y {
                break;
            }
            let e = events.next_record()?.expect("peeked event");
            // Leaf range covered by this rectangle's x-extent.
            let lo = boundaries.partition_point(|&b| b < e.x_lo) as u64;
            let hi = boundaries.partition_point(|&b| b < e.x_hi) as u64;
            group_max = tree.range_add(ctx, lo, hi, e.delta)?;
        }
        if group_max > best_sum {
            best_sum = group_max;
            best_leaf = Some(tree.argmax_leaf(ctx)?);
            best_y = y;
            best_next_y = None;
            awaiting_next = true;
        }
    }

    ctx.delete_file(inputs.events)?;
    tree.destroy(ctx)?;

    let result = match best_leaf {
        None => MaxRsResult::empty(),
        Some(leaf) => {
            let x_lo = boundaries[leaf as usize];
            let x_hi = boundaries[leaf as usize + 1];
            let y_hi = best_next_y.filter(|&v| v > best_y).unwrap_or(best_y + 1.0);
            MaxRsResult {
                center: Point::new((x_lo + x_hi) / 2.0, (best_y + y_hi) / 2.0),
                total_weight: best_sum,
                region: Rect::new(x_lo, x_hi, best_y, y_hi),
            }
        }
    };
    Ok((result, stats))
}

const ENTRY_SIZE: usize = 16; // (add: f64, max: f64)

/// The external aggregate tree.
struct AsbTree {
    file: FileId,
    fanout: usize,
    leaves: u64,
    /// Block offset of the first node of each level (level 0 = parents of the
    /// virtual leaves, last level = root).
    level_offsets: Vec<u64>,
    /// Number of nodes per level.
    level_counts: Vec<u64>,
    /// Leaves covered by one node of each level (`fanout^(level+1)`).
    level_spans: Vec<u64>,
}

impl AsbTree {
    /// Creates a zero-initialized tree over `leaves` elementary intervals.
    fn create(ctx: &EmContext, leaves: u64) -> Result<Self> {
        let fanout = (ctx.config().block_size / ENTRY_SIZE).max(2);
        let mut level_counts = Vec::new();
        let mut level_spans = Vec::new();
        let mut units = leaves.max(1);
        let mut span = 1u64;
        loop {
            let nodes = units.div_ceil(fanout as u64);
            span = span.saturating_mul(fanout as u64);
            level_counts.push(nodes);
            level_spans.push(span);
            if nodes == 1 {
                break;
            }
            units = nodes;
        }
        let mut level_offsets = Vec::with_capacity(level_counts.len());
        let mut offset = 0u64;
        for &count in &level_counts {
            level_offsets.push(offset);
            offset += count;
        }
        let file = ctx.create_raw_file()?;
        // Zero-initialize every node block (counted as the build cost).
        for block in 0..offset {
            ctx.with_block_write(file, block, true, |buf| buf.fill(0))?;
        }
        Ok(AsbTree {
            file,
            fanout,
            leaves,
            level_offsets,
            level_counts,
            level_spans,
        })
    }

    fn stats(&self) -> AsbTreeStats {
        AsbTreeStats {
            leaves: self.leaves,
            levels: self.level_counts.len(),
            nodes: self.level_counts.iter().sum(),
            fanout: self.fanout,
        }
    }

    fn root_level(&self) -> usize {
        self.level_counts.len() - 1
    }

    fn block_of(&self, level: usize, node: u64) -> u64 {
        self.level_offsets[level] + node
    }

    /// Leaves covered by one *child* of a node at `level`.
    fn child_span(&self, level: usize) -> u64 {
        if level == 0 {
            1
        } else {
            self.level_spans[level - 1]
        }
    }

    /// Adds `delta` to leaves `[lo, hi)` and returns the new global maximum.
    fn range_add(&mut self, ctx: &EmContext, lo: u64, hi: u64, delta: f64) -> Result<f64> {
        if lo >= hi {
            // Degenerate range: the global maximum is unchanged; recompute it
            // from the root so the caller still gets a valid value.
            return self.node_max(ctx, self.root_level(), 0);
        }
        self.update_node(ctx, self.root_level(), 0, lo, hi, delta)
    }

    /// Recursive range update of node `node` at `level`; returns the node's
    /// new subtree maximum (excluding any pending add stored at its parent).
    fn update_node(
        &self,
        ctx: &EmContext,
        level: usize,
        node: u64,
        lo: u64,
        hi: u64,
        delta: f64,
    ) -> Result<f64> {
        let child_span = self.child_span(level);
        let node_base = node * self.level_spans[level];
        let children = self.children_in(level, node);
        let block = self.block_of(level, node);

        // Pass 1 (single block access): apply the delta to fully covered
        // children, remember partially covered ones for recursion.
        let mut partial: Vec<(usize, f64)> = Vec::new(); // (child idx, pending add)
        ctx.with_block_write(self.file, block, false, |buf| {
            for c in 0..children {
                let c_lo = node_base + c as u64 * child_span;
                let c_hi = (c_lo + child_span).min(self.leaves);
                if c_lo >= hi || c_hi <= lo {
                    continue;
                }
                if lo <= c_lo && c_hi <= hi {
                    let add = codec::get_f64(buf, c * ENTRY_SIZE) + delta;
                    let max = codec::get_f64(buf, c * ENTRY_SIZE + 8) + delta;
                    codec::put_f64(buf, c * ENTRY_SIZE, add);
                    codec::put_f64(buf, c * ENTRY_SIZE + 8, max);
                } else {
                    partial.push((c, codec::get_f64(buf, c * ENTRY_SIZE)));
                }
            }
        })?;

        // Recurse into partially covered children (at most two per level).
        let mut updates: Vec<(usize, f64)> = Vec::new();
        for (c, add) in &partial {
            debug_assert!(level > 0, "leaf children are always fully covered");
            let child_max = self.update_node(
                ctx,
                level - 1,
                node * self.fanout as u64 + *c as u64,
                lo,
                hi,
                delta,
            )?;
            updates.push((*c, child_max + add));
        }

        // Pass 2: write back the refreshed child maxima and compute this
        // node's subtree maximum.
        let node_max = ctx.with_block_write(self.file, block, false, |buf| {
            for (c, new_max) in &updates {
                codec::put_f64(buf, c * ENTRY_SIZE + 8, *new_max);
            }
            let mut best = f64::NEG_INFINITY;
            for c in 0..children {
                best = best.max(codec::get_f64(buf, c * ENTRY_SIZE + 8));
            }
            best
        })?;
        Ok(node_max)
    }

    /// Number of children of node `node` at `level` (the last node of a level
    /// may be partially filled).
    fn children_in(&self, level: usize, node: u64) -> usize {
        let child_span = self.child_span(level);
        let node_base = node * self.level_spans[level];
        let covered = self
            .leaves
            .saturating_sub(node_base)
            .min(self.level_spans[level]);
        covered.div_ceil(child_span) as usize
    }

    /// Subtree maximum of a node (one block read).
    fn node_max(&self, ctx: &EmContext, level: usize, node: u64) -> Result<f64> {
        let children = self.children_in(level, node);
        let block = self.block_of(level, node);
        let max = ctx.with_block_read(self.file, block, |buf| {
            let mut best = f64::NEG_INFINITY;
            for c in 0..children {
                best = best.max(codec::get_f64(buf, c * ENTRY_SIZE + 8));
            }
            best
        })?;
        Ok(max)
    }

    /// Index of a leaf attaining the global maximum (root-to-leaf descent).
    fn argmax_leaf(&self, ctx: &EmContext) -> Result<u64> {
        let mut level = self.root_level();
        let mut node = 0u64;
        loop {
            let children = self.children_in(level, node);
            let block = self.block_of(level, node);
            let best_child = ctx.with_block_read(self.file, block, |buf| {
                let mut best = 0usize;
                let mut best_val = f64::NEG_INFINITY;
                for c in 0..children {
                    let v = codec::get_f64(buf, c * ENTRY_SIZE + 8);
                    if v > best_val {
                        best_val = v;
                        best = c;
                    }
                }
                best
            })?;
            if level == 0 {
                return Ok(node * self.level_spans[0] + best_child as u64);
            }
            node = node * self.fanout as u64 + best_child as u64;
            level -= 1;
        }
    }

    fn destroy(self, ctx: &EmContext) -> Result<()> {
        ctx.delete_raw_file(self.file)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::{
        exact_max_rs, load_objects, max_rs_in_memory, rect_objective, ExactMaxRsOptions,
    };
    use maxrs_em::EmConfig;
    use maxrs_geometry::WeightedPoint;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(512, 16 * 512).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 3.0).floor(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let ctx = ctx();
        let empty = load_objects(&ctx, &[]).unwrap();
        assert_eq!(
            asb_tree_sweep(&ctx, &empty, RectSize::square(2.0))
                .unwrap()
                .total_weight,
            0.0
        );
        let single = load_objects(&ctx, &[WeightedPoint::at(5.0, 5.0, 3.0)]).unwrap();
        let r = asb_tree_sweep(&ctx, &single, RectSize::square(2.0)).unwrap();
        assert_eq!(r.total_weight, 3.0);
        assert_eq!(
            rect_objective(
                &[WeightedPoint::at(5.0, 5.0, 3.0)],
                r.center,
                RectSize::square(2.0)
            ),
            3.0
        );
    }

    #[test]
    fn matches_in_memory_and_exact_maxrs() {
        let ctx = ctx();
        for seed in [5u64, 23, 77] {
            let objects = pseudo_random_objects(150, seed, 400.0);
            let file = load_objects(&ctx, &objects).unwrap();
            for side in [25.0, 80.0] {
                let size = RectSize::square(side);
                let asb = asb_tree_sweep(&ctx, &file, size).unwrap();
                let reference = max_rs_in_memory(&objects, size);
                let exact = exact_max_rs(&ctx, &file, size, &ExactMaxRsOptions::default()).unwrap();
                assert_eq!(
                    asb.total_weight, reference.total_weight,
                    "seed={seed} side={side}"
                );
                assert_eq!(
                    asb.total_weight, exact.total_weight,
                    "seed={seed} side={side}"
                );
                assert_eq!(
                    rect_objective(&objects, asb.center, size),
                    asb.total_weight,
                    "seed={seed} side={side}"
                );
            }
            ctx.delete_file(file).unwrap();
        }
    }

    #[test]
    fn tree_structure_is_reported() {
        let ctx = ctx();
        let objects = pseudo_random_objects(200, 2, 1000.0);
        let file = load_objects(&ctx, &objects).unwrap();
        let (_r, stats) = asb_tree_sweep_with_stats(&ctx, &file, RectSize::square(40.0)).unwrap();
        assert!(stats.leaves > 0 && stats.leaves < 400);
        assert_eq!(stats.fanout, 512 / 16);
        assert!(
            stats.levels >= 2,
            "200 objects with fanout 32 need two levels"
        );
        assert!(stats.nodes >= stats.leaves / stats.fanout as u64);
    }

    #[test]
    fn io_cost_sits_between_exact_and_naive() {
        let ctx_naive = ctx();
        let ctx_asb = ctx();
        let ctx_exact = ctx();
        let objects = pseudo_random_objects(400, 8, 5000.0);
        let size = RectSize::square(250.0);

        let f = load_objects(&ctx_naive, &objects).unwrap();
        ctx_naive.reset_stats();
        crate::naive_sweep(&ctx_naive, &f, size).unwrap();
        let io_naive = ctx_naive.stats().total();

        let f = load_objects(&ctx_asb, &objects).unwrap();
        ctx_asb.reset_stats();
        asb_tree_sweep(&ctx_asb, &f, size).unwrap();
        let io_asb = ctx_asb.stats().total();

        let f = load_objects(&ctx_exact, &objects).unwrap();
        ctx_exact.reset_stats();
        exact_max_rs(&ctx_exact, &f, size, &ExactMaxRsOptions::default()).unwrap();
        let io_exact = ctx_exact.stats().total();

        assert!(
            io_exact < io_asb && io_asb < io_naive,
            "expected ExactMaxRS < aSB-tree < Naive, got {io_exact} / {io_asb} / {io_naive}"
        );
    }
}
