//! Externalized plane-sweep baselines for the MaxRS problem.
//!
//! The paper compares ExactMaxRS against two adaptations of the classic
//! in-memory plane sweep to external memory, both taken from Du et al.'s
//! optimal-location work (Section 7.1):
//!
//! * [`naive_sweep`] — **Naïve Plane Sweep**: the sweep status (the counts of
//!   all `2N` elementary x-intervals) lives in a flat disk file that is
//!   re-scanned and rewritten for every sweep event, costing `Θ(N²/B)` I/Os.
//! * [`asb_tree_sweep`] — **aSB-tree**: the status is an external aggregate
//!   tree over the sorted x-boundaries; every event updates one root-to-leaf
//!   path, costing `O(N log_B N)` I/Os of which only the uncached node
//!   accesses reach the disk.
//!
//! Both baselines produce exactly the same answer as
//! [`maxrs_core::exact_max_rs`]; only their I/O behaviour differs — which is
//! precisely what Figures 12–16 of the paper measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asb;
mod events;
mod naive;

pub use asb::{asb_tree_sweep, AsbTreeStats};
pub use events::{prepare_sweep_inputs, EventRecord, StatusRecord, SweepInputs};
pub use naive::naive_sweep;

/// Identifies one of the competing MaxRS algorithms in experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Naïve externalized plane sweep.
    NaiveSweep,
    /// External aggregate SB-tree plane sweep.
    AsbTree,
    /// The paper's ExactMaxRS distribution sweep.
    ExactMaxRs,
}

impl Algorithm {
    /// All algorithms in the order the paper's figures list them.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::NaiveSweep,
        Algorithm::AsbTree,
        Algorithm::ExactMaxRs,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::NaiveSweep => "Naive",
            Algorithm::AsbTree => "aSB-Tree",
            Algorithm::ExactMaxRs => "ExactMaxRS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::NaiveSweep.name(), "Naive");
        assert_eq!(Algorithm::AsbTree.name(), "aSB-Tree");
        assert_eq!(Algorithm::ExactMaxRs.name(), "ExactMaxRS");
        assert_eq!(Algorithm::ALL.len(), 3);
    }
}
