//! Shared preparation of the plane-sweep inputs for the baselines.
//!
//! Both baselines sweep the *transformed* rectangles (one per object, centered
//! at it) bottom-to-top.  The preparation step turns the object file into
//!
//! * a y-sorted file of [`EventRecord`]s (two per rectangle: bottom edge adds
//!   the weight over the rectangle's x-range, top edge removes it), and
//! * the x-sorted, deduplicated list of vertical boundaries stored as a file
//!   of [`StatusRecord`]s — the elementary x-intervals whose counts the sweep
//!   status maintains.

use maxrs_core::{transform_to_rect_file, ObjectRecord};
use maxrs_em::{codec, external_sort_by_key, EmContext, Record, TupleFile};
use maxrs_geometry::RectSize;

use maxrs_core::Result;

/// A sweep event: at `y`, add `delta` (positive for bottom edges, negative for
/// top edges) to every elementary interval overlapping `[x_lo, x_hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// y-coordinate of the horizontal edge.
    pub y: f64,
    /// Left end of the rectangle's x-range.
    pub x_lo: f64,
    /// Right end of the rectangle's x-range.
    pub x_hi: f64,
    /// Signed weight contribution.
    pub delta: f64,
}

impl Record for EventRecord {
    const SIZE: usize = 32;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.y);
        codec::put_f64(buf, 8, self.x_lo);
        codec::put_f64(buf, 16, self.x_hi);
        codec::put_f64(buf, 24, self.delta);
    }
    fn decode(buf: &[u8]) -> Self {
        EventRecord {
            y: codec::get_f64(buf, 0),
            x_lo: codec::get_f64(buf, 8),
            x_hi: codec::get_f64(buf, 16),
            delta: codec::get_f64(buf, 24),
        }
    }
}

/// One elementary x-interval of the sweep status together with its current
/// location-weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatusRecord {
    /// Left boundary of the elementary interval.
    pub x_lo: f64,
    /// Right boundary of the elementary interval.
    pub x_hi: f64,
    /// Current total weight of the rectangles covering the interval.
    pub sum: f64,
}

impl Record for StatusRecord {
    const SIZE: usize = 24;
    fn encode(&self, buf: &mut [u8]) {
        codec::put_f64(buf, 0, self.x_lo);
        codec::put_f64(buf, 8, self.x_hi);
        codec::put_f64(buf, 16, self.sum);
    }
    fn decode(buf: &[u8]) -> Self {
        StatusRecord {
            x_lo: codec::get_f64(buf, 0),
            x_hi: codec::get_f64(buf, 8),
            sum: codec::get_f64(buf, 16),
        }
    }
}

/// The prepared inputs of an externalized plane sweep.
#[derive(Debug)]
pub struct SweepInputs {
    /// Events sorted by ascending y.
    pub events: TupleFile<EventRecord>,
    /// Initial status file: every elementary interval with weight 0, sorted by x.
    pub status: TupleFile<StatusRecord>,
    /// Number of elementary intervals (status records).
    pub num_intervals: u64,
}

/// Builds the sweep inputs from an object file: transform to rectangles, emit
/// and sort the edge events, and derive the elementary intervals from the
/// sorted vertical boundaries.
pub fn prepare_sweep_inputs(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<SweepInputs> {
    // Transform objects into rectangles (same step as ExactMaxRS).
    let rects = transform_to_rect_file(ctx, objects, size)?;

    // Emit one event per horizontal edge and one boundary per vertical edge.
    let mut event_writer = ctx.create_writer::<EventRecord>()?;
    let mut boundary_writer = ctx.create_writer::<f64>()?;
    {
        let mut reader = ctx.open_reader(&rects);
        while let Some(r) = reader.next_record()? {
            event_writer.push(&EventRecord {
                y: r.rect.y_lo,
                x_lo: r.rect.x_lo,
                x_hi: r.rect.x_hi,
                delta: r.weight,
            })?;
            event_writer.push(&EventRecord {
                y: r.rect.y_hi,
                x_lo: r.rect.x_lo,
                x_hi: r.rect.x_hi,
                delta: -r.weight,
            })?;
            boundary_writer.push(&r.rect.x_lo)?;
            boundary_writer.push(&r.rect.x_hi)?;
        }
    }
    ctx.delete_file(rects)?;
    let events_unsorted = event_writer.finish()?;
    let boundaries_unsorted = boundary_writer.finish()?;

    // Sort events by y.
    let events = external_sort_by_key(ctx, &events_unsorted, |e| e.y)?;
    ctx.delete_file(events_unsorted)?;

    // Sort boundaries by x and turn consecutive distinct values into
    // elementary intervals.
    let boundaries = external_sort_by_key(ctx, &boundaries_unsorted, |x| *x)?;
    ctx.delete_file(boundaries_unsorted)?;
    let mut status_writer = ctx.create_writer::<StatusRecord>()?;
    {
        let mut reader = ctx.open_reader(&boundaries);
        let mut prev: Option<f64> = None;
        while let Some(x) = reader.next_record()? {
            if let Some(p) = prev {
                if x > p {
                    status_writer.push(&StatusRecord {
                        x_lo: p,
                        x_hi: x,
                        sum: 0.0,
                    })?;
                }
            }
            if prev != Some(x) {
                prev = Some(x);
            }
        }
    }
    ctx.delete_file(boundaries)?;
    let status = status_writer.finish()?;
    let num_intervals = status.len();

    Ok(SweepInputs {
        events,
        status,
        num_intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::load_objects;
    use maxrs_em::EmConfig;
    use maxrs_geometry::WeightedPoint;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(512, 8 * 512).unwrap())
    }

    #[test]
    fn record_roundtrips() {
        let mut buf = vec![0u8; EventRecord::SIZE];
        let e = EventRecord {
            y: 1.5,
            x_lo: -2.0,
            x_hi: 3.0,
            delta: -4.5,
        };
        e.encode(&mut buf);
        assert_eq!(EventRecord::decode(&buf), e);

        let mut buf = vec![0u8; StatusRecord::SIZE];
        let s = StatusRecord {
            x_lo: 0.0,
            x_hi: 7.0,
            sum: 2.5,
        };
        s.encode(&mut buf);
        assert_eq!(StatusRecord::decode(&buf), s);
    }

    #[test]
    fn prepared_inputs_have_expected_shape() {
        let ctx = ctx();
        let objects = vec![
            WeightedPoint::unit(10.0, 10.0),
            WeightedPoint::unit(11.0, 11.0),
            WeightedPoint::unit(30.0, 30.0),
        ];
        let file = load_objects(&ctx, &objects).unwrap();
        let inputs = prepare_sweep_inputs(&ctx, &file, RectSize::square(4.0)).unwrap();

        // Two events per object, sorted by y.
        assert_eq!(inputs.events.len(), 6);
        let events = ctx.read_all(&inputs.events).unwrap();
        assert!(events.windows(2).all(|w| w[0].y <= w[1].y));
        assert_eq!(events.iter().filter(|e| e.delta > 0.0).count(), 3);

        // At most 2N-1 elementary intervals, contiguous and sorted.
        let status = ctx.read_all(&inputs.status).unwrap();
        assert_eq!(status.len() as u64, inputs.num_intervals);
        assert!(status.len() < 2 * objects.len());
        assert!(status.windows(2).all(|w| w[0].x_hi == w[1].x_lo));
        assert!(status.iter().all(|s| s.sum == 0.0 && s.x_lo < s.x_hi));
    }

    #[test]
    fn duplicate_coordinates_collapse_intervals() {
        let ctx = ctx();
        let objects: Vec<WeightedPoint> = (0..10).map(|_| WeightedPoint::unit(5.0, 5.0)).collect();
        let file = load_objects(&ctx, &objects).unwrap();
        let inputs = prepare_sweep_inputs(&ctx, &file, RectSize::square(2.0)).unwrap();
        // All rectangles coincide: a single elementary interval remains.
        assert_eq!(inputs.num_intervals, 1);
        assert_eq!(inputs.events.len(), 20);
    }
}
