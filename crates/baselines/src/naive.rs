//! The Naïve externalized plane sweep (the "Naive" curve of Figures 12–16).
//!
//! The sweep status — the location-weight of every elementary x-interval — is
//! kept in a flat file on disk.  For every distinct event y the whole status
//! file is read, the intervals overlapped by the rectangles starting or ending
//! at that y are updated, and the file is written back, while the running
//! maximum is tracked on the fly.  With `Θ(N)` events and `Θ(N/B)` blocks per
//! pass this costs `Θ(N²/B)` I/Os — the quadratic behaviour the paper's
//! ExactMaxRS eliminates.

use maxrs_core::{MaxRsResult, ObjectRecord, Result};
use maxrs_em::{EmContext, TupleFile};
use maxrs_geometry::{Point, Rect, RectSize};

use crate::events::{prepare_sweep_inputs, EventRecord, StatusRecord};

/// Solves MaxRS with the naïve externalized plane sweep.  Produces exactly the
/// same answer as [`maxrs_core::exact_max_rs`], at a vastly higher I/O cost.
pub fn naive_sweep(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
) -> Result<MaxRsResult> {
    if objects.is_empty() {
        return Ok(MaxRsResult::empty());
    }
    let inputs = prepare_sweep_inputs(ctx, objects, size)?;
    let mut status = inputs.status;
    let mut events = ctx.open_reader(&inputs.events);

    let mut best_sum = 0.0f64;
    let mut best_interval: Option<(f64, f64)> = None;
    let mut best_y = f64::NEG_INFINITY;
    let mut best_next_y: Option<f64> = None;
    let mut awaiting_next = false;

    // Group events with equal y so that the status is rescanned once per
    // distinct h-line (matching the in-memory sweep's event granularity).
    let mut pending: Vec<EventRecord> = Vec::new();
    loop {
        pending.clear();
        let y = match events.peek()? {
            Some(e) => e.y,
            None => break,
        };
        while let Some(e) = events.peek()? {
            if e.y > y {
                break;
            }
            pending.push(events.next_record()?.expect("peeked event"));
        }

        if awaiting_next {
            best_next_y = Some(y);
            awaiting_next = false;
        }

        // One full pass over the status file: apply the pending deltas and
        // track the maximum interval after this h-line.
        let mut reader = ctx.open_reader(&status);
        let mut writer = ctx.create_writer::<StatusRecord>()?;
        let mut pass_best = f64::NEG_INFINITY;
        let mut pass_interval = (f64::NEG_INFINITY, f64::INFINITY);
        while let Some(mut rec) = reader.next_record()? {
            for e in &pending {
                // Closed/open subtleties do not matter here: elementary
                // intervals never straddle a rectangle edge, they only touch.
                if e.x_lo <= rec.x_lo && rec.x_hi <= e.x_hi {
                    rec.sum += e.delta;
                }
            }
            if rec.sum > pass_best {
                pass_best = rec.sum;
                pass_interval = (rec.x_lo, rec.x_hi);
            }
            writer.push(&rec)?;
        }
        let new_status = writer.finish()?;
        ctx.delete_file(status)?;
        status = new_status;

        if pass_best > best_sum {
            best_sum = pass_best;
            best_interval = Some(pass_interval);
            best_y = y;
            best_next_y = None;
            awaiting_next = true;
        }
    }

    ctx.delete_file(status)?;
    ctx.delete_file(inputs.events)?;

    let (x_lo, x_hi) = match best_interval {
        Some(iv) => iv,
        None => return Ok(MaxRsResult::empty()),
    };
    let y_hi = best_next_y.filter(|&y| y > best_y).unwrap_or(best_y + 1.0);
    let region = Rect::new(x_lo, x_hi, best_y, y_hi);
    Ok(MaxRsResult {
        center: Point::new((x_lo + x_hi) / 2.0, (best_y + y_hi) / 2.0),
        total_weight: best_sum,
        region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::{load_objects, max_rs_in_memory, rect_objective};
    use maxrs_em::EmConfig;
    use maxrs_geometry::WeightedPoint;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(512, 8 * 512).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 3.0).floor(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let ctx = ctx();
        let empty = load_objects(&ctx, &[]).unwrap();
        assert_eq!(
            naive_sweep(&ctx, &empty, RectSize::square(2.0))
                .unwrap()
                .total_weight,
            0.0
        );
        let single = load_objects(&ctx, &[WeightedPoint::at(5.0, 5.0, 3.0)]).unwrap();
        let r = naive_sweep(&ctx, &single, RectSize::square(2.0)).unwrap();
        assert_eq!(r.total_weight, 3.0);
    }

    #[test]
    fn matches_the_in_memory_sweep() {
        let ctx = ctx();
        for seed in [2u64, 9, 31] {
            let objects = pseudo_random_objects(120, seed, 300.0);
            let file = load_objects(&ctx, &objects).unwrap();
            for side in [20.0, 60.0] {
                let size = RectSize::square(side);
                let naive = naive_sweep(&ctx, &file, size).unwrap();
                let reference = max_rs_in_memory(&objects, size);
                assert_eq!(
                    naive.total_weight, reference.total_weight,
                    "seed={seed} side={side}"
                );
                assert_eq!(
                    rect_objective(&objects, naive.center, size),
                    naive.total_weight,
                    "seed={seed} side={side}"
                );
            }
            ctx.delete_file(file).unwrap();
        }
    }

    #[test]
    fn io_cost_is_quadratic_in_spirit() {
        // Doubling the input size should roughly quadruple the I/O cost.
        let ctx_small = ctx();
        let ctx_large = ctx();
        let small = pseudo_random_objects(100, 4, 1000.0);
        let large = pseudo_random_objects(200, 4, 1000.0);
        let size = RectSize::square(50.0);

        let f_small = load_objects(&ctx_small, &small).unwrap();
        ctx_small.reset_stats();
        naive_sweep(&ctx_small, &f_small, size).unwrap();
        let io_small = ctx_small.stats().total();

        let f_large = load_objects(&ctx_large, &large).unwrap();
        ctx_large.reset_stats();
        naive_sweep(&ctx_large, &f_large, size).unwrap();
        let io_large = ctx_large.stats().total();

        assert!(io_small > 0);
        let growth = io_large as f64 / io_small as f64;
        assert!(
            growth > 2.5,
            "naive I/O grew only {growth:.2}x when the input doubled ({io_small} -> {io_large})"
        );
    }

    #[test]
    fn cleans_up_temporary_files() {
        let ctx = ctx();
        let objects = pseudo_random_objects(80, 6, 500.0);
        let file = load_objects(&ctx, &objects).unwrap();
        let before = ctx.disk_blocks();
        naive_sweep(&ctx, &file, RectSize::square(30.0)).unwrap();
        // Everything except (at most) the input object file's blocks is gone.
        assert!(
            ctx.disk_blocks() <= before.max(ctx.config().blocks_for::<ObjectRecord>(file.len()))
        );
    }
}
