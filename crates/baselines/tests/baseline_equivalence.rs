//! Cross-checks of the two baselines against each other and against the core
//! algorithms on weighted and skewed workloads, plus buffer-sensitivity
//! checks that mirror the qualitative claims of Figures 13 and 15.

use maxrs_baselines::{asb_tree_sweep, naive_sweep};
use maxrs_core::{exact_max_rs, load_objects, max_rs_in_memory, ExactMaxRsOptions};
use maxrs_datagen::{Dataset, DatasetKind, WeightMode};
use maxrs_em::{EmConfig, EmContext};
use maxrs_geometry::RectSize;

/// Weighted, skewed data: all four implementations agree (within float
/// accumulation noise, since weights are arbitrary floats).
#[test]
fn weighted_skewed_agreement() {
    let ds = Dataset::generate_weighted(
        DatasetKind::Ne,
        500,
        13,
        WeightMode::UniformRandom { max: 7.0 },
    );
    let size = RectSize::square(60_000.0);
    let reference = max_rs_in_memory(&ds.objects, size);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);

    let ctx = EmContext::new(EmConfig::new(4096, 8 * 4096).unwrap());
    let file = load_objects(&ctx, &ds.objects).unwrap();
    let naive = naive_sweep(&ctx, &file, size).unwrap();
    let asb = asb_tree_sweep(&ctx, &file, size).unwrap();
    let exact = exact_max_rs(&ctx, &file, size, &ExactMaxRsOptions::default()).unwrap();

    assert!(close(naive.total_weight, reference.total_weight));
    assert!(close(asb.total_weight, reference.total_weight));
    assert!(close(exact.total_weight, reference.total_weight));
    assert!(reference.total_weight > 0.0);
}

/// Growing the buffer can only help (or leave unchanged) each algorithm's I/O,
/// and once the whole working set fits, the naive sweep stops paying per-event
/// I/O — the effect behind Figure 15(a) where Naive wins on the small UX
/// dataset with a large buffer.
#[test]
fn buffer_growth_reduces_io_and_lets_small_data_fit() {
    let ds = Dataset::generate(DatasetKind::Ux, 400, 3);
    let size = RectSize::square(1000.0);

    let run_naive = |buffer_blocks: usize| {
        let ctx = EmContext::new(EmConfig::new(4096, buffer_blocks * 4096).unwrap());
        let file = load_objects(&ctx, &ds.objects).unwrap();
        ctx.reset_stats();
        naive_sweep(&ctx, &file, size).unwrap();
        ctx.stats().total()
    };
    let small = run_naive(4);
    let medium = run_naive(16);
    let huge = run_naive(1024); // 4 MB buffer: everything fits
    assert!(
        medium <= small,
        "more buffer must not increase naive I/O ({medium} > {small})"
    );
    assert!(huge <= medium);
    assert!(
        huge < small / 10,
        "with the dataset fully cached the naive sweep should do almost no I/O ({huge} vs {small})"
    );

    let run_asb = |buffer_blocks: usize| {
        let ctx = EmContext::new(EmConfig::new(4096, buffer_blocks * 4096).unwrap());
        let file = load_objects(&ctx, &ds.objects).unwrap();
        ctx.reset_stats();
        asb_tree_sweep(&ctx, &file, size).unwrap();
        ctx.stats().total()
    };
    let asb_small = run_asb(4);
    let asb_huge = run_asb(1024);
    assert!(asb_huge <= asb_small);
}

/// Query-range growth increases the baselines' work (more overlapping
/// intervals per event) much faster than ExactMaxRS's — the Figure 14 effect.
#[test]
fn range_growth_hurts_baselines_more() {
    let ds = Dataset::generate(DatasetKind::Uniform, 800, 8);
    let config = EmConfig::new(4096, 8 * 4096).unwrap();

    let io_of = |algo: &str, range: f64| {
        let ctx = EmContext::new(config);
        let file = load_objects(&ctx, &ds.objects).unwrap();
        ctx.reset_stats();
        match algo {
            "asb" => {
                asb_tree_sweep(&ctx, &file, RectSize::square(range)).unwrap();
            }
            _ => {
                exact_max_rs(
                    &ctx,
                    &file,
                    RectSize::square(range),
                    &ExactMaxRsOptions::default(),
                )
                .unwrap();
            }
        }
        ctx.stats().total() as f64
    };

    let exact_growth = io_of("exact", 100_000.0) / io_of("exact", 1000.0);
    let asb_growth = io_of("asb", 100_000.0) / io_of("asb", 1000.0);
    assert!(
        exact_growth < asb_growth * 1.5,
        "ExactMaxRS should be less sensitive to the range size \
         (exact grew {exact_growth:.2}x, aSB {asb_growth:.2}x)"
    );
}
