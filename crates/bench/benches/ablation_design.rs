//! Ablation study of the design choices called out in DESIGN.md:
//!
//! * the distribution fan-out `m` (the paper sets `m = Θ(M/B)`; too small a
//!   fan-out adds recursion levels, too large a fan-out starves the merge of
//!   buffer blocks),
//! * the in-memory threshold `M` (when to stop recursing and plane-sweep),
//!
//! measured both in wall-clock time (Criterion) and in I/O count (printed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_core::{exact_max_rs, load_objects, ExactMaxRsOptions};
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::{EmConfig, EmContext};
use maxrs_geometry::RectSize;

fn run_with(opts: &ExactMaxRsOptions, dataset: &Dataset, config: EmConfig) -> u64 {
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &dataset.objects).unwrap();
    ctx.reset_stats();
    exact_max_rs(&ctx, &file, RectSize::square(1000.0), opts).unwrap();
    ctx.stats().total()
}

fn bench_fanout(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Uniform, 6000, 13);
    let config = EmConfig::new(4096, 16 * 4096).unwrap();
    let mut group = c.benchmark_group("ablation_fanout");
    group.sample_size(10);
    for &fanout in &[2usize, 4, 8, 14] {
        let opts = ExactMaxRsOptions {
            fanout: Some(fanout),
            memory_rects: Some(500),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &opts, |b, opts| {
            b.iter(|| run_with(opts, &dataset, config));
        });
    }
    group.finish();

    println!("# ablation: ExactMaxRS I/O vs distribution fan-out m (M fixed at 500 rects)");
    for &fanout in &[2usize, 4, 8, 14] {
        let opts = ExactMaxRsOptions {
            fanout: Some(fanout),
            memory_rects: Some(500),
            ..Default::default()
        };
        println!(
            "m = {:>2}: {} I/Os",
            fanout,
            run_with(&opts, &dataset, config)
        );
    }
}

fn bench_memory_threshold(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Gaussian, 6000, 29);
    let config = EmConfig::new(4096, 16 * 4096).unwrap();
    let mut group = c.benchmark_group("ablation_memory_threshold");
    group.sample_size(10);
    for &mem in &[64usize, 256, 1024, 4096] {
        let opts = ExactMaxRsOptions {
            memory_rects: Some(mem),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(mem), &opts, |b, opts| {
            b.iter(|| run_with(opts, &dataset, config));
        });
    }
    group.finish();

    println!("# ablation: ExactMaxRS I/O vs in-memory threshold M (fan-out from the buffer)");
    for &mem in &[64usize, 256, 1024, 4096] {
        let opts = ExactMaxRsOptions {
            memory_rects: Some(mem),
            ..Default::default()
        };
        println!(
            "M = {:>5} rects: {} I/Os",
            mem,
            run_with(&opts, &dataset, config)
        );
    }
}

criterion_group!(benches, bench_fanout, bench_memory_threshold);
criterion_main!(benches);
