//! Figure 17 (reduced): runtime of ApproxMaxCRS and of the exact MaxCRS
//! reference, plus a one-shot print of the measured approximation ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_core::{approx_max_crs_from_objects, exact_max_crs_in_memory, ApproxMaxCrsOptions};
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::{EmConfig, EmContext};

fn bench_quality(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Uniform, 3000, 5);
    let mut group = c.benchmark_group("fig17_quality");
    group.sample_size(10);

    for &diameter in &[1000.0f64, 5000.0, 10000.0] {
        group.bench_with_input(
            BenchmarkId::new("ApproxMaxCRS", diameter as u64),
            &dataset,
            |b, ds| {
                b.iter(|| {
                    let ctx = EmContext::new(EmConfig::new(4096, 16 * 4096).unwrap());
                    approx_max_crs_from_objects(
                        &ctx,
                        &ds.objects,
                        diameter,
                        &ApproxMaxCrsOptions::default(),
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ExactMaxCRS", diameter as u64),
            &dataset,
            |b, ds| {
                b.iter(|| exact_max_crs_in_memory(&ds.objects, diameter));
            },
        );
    }
    group.finish();

    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, 3000, 5);
        for &diameter in &[1000.0f64, 5000.0, 10000.0] {
            let ctx = EmContext::new(EmConfig::new(4096, 16 * 4096).unwrap());
            let approx = approx_max_crs_from_objects(
                &ctx,
                &ds.objects,
                diameter,
                &ApproxMaxCrsOptions::default(),
            )
            .unwrap();
            let exact = exact_max_crs_in_memory(&ds.objects, diameter);
            println!(
                "fig17 (reduced) {} d={diameter}: ratio {:.3}",
                kind.name(),
                approx.total_weight / exact.total_weight.max(1e-12)
            );
        }
    }
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
