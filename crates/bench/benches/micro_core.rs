//! Micro-benchmarks of the core building blocks: segment tree, in-memory
//! plane sweep and external sort.  These are ablation-style measurements that
//! support the design choices documented in DESIGN.md rather than a figure of
//! the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_core::{max_rs_in_memory, SegmentTree};
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::{external_sort_by_key, EmConfig, EmContext};
use maxrs_geometry::RectSize;

fn bench_segment_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_tree");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("range_add_max", n), &n, |b, &n| {
            b.iter(|| {
                let mut tree = SegmentTree::new(n);
                let mut acc = 0.0;
                for i in 0..n {
                    let lo = i % (n / 2);
                    let hi = lo + n / 4;
                    tree.range_add(lo, hi.min(n), 1.0);
                    acc += tree.global_max();
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_plane_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_sweep");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let ds = Dataset::generate(DatasetKind::Uniform, n, 3);
        group.bench_with_input(BenchmarkId::new("max_rs_in_memory", n), &ds, |b, ds| {
            b.iter(|| max_rs_in_memory(&ds.objects, RectSize::square(5000.0)));
        });
    }
    group.finish();
}

fn bench_external_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for &n in &[10_000u64, 50_000] {
        group.bench_with_input(BenchmarkId::new("u64_reverse", n), &n, |b, &n| {
            b.iter(|| {
                let ctx = EmContext::new(EmConfig::new(4096, 16 * 4096).unwrap());
                let data: Vec<u64> = (0..n).rev().collect();
                let file = ctx.write_all(&data).unwrap();
                external_sort_by_key(&ctx, &file, |x| *x).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment_tree, bench_plane_sweep, bench_external_sort);
criterion_main!(benches);
