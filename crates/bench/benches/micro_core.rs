//! Micro-benchmarks of the core building blocks: segment tree, in-memory
//! plane sweep and external sort.  These are ablation-style measurements that
//! support the design choices documented in DESIGN.md rather than a figure of
//! the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_bench::runner::{run_engine, run_query};
use maxrs_core::{
    load_objects, max_rs_in_memory, EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query,
    SegmentTree,
};
use maxrs_datagen::{event_stream, Dataset, DatasetKind, EventStreamConfig};
use maxrs_em::{external_sort_by_key, EmConfig, EmContext};
use maxrs_geometry::{Rect, RectSize};
use maxrs_stream::{Event, StreamConfig, StreamEngine};

fn bench_segment_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_tree");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("range_add_max", n), &n, |b, &n| {
            b.iter(|| {
                let mut tree = SegmentTree::new(n);
                let mut acc = 0.0;
                for i in 0..n {
                    let lo = i % (n / 2);
                    let hi = lo + n / 4;
                    tree.range_add(lo, hi.min(n), 1.0);
                    acc += tree.global_max();
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_plane_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_sweep");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let ds = Dataset::generate(DatasetKind::Uniform, n, 3);
        group.bench_with_input(BenchmarkId::new("max_rs_in_memory", n), &ds, |b, ds| {
            b.iter(|| max_rs_in_memory(&ds.objects, RectSize::square(5000.0)));
        });
    }
    group.finish();
}

fn bench_external_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for &n in &[10_000u64, 50_000] {
        group.bench_with_input(BenchmarkId::new("u64_reverse", n), &n, |b, &n| {
            b.iter(|| {
                let ctx = EmContext::new(EmConfig::new(4096, 16 * 4096).unwrap());
                let data: Vec<u64> = (0..n).rev().collect();
                let file = ctx.write_all(&data).unwrap();
                external_sort_by_key(&ctx, &file, |x| *x).unwrap()
            });
        });
    }
    group.finish();
}

/// Sequential vs. parallel ExactMaxRS through the [`MaxRsEngine`] facade: the
/// same dataset, EM configuration and query, varying only the worker cap of
/// the parallel slab stage.  `workers = 1` is the paper's sequential sweep;
/// larger caps exercise the parallel children + tree-reduction path.
///
/// The dataset is loaded into the context once per variant, outside the timed
/// loop, so the measured wall-clock covers the solve only — the same phase
/// whose I/O the harness reports.
fn bench_engine_parallelism(c: &mut Criterion) {
    // 64 pool blocks -> up to 8 effective workers; 30k objects >> M.
    let config = EmConfig::new(4096, 64 * 4096).unwrap();
    let ds = Dataset::generate(DatasetKind::Uniform, 30_000, 17);
    let size = RectSize::square(20_000.0);

    let mut group = c.benchmark_group("engine_exact_maxrs");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        let engine = MaxRsEngine::with_options(EngineOptions {
            em_config: config,
            exact: ExactMaxRsOptions {
                parallelism: workers,
                ..Default::default()
            },
            force_strategy: None,
        });
        let ctx = EmContext::new(config);
        let file = load_objects(&ctx, &ds.objects).unwrap();
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| engine.solve_file(&ctx, &file, size).unwrap());
        });
    }
    group.finish();

    // Print what each variant actually did (strategy, workers, I/O) so the
    // bench output documents the comparison, not just the wall-clock.
    for workers in [1usize, 8] {
        let run = run_engine(config, &ds.objects, size, workers).unwrap();
        println!(
            "engine_exact_maxrs workers={workers}: strategy={} effective_workers={} io={}",
            run.strategy.name(),
            run.workers,
            run.io
        );
    }
}

/// All four [`Query`] variants through the engine on one dataset and EM
/// configuration: what a variant query costs relative to plain MaxRS on the
/// same substrate.  Top-k pays one distribution sweep per round plus a
/// suppression scan; MinRS is one weight-negated sweep over its domain slab;
/// ApproxMaxCRS is one sweep plus a candidate-evaluation scan.
fn bench_engine_variants(c: &mut Criterion) {
    let config = EmConfig::new(4096, 64 * 4096).unwrap();
    let ds = Dataset::generate(DatasetKind::Uniform, 20_000, 23);
    let size = RectSize::square(20_000.0);
    let domain = Rect::new(200_000.0, 800_000.0, 200_000.0, 800_000.0);
    let queries: Vec<(&str, Query)> = vec![
        ("max_rs", Query::max_rs(size)),
        ("top_k3", Query::top_k(size, 3)),
        ("min_rs", Query::min_rs(size, domain)),
        ("approx_max_crs", Query::approx_max_crs(20_000.0)),
    ];

    let mut group = c.benchmark_group("engine_variants");
    group.sample_size(10);
    for (name, query) in &queries {
        let engine = MaxRsEngine::with_em_config(config);
        let ctx = EmContext::new(config);
        let file = load_objects(&ctx, &ds.objects).unwrap();
        group.bench_with_input(BenchmarkId::new("query", name), query, |b, q| {
            b.iter(|| engine.run_file(&ctx, &file, q).unwrap());
        });
    }
    group.finish();

    // Document what each variant did (strategy, workers, I/O, answer shape).
    for (name, query) in &queries {
        let run = run_query(config, &ds.objects, query, 1).unwrap();
        println!(
            "engine_variants {name}: strategy={} workers={} io={} best_weight={}",
            run.strategy.name(),
            run.workers,
            run.io,
            run.answer.best_weight()
        );
    }
}

/// Cold query vs. second query on a [`PreparedDataset`]: the amortization
/// the prepared layer exists for.  "cold" pays transform + external sort +
/// sweep on every iteration (`MaxRsEngine::run_file`); "warm" re-runs the
/// query against the dataset's retained x-sorted file and pays only
/// transform + sweep.  The printed footer records the backend and the I/O
/// split so the bench output documents *why* the warm path wins.
fn bench_prepared_reuse(c: &mut Criterion) {
    use maxrs_bench::runner::run_prepared_reuse;

    let config = EmConfig::new(4096, 64 * 4096).unwrap();
    let ds = Dataset::generate(DatasetKind::Uniform, 30_000, 29);
    let size = RectSize::square(20_000.0);
    let query = Query::max_rs(size);

    let mut group = c.benchmark_group("prepared_reuse");
    group.sample_size(10);

    let engine = MaxRsEngine::with_em_config(config);
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &ds.objects).unwrap();
    group.bench_function("cold_run_file", |b| {
        b.iter(|| engine.run_file(&ctx, &file, &query).unwrap());
    });

    let prepared = engine.prepare_file(&ctx, &file).unwrap();
    group.bench_function("warm_prepared_run", |b| {
        b.iter(|| prepared.run(&query).unwrap());
    });
    drop(prepared);
    group.finish();

    let row = run_prepared_reuse(config, &ds.objects, &query, 1).unwrap();
    println!(
        "prepared_reuse {}: backend={} cold_io={} prepare_io={} warm_io={}",
        row.query, row.backend, row.cold_io, row.prepare_io, row.warm_io
    );
}

/// Batched vs. independent execution of a 4-query serving mix over one
/// [`PreparedDataset`]: `run_batch` plans MaxRS, top-k and ApproxMaxCRS of
/// one rectangle size into a single shared sweep group (MinRS gets its own
/// negated pass), so the batch pays 2 kernel passes where the independent
/// loop pays 4.  The printed footer records the per-path I/O so the bench
/// output documents *why* the batched path wins.
fn bench_engine_batch(c: &mut Criterion) {
    use maxrs_bench::runner::run_query_batch;

    let config = EmConfig::new(4096, 64 * 4096).unwrap();
    let ds = Dataset::generate(DatasetKind::Uniform, 30_000, 31);
    let size = RectSize::square(20_000.0);
    let domain = Rect::new(200_000.0, 800_000.0, 200_000.0, 800_000.0);
    let queries = vec![
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(20_000.0),
        Query::min_rs(size, domain),
    ];

    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);

    let engine = MaxRsEngine::with_em_config(config);
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &ds.objects).unwrap();
    let prepared = engine.prepare_file(&ctx, &file).unwrap();
    group.bench_function("run_batch_4_queries", |b| {
        b.iter(|| prepared.run_batch(&queries).unwrap());
    });
    group.bench_function("independent_4_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| prepared.run(q).unwrap())
                .collect::<Vec<_>>()
        });
    });
    drop(prepared);
    group.finish();

    let row = run_query_batch(config, &ds.objects, &queries, 1).unwrap();
    println!(
        "engine_batch: backend={} groups={}/{} batch_io={} independent_io={} verified={}",
        row.backend,
        row.groups,
        row.queries.len(),
        row.batch_io,
        row.independent_io,
        row.verified
    );
}

/// Incremental vs. from-scratch answering over a dynamic dataset: build a
/// streamed dataset once, then measure (a) one event + one incremental
/// answer (the steady-state cost of the maintenance loop) against (b) one
/// event + a full `max_rs_in_memory` recompute — the operation the
/// streaming subsystem replaces.  A footer prints the maintenance stats so
/// the bench output documents how localized the incremental work is.
fn bench_engine_stream(c: &mut Criterion) {
    let size = RectSize::square(10_000.0);
    let cfg = EventStreamConfig {
        events: 20_000,
        ..Default::default()
    };
    let events = event_stream(&cfg, 3);

    let mut group = c.benchmark_group("engine_stream");
    group.sample_size(10);

    group.bench_function("ingest_20k_events", |b| {
        b.iter(|| {
            let mut engine = StreamEngine::new(StreamConfig::max_rs(size)).unwrap();
            engine.apply_all(&events).unwrap();
            engine.len()
        });
    });

    // Both steady-state benches share one pre-built engine; each iteration
    // inserts a fresh object and deletes it again after answering, so the
    // dataset stays at its advertised 20k-event size no matter how many
    // timing iterations criterion runs — the two benches therefore measure
    // the same workload and remain directly comparable.
    let mut engine = StreamEngine::new(StreamConfig::max_rs(size)).unwrap();
    engine.apply_all(&events).unwrap();
    let mut next_id = events.len() as u64;
    let mut t = events.last().map_or(0.0, |e| e.at());
    group.bench_function("event_plus_incremental_answer", |b| {
        b.iter(|| {
            t += 1.0;
            let id = next_id;
            next_id += 1;
            engine
                .apply(&Event::insert(
                    id,
                    (id % 997) as f64 * 1000.0,
                    500_000.0,
                    1.0,
                    t,
                ))
                .unwrap();
            let best = engine.answer().run.answer.best_weight();
            engine.apply(&Event::delete(id, t)).unwrap();
            best
        });
    });
    group.bench_function("event_plus_full_recompute", |b| {
        b.iter(|| {
            t += 1.0;
            let id = next_id;
            next_id += 1;
            engine
                .apply(&Event::insert(
                    id,
                    (id % 997) as f64 * 1000.0,
                    500_000.0,
                    1.0,
                    t,
                ))
                .unwrap();
            let best = max_rs_in_memory(&engine.survivors(), size).total_weight;
            engine.apply(&Event::delete(id, t)).unwrap();
            best
        });
    });
    group.finish();

    let answer = engine.answer();
    println!(
        "engine_stream: survivors={} cells {}/{} swept/total, pruned={}",
        answer.stats.live_objects,
        answer.stats.cells_swept,
        answer.stats.cells_total,
        answer.stats.cells_pruned
    );
}

/// The locality-aware frontier map against the `BTreeMap` it replaced, on
/// the access regimes of the `sweepfront` experiment: sequential / local /
/// random probe sequences over the same preloaded keys, plus a structural
/// churn round (build from empty, tear back down) that times the
/// split/merge/recycle machinery.  The probe drivers only replace values of
/// present keys, so one preloaded map per variant can be reused across
/// timing iterations; a footer prints the checksum agreement so the bench
/// output documents that both structures did identical work.
fn bench_frontier_map(c: &mut Criterion) {
    use maxrs_bench::frontier_run::{
        churn_keys, drive_btreemap, drive_btreemap_churn, drive_frontier, drive_frontier_churn,
        pattern_keys, preloaded_btreemap, preloaded_frontier, AccessPattern,
    };

    let n = 50_000;
    let ops = 100_000;
    let mut group = c.benchmark_group("engine_frontier");
    group.sample_size(10);
    for pattern in AccessPattern::ALL {
        let keys = pattern_keys(pattern, n, ops, 13);
        let mut frontier = preloaded_frontier(n);
        group.bench_with_input(
            BenchmarkId::new("frontier", pattern.name()),
            &keys,
            |b, keys| b.iter(|| drive_frontier(&mut frontier, keys)),
        );
        let mut btreemap = preloaded_btreemap(n);
        group.bench_with_input(
            BenchmarkId::new("btreemap", pattern.name()),
            &keys,
            |b, keys| b.iter(|| drive_btreemap(&mut btreemap, keys)),
        );
    }
    let churn = churn_keys(n, 13);
    group.bench_with_input(BenchmarkId::new("frontier", "churn"), &churn, |b, keys| {
        b.iter(|| drive_frontier_churn(keys))
    });
    group.bench_with_input(BenchmarkId::new("btreemap", "churn"), &churn, |b, keys| {
        b.iter(|| drive_btreemap_churn(keys))
    });
    group.finish();

    assert_eq!(
        drive_frontier_churn(&churn),
        drive_btreemap_churn(&churn),
        "churn: the two drivers diverged"
    );
    for pattern in AccessPattern::ALL {
        let keys = pattern_keys(pattern, n, ops, 13);
        let a = drive_frontier(&mut preloaded_frontier(n), &keys);
        let b = drive_btreemap(&mut preloaded_btreemap(n), &keys);
        assert_eq!(a, b, "{}: the two drivers diverged", pattern.name());
        println!(
            "engine_frontier {}: n={n} ops={ops} checksum={a:#x} (drivers agree)",
            pattern.name()
        );
    }
}

criterion_group!(
    benches,
    bench_segment_tree,
    bench_plane_sweep,
    bench_external_sort,
    bench_engine_parallelism,
    bench_engine_variants,
    bench_prepared_reuse,
    bench_engine_batch,
    bench_engine_stream,
    bench_frontier_map
);
criterion_main!(benches);
