//! Figure 14 (reduced): sensitivity to the query range size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_baselines::Algorithm;
use maxrs_bench::runner::run_algorithm;
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::EmConfig;
use maxrs_geometry::RectSize;

fn bench_range(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Gaussian, 3000, 11);
    let config = EmConfig::new(4096, 16 * 4096).unwrap();
    let mut group = c.benchmark_group("fig14_range");
    group.sample_size(10);

    for &range in &[1000.0f64, 5000.0, 10000.0] {
        let size = RectSize::square(range);
        for algorithm in [Algorithm::ExactMaxRs, Algorithm::AsbTree] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), range as u64),
                &dataset,
                |b, ds| {
                    b.iter(|| run_algorithm(algorithm, config, &ds.objects, size).unwrap());
                },
            );
        }
    }
    group.finish();

    for &range in &[1000.0f64, 5000.0, 10000.0] {
        let size = RectSize::square(range);
        let exact = run_algorithm(Algorithm::ExactMaxRs, config, &dataset.objects, size).unwrap();
        let asb = run_algorithm(Algorithm::AsbTree, config, &dataset.objects, size).unwrap();
        println!(
            "fig14 (reduced) range={range}: ExactMaxRS {} I/Os, aSB-Tree {} I/Os",
            exact.io.total(),
            asb.io.total()
        );
    }
}

criterion_group!(benches, bench_range);
criterion_main!(benches);
