//! Figure 13 (reduced): sensitivity of ExactMaxRS and the aSB-tree to the
//! buffer size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_baselines::Algorithm;
use maxrs_bench::runner::run_algorithm;
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::EmConfig;
use maxrs_geometry::RectSize;

fn bench_buffer(c: &mut Criterion) {
    let dataset = Dataset::generate(DatasetKind::Uniform, 3000, 7);
    let size = RectSize::square(1000.0);
    let mut group = c.benchmark_group("fig13_buffer");
    group.sample_size(10);

    for &buffer_blocks in &[8usize, 16, 32, 64] {
        let config = EmConfig::new(4096, buffer_blocks * 4096).unwrap();
        for algorithm in [Algorithm::ExactMaxRs, Algorithm::AsbTree] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), buffer_blocks * 4),
                &dataset,
                |b, ds| {
                    b.iter(|| run_algorithm(algorithm, config, &ds.objects, size).unwrap());
                },
            );
        }
    }
    group.finish();

    for &buffer_blocks in &[8usize, 16, 32, 64] {
        let config = EmConfig::new(4096, buffer_blocks * 4096).unwrap();
        let exact = run_algorithm(Algorithm::ExactMaxRs, config, &dataset.objects, size).unwrap();
        println!(
            "fig13 (reduced) buffer={}KB: ExactMaxRS {} I/Os",
            buffer_blocks * 4,
            exact.io.total()
        );
    }
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
