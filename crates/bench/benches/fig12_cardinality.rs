//! Figure 12 (reduced): wall-clock and I/O of the three algorithms as the
//! dataset cardinality grows.  The full paper-scale sweep is produced by the
//! `experiments` binary; this bench tracks regressions at a small fixed size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxrs_baselines::Algorithm;
use maxrs_bench::runner::run_algorithm;
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::EmConfig;
use maxrs_geometry::RectSize;

fn bench_cardinality(c: &mut Criterion) {
    let config = EmConfig::new(4096, 16 * 4096).unwrap();
    let size = RectSize::square(1000.0);
    let mut group = c.benchmark_group("fig12_cardinality");
    group.sample_size(10);

    for &n in &[1000usize, 2000, 4000] {
        let dataset = Dataset::generate(DatasetKind::Gaussian, n, 42);
        for algorithm in [Algorithm::ExactMaxRs, Algorithm::AsbTree] {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), n), &dataset, |b, ds| {
                b.iter(|| run_algorithm(algorithm, config, &ds.objects, size).unwrap());
            });
        }
        // The quadratic Naive baseline only at the smallest size.
        if n == 1000 {
            group.bench_with_input(BenchmarkId::new("Naive", n), &dataset, |b, ds| {
                b.iter(|| run_algorithm(Algorithm::NaiveSweep, config, &ds.objects, size).unwrap());
            });
        }
    }
    group.finish();

    // Print the I/O counts once so `cargo bench` output shows the figure shape.
    for &n in &[1000usize, 2000, 4000] {
        let dataset = Dataset::generate(DatasetKind::Gaussian, n, 42);
        let exact = run_algorithm(Algorithm::ExactMaxRs, config, &dataset.objects, size).unwrap();
        let asb = run_algorithm(Algorithm::AsbTree, config, &dataset.objects, size).unwrap();
        println!(
            "fig12 (reduced) n={n}: ExactMaxRS {} I/Os, aSB-Tree {} I/Os",
            exact.io.total(),
            asb.io.total()
        );
    }
}

criterion_group!(benches, bench_cardinality);
criterion_main!(benches);
