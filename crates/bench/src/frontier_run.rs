//! Head-to-head measurement of the locality-aware [`FrontierMap`] against
//! the `std::collections::BTreeMap` it replaced in the sweep-front hot paths — the measurements behind the
//! `sweepfront` command of the experiment harness.
//!
//! Three deterministic probe-key sequences model the access regimes the sweep
//! structures actually see:
//!
//! * **sequential** — a monotone walk over the key space, the regime of slab
//!   sweeps and delta merges (almost every probe lands on the map's
//!   last-accessed leaf);
//! * **local** — probes jittered around a slowly drifting center, the regime
//!   of the stream engine's per-event breakpoint updates (a handful of
//!   adjacent leaves stay hot);
//! * **random** — uniform probes, the adversarial regime where the hot-leaf
//!   cache always misses and both structures pay a full descent.
//!
//! A fourth **churn** row builds each map from empty with random fresh
//! upserts and then tears it back down — the structural-mutation regime of
//! the stream engine's breakpoint multisets (every event inserts rectangle
//! edges that a later delete or expiry removes), which the preloaded
//! patterns never reach: churn is all leaf splits, merges and node
//! recycling.
//!
//! Both structures replay the *same* operation mix (lookups, value-replacing
//! inserts and successor probes) over the same preloaded key set, each
//! through its idiomatic access path — `FrontierMap` cursors and the cached
//! hot leaf on one side, `BTreeMap::get`/`range(k..)` re-probes (exactly what
//! the replaced code did) on the other — and the drivers fold the touched
//! values into a checksum that must agree between the two, so the comparison
//! is self-verifying.  A final end-to-end row replays an event stream through
//! the `FrontierMap`-backed [`StreamEngine`](maxrs_stream::StreamEngine) so
//! ingest events/sec is tracked alongside the micro numbers.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use maxrs_core::FrontierMap;
use maxrs_datagen::EventStreamConfig;
use maxrs_geometry::RectSize;
use maxrs_stream::StreamConfig;

use crate::figures::FigureOptions;
use crate::json::Value;
use crate::stream_run::{run_stream, StreamRun};

/// One access regime of the frontier micro-comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Monotone ascending walk over the key space (slab sweeps, delta merges).
    Sequential,
    /// Probes jittered around a drifting center (per-event breakpoint churn).
    Local,
    /// Uniform probes — the hot-leaf cache's worst case.
    Random,
}

impl AccessPattern {
    /// All three regimes, best-locality first.
    pub const ALL: [AccessPattern; 3] = [
        AccessPattern::Sequential,
        AccessPattern::Local,
        AccessPattern::Random,
    ];

    /// Short name used in report rows and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Sequential => "sequential",
            AccessPattern::Local => "local",
            AccessPattern::Random => "random",
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The preloaded key set both structures start from: the `n` even keys
/// `{0, 2, 4, ...}`, each mapped to its index.
fn preload_pairs(n: usize) -> impl Iterator<Item = (u64, u64)> {
    (0..n as u64).map(|i| (i * 2, i))
}

/// A [`FrontierMap`] holding the standard preload (built through
/// `bulk_load`, the path the prepared layer uses).
pub fn preloaded_frontier(n: usize) -> FrontierMap<u64, u64> {
    let mut map = FrontierMap::new();
    map.bulk_load(preload_pairs(n));
    map
}

/// A `BTreeMap` holding the same standard preload.
pub fn preloaded_btreemap(n: usize) -> BTreeMap<u64, u64> {
    preload_pairs(n).collect()
}

/// The deterministic probe-key sequence of (`pattern`, `seed`) over the
/// standard `n`-key preload: `ops` keys, every one present in the map.
pub fn pattern_keys(pattern: AccessPattern, n: usize, ops: usize, seed: u64) -> Vec<u64> {
    let n = n.max(1) as u64;
    let mut rng = seed | 1;
    (0..ops as u64)
        .map(|i| {
            let slot = match pattern {
                AccessPattern::Sequential => i % n,
                // The center advances one leaf-width every 64 probes; the
                // jitter spans about one leaf, so a handful of adjacent
                // leaves serve every window of the sequence.
                AccessPattern::Local => ((i / 64) * 24 + xorshift(&mut rng) % 32) % n,
                AccessPattern::Random => xorshift(&mut rng) % n,
            };
            slot * 2
        })
        .collect()
}

/// Replays the probe sequence against a preloaded [`FrontierMap`] through its
/// idiomatic access path (hot-leaf lookups, cursor successor probes),
/// returning a fold of the touched values so the work cannot be optimized
/// away.  Every 4th probe replaces the key's value in place; every 8th walks
/// a cursor to the key's successor; the rest are point lookups.
pub fn drive_frontier(map: &mut FrontierMap<u64, u64>, keys: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        match i % 8 {
            3 | 7 => {
                map.insert(k, i as u64);
            }
            5 => {
                if let Some(c) = map.seek_gt(&k) {
                    acc = acc.wrapping_add(*c.key(map)) ^ *c.value(map);
                }
            }
            _ => {
                if let Some(&v) = map.get(&k) {
                    acc = acc.wrapping_add(v);
                }
            }
        }
    }
    acc
}

/// Replays the same probe sequence against a preloaded `BTreeMap` the way the
/// replaced code accessed it (`get`, value-replacing `insert`, and a fresh
/// `range(k+1..)` descent per successor probe).  Returns the same checksum as
/// [`drive_frontier`] on the same inputs — the two drivers verify each other.
pub fn drive_btreemap(map: &mut BTreeMap<u64, u64>, keys: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        match i % 8 {
            3 | 7 => {
                map.insert(k, i as u64);
            }
            5 => {
                if let Some((&sk, &sv)) = map.range(k + 1..).next() {
                    acc = acc.wrapping_add(sk) ^ sv;
                }
            }
            _ => {
                if let Some(&v) = map.get(&k) {
                    acc = acc.wrapping_add(v);
                }
            }
        }
    }
    acc
}

/// The deterministic key sequence of the churn row: `n` uniform random keys
/// (duplicates possible, so replays exercise upsert-of-present too).
pub fn churn_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = seed | 1;
    (0..n).map(|_| xorshift(&mut rng)).collect()
}

/// Builds a [`FrontierMap`] from empty by upserting every churn key, then
/// removes them all in insertion order, folding removed values into a
/// checksum.  Every replay runs the full split/merge/recycle machinery.
pub fn drive_frontier_churn(keys: &[u64]) -> u64 {
    let mut map: FrontierMap<u64, u64> = FrontierMap::new();
    for (i, &k) in keys.iter().enumerate() {
        *map.get_or_insert_with(k, || 0) += i as u64;
    }
    let mut acc = 0u64;
    for &k in keys {
        if let Some(v) = map.remove(&k) {
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

/// The `BTreeMap` mirror of [`drive_frontier_churn`] (`entry().or_insert`
/// upserts, then removals), returning the same checksum on the same keys.
pub fn drive_btreemap_churn(keys: &[u64]) -> u64 {
    let mut map: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, &k) in keys.iter().enumerate() {
        *map.entry(k).or_insert(0) += i as u64;
    }
    let mut acc = 0u64;
    for &k in keys {
        if let Some(v) = map.remove(&k) {
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

/// One access-pattern row of the comparison: the same op sequence timed over
/// both structures (best of three replays each, fresh preload per replay).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepfrontRun {
    /// Access regime of the probe sequence.
    pub pattern: String,
    /// Keys preloaded into both maps.
    pub keys: usize,
    /// Timed operations per replay.
    pub ops: usize,
    /// Best-of-three cost per operation over `BTreeMap`, in nanoseconds.
    pub btreemap_ns_per_op: f64,
    /// Best-of-three cost per operation over [`FrontierMap`], in nanoseconds.
    pub frontier_ns_per_op: f64,
}

impl SweepfrontRun {
    /// How much faster the frontier map ran this pattern (`> 1` is a win).
    pub fn speedup(&self) -> f64 {
        if self.frontier_ns_per_op > 0.0 {
            self.btreemap_ns_per_op / self.frontier_ns_per_op
        } else {
            f64::INFINITY
        }
    }

    /// Serializes the row for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("id", Value::String("sweepfront".into())),
            ("pattern", Value::String(self.pattern.clone())),
            ("keys", Value::Number(self.keys as f64)),
            ("ops", Value::Number(self.ops as f64)),
            ("btreemap_ns_per_op", Value::Number(self.btreemap_ns_per_op)),
            ("frontier_ns_per_op", Value::Number(self.frontier_ns_per_op)),
            ("speedup", Value::Number(self.speedup())),
        ])
    }
}

/// Everything the `sweepfront` command measures: the access-pattern
/// head-to-heads (plus the structural-churn row) and one end-to-end
/// event-stream replay over the `FrontierMap`-backed engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepfrontReport {
    /// The sequential / local / random / churn comparison rows.
    pub patterns: Vec<SweepfrontRun>,
    /// The end-to-end stream replay (ingest events/sec, verified).
    pub stream: StreamRun,
}

impl SweepfrontReport {
    /// All rows of the report as JSON values (the stream row keeps its
    /// regular `"stream"` id, so the file stays self-describing).
    pub fn to_values(&self) -> Vec<Value> {
        self.patterns
            .iter()
            .map(SweepfrontRun::to_value)
            .chain(std::iter::once(self.stream.to_value()))
            .collect()
    }
}

/// Runs the full sweepfront comparison at the given scale: the map size and
/// op count scale like the figure cardinalities, every pattern is replayed
/// three times per structure (fresh preload each replay, best replay kept),
/// and the checksums of the two drivers are asserted equal before any timing
/// is trusted.
pub fn run_sweepfront(opts: &FigureOptions) -> SweepfrontReport {
    let n = opts.scale.cardinality(2_000_000).max(20_000);
    let ops = (n * 4).max(100_000);

    let mut patterns: Vec<SweepfrontRun> = AccessPattern::ALL
        .iter()
        .map(|&pattern| {
            let keys = pattern_keys(pattern, n, ops, opts.seed);
            let mut frontier_best = u128::MAX;
            let mut btreemap_best = u128::MAX;
            for _ in 0..3 {
                let mut map = preloaded_btreemap(n);
                let t = Instant::now();
                let bt_acc = black_box(drive_btreemap(&mut map, &keys));
                btreemap_best = btreemap_best.min(t.elapsed().as_nanos());

                let mut map = preloaded_frontier(n);
                let t = Instant::now();
                let fr_acc = black_box(drive_frontier(&mut map, &keys));
                frontier_best = frontier_best.min(t.elapsed().as_nanos());

                assert_eq!(
                    fr_acc,
                    bt_acc,
                    "{}: the two drivers diverged",
                    pattern.name()
                );
            }
            SweepfrontRun {
                pattern: pattern.name().to_string(),
                keys: n,
                ops,
                btreemap_ns_per_op: btreemap_best as f64 / ops as f64,
                frontier_ns_per_op: frontier_best as f64 / ops as f64,
            }
        })
        .collect();

    // Structural churn: empty-to-full-to-empty, timing splits and merges.
    {
        let keys = churn_keys(n, opts.seed);
        let churn_ops = keys.len() * 2;
        let mut frontier_best = u128::MAX;
        let mut btreemap_best = u128::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let bt_acc = black_box(drive_btreemap_churn(&keys));
            btreemap_best = btreemap_best.min(t.elapsed().as_nanos());

            let t = Instant::now();
            let fr_acc = black_box(drive_frontier_churn(&keys));
            frontier_best = frontier_best.min(t.elapsed().as_nanos());

            assert_eq!(fr_acc, bt_acc, "churn: the two drivers diverged");
        }
        patterns.push(SweepfrontRun {
            pattern: "churn".to_string(),
            keys: n,
            ops: churn_ops,
            btreemap_ns_per_op: btreemap_best as f64 / churn_ops as f64,
            frontier_ns_per_op: frontier_best as f64 / churn_ops as f64,
        });
    }

    // End-to-end: the same stream replay the `stream` command reports, so
    // the frontier-backed engine's ingest rate rides along in this file.
    let events = opts.scale.cardinality(1_500_000).max(1_000);
    let cfg = EventStreamConfig {
        events,
        ..Default::default()
    };
    let stream = run_stream(
        &cfg,
        opts.seed,
        StreamConfig::max_rs(RectSize::square(10_000.0)),
        (events / 500).max(1),
    )
    .expect("sweepfront stream replay failed");
    assert!(stream.verified, "sweepfront stream replay diverged");

    SweepfrontReport { patterns, stream }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_keys_are_deterministic_and_in_range() {
        for pattern in AccessPattern::ALL {
            let a = pattern_keys(pattern, 100, 500, 7);
            let b = pattern_keys(pattern, 100, 500, 7);
            assert_eq!(a, b, "{}", pattern.name());
            assert!(a.iter().all(|&k| k < 200 && k % 2 == 0));
        }
        let seq = pattern_keys(AccessPattern::Sequential, 100, 150, 7);
        assert_eq!(&seq[..3], &[0, 2, 4]);
        assert_eq!(seq[100], 0, "sequential wraps around the key space");
    }

    #[test]
    fn drivers_agree_on_every_pattern() {
        let n = 300;
        for pattern in AccessPattern::ALL {
            let keys = pattern_keys(pattern, n, 2_000, 11);
            let mut frontier = preloaded_frontier(n);
            let mut btreemap = preloaded_btreemap(n);
            assert_eq!(
                drive_frontier(&mut frontier, &keys),
                drive_btreemap(&mut btreemap, &keys),
                "{}",
                pattern.name()
            );
            // The drivers only replace values, so both maps keep the preload.
            assert_eq!(frontier.len(), n);
            assert_eq!(btreemap.len(), n);
        }
        let churn = churn_keys(500, 11);
        assert_eq!(drive_frontier_churn(&churn), drive_btreemap_churn(&churn));
    }

    #[test]
    fn smoke_report_rows_line_up() {
        let opts = FigureOptions {
            scale: crate::config::ExperimentScale::new(0.001),
            seed: 42,
            algorithms: [true, true, true],
        };
        let report = run_sweepfront(&opts);
        assert_eq!(report.patterns.len(), 4);
        assert_eq!(report.patterns[3].pattern, "churn");
        for row in &report.patterns {
            assert!(row.btreemap_ns_per_op > 0.0);
            assert!(row.frontier_ns_per_op > 0.0);
            let json = row.to_value();
            assert_eq!(json.get("id").unwrap().as_str(), Some("sweepfront"));
            assert!(json.get("speedup").unwrap().as_f64().is_some());
        }
        assert!(report.stream.verified);
        assert_eq!(report.to_values().len(), 5);
    }
}
