//! Runners regenerating every figure of the paper's evaluation.

use maxrs_baselines::Algorithm;
use maxrs_core::{approx_max_crs_from_objects, exact_max_crs_in_memory, ApproxMaxCrsOptions};
use maxrs_datagen::{Dataset, DatasetKind};
use maxrs_em::EmContext;
use maxrs_geometry::RectSize;

use crate::config::{
    ExperimentScale, PAPER_BUFFERS_REAL, PAPER_BUFFERS_SYNTHETIC, PAPER_BUFFER_REAL,
    PAPER_BUFFER_SYNTHETIC, PAPER_CARDINALITIES, PAPER_CARDINALITY, PAPER_DIAMETERS, PAPER_RANGE,
    PAPER_RANGES,
};
use crate::report::{FigureReport, Series};
use crate::runner::run_algorithm;

/// Common options of the figure runners.
#[derive(Debug, Clone, Copy)]
pub struct FigureOptions {
    /// Size scaling (see [`ExperimentScale`]).
    pub scale: ExperimentScale,
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// Which algorithms to run (dropping the Naïve baseline makes the sweeps
    /// dramatically faster at paper scale).
    pub algorithms: [bool; 3],
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            scale: ExperimentScale::default(),
            seed: 42,
            algorithms: [true, true, true],
        }
    }
}

impl FigureOptions {
    /// Selected algorithms in the paper's legend order.
    pub fn selected_algorithms(&self) -> Vec<Algorithm> {
        Algorithm::ALL
            .iter()
            .zip(self.algorithms)
            .filter_map(|(&a, on)| on.then_some(a))
            .collect()
    }

    /// Disables the Naïve baseline.
    pub fn without_naive(mut self) -> Self {
        self.algorithms[0] = false;
        self
    }
}

fn io_sweep(
    id: &str,
    title: &str,
    x_label: &str,
    opts: &FigureOptions,
    points: &[(f64, Dataset, maxrs_em::EmConfig, RectSize)],
) -> FigureReport {
    let mut report = FigureReport::new(id, title, x_label, "I/O cost (blocks)");
    for algorithm in opts.selected_algorithms() {
        let mut series = Series::new(algorithm.name());
        for (x, dataset, config, size) in points {
            let run = run_algorithm(algorithm, *config, &dataset.objects, *size)
                .expect("experiment run failed");
            series.push(*x, run.io.total() as f64);
        }
        report.add_series(series);
    }
    report
}

/// Figure 12: I/O cost vs dataset cardinality, for Gaussian (a) and Uniform
/// (b) synthetic data.
pub fn fig12_cardinality(opts: &FigureOptions) -> Vec<FigureReport> {
    [DatasetKind::Gaussian, DatasetKind::Uniform]
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let points: Vec<_> = PAPER_CARDINALITIES
                .iter()
                .map(|&paper_n| {
                    let n = opts.scale.cardinality(paper_n);
                    (
                        paper_n as f64,
                        Dataset::generate(kind, n, opts.seed),
                        opts.scale.em_config(PAPER_BUFFER_SYNTHETIC),
                        RectSize::square(PAPER_RANGE),
                    )
                })
                .collect();
            io_sweep(
                &format!("fig12{}", ['a', 'b'][i]),
                &format!("Effect of the dataset cardinality ({})", kind.name()),
                "number of objects (paper-scale)",
                opts,
                &points,
            )
        })
        .collect()
}

/// Figure 13: I/O cost vs buffer size on synthetic data.
pub fn fig13_buffer(opts: &FigureOptions) -> Vec<FigureReport> {
    [DatasetKind::Gaussian, DatasetKind::Uniform]
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let n = opts.scale.cardinality(PAPER_CARDINALITY);
            let dataset = Dataset::generate(kind, n, opts.seed);
            let points: Vec<_> = PAPER_BUFFERS_SYNTHETIC
                .iter()
                .map(|&buf| {
                    (
                        (buf / 1024) as f64,
                        dataset.clone(),
                        opts.scale.em_config(buf),
                        RectSize::square(PAPER_RANGE),
                    )
                })
                .collect();
            io_sweep(
                &format!("fig13{}", ['a', 'b'][i]),
                &format!("Effect of the buffer size ({})", kind.name()),
                "buffer size (KB, paper-scale)",
                opts,
                &points,
            )
        })
        .collect()
}

/// Figure 14: I/O cost vs query-range size on synthetic data.
pub fn fig14_range(opts: &FigureOptions) -> Vec<FigureReport> {
    [DatasetKind::Gaussian, DatasetKind::Uniform]
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let n = opts.scale.cardinality(PAPER_CARDINALITY);
            let dataset = Dataset::generate(kind, n, opts.seed);
            let points: Vec<_> = PAPER_RANGES
                .iter()
                .map(|&range| {
                    (
                        range,
                        dataset.clone(),
                        opts.scale.em_config(PAPER_BUFFER_SYNTHETIC),
                        RectSize::square(range),
                    )
                })
                .collect();
            io_sweep(
                &format!("fig14{}", ['a', 'b'][i]),
                &format!("Effect of the range size ({})", kind.name()),
                "range size",
                opts,
                &points,
            )
        })
        .collect()
}

/// Scale used for the real-data figures (15 and 16).
///
/// The real datasets are 13x–50x smaller than the synthetic ones, and the
/// buffer sweep of Figure 15 spans 64–512 KB; applying the global reduction
/// factor to those buffers would push every point below the minimum pool size
/// and flatten the curves.  The real-data figures therefore run at four times
/// the global factor (capped at the paper's own size), which keeps the
/// buffer-vs-dataset-size relationship of the paper intact — in particular the
/// Figure 15(a) effect where the naïve sweep becomes competitive once the
/// whole UX dataset fits in the buffer.
fn real_scale(opts: &FigureOptions) -> ExperimentScale {
    ExperimentScale::new((opts.scale.factor * 4.0).min(1.0))
}

/// Figure 15: I/O cost vs buffer size on the real-data surrogates (UX, NE).
pub fn fig15_buffer_real(opts: &FigureOptions) -> Vec<FigureReport> {
    let scale = real_scale(opts);
    [DatasetKind::Ux, DatasetKind::Ne]
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let n = scale.cardinality(kind.paper_cardinality());
            let dataset = Dataset::generate(kind, n, opts.seed);
            let points: Vec<_> = PAPER_BUFFERS_REAL
                .iter()
                .map(|&buf| {
                    (
                        (buf / 1024) as f64,
                        dataset.clone(),
                        scale.em_config(buf),
                        RectSize::square(PAPER_RANGE),
                    )
                })
                .collect();
            io_sweep(
                &format!("fig15{}", ['a', 'b'][i]),
                &format!("Effect of the buffer size on real data ({})", kind.name()),
                "buffer size (KB, paper-scale)",
                opts,
                &points,
            )
        })
        .collect()
}

/// Figure 16: I/O cost vs query-range size on the real-data surrogates.
pub fn fig16_range_real(opts: &FigureOptions) -> Vec<FigureReport> {
    let scale = real_scale(opts);
    [DatasetKind::Ux, DatasetKind::Ne]
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let n = scale.cardinality(kind.paper_cardinality());
            let dataset = Dataset::generate(kind, n, opts.seed);
            let points: Vec<_> = PAPER_RANGES
                .iter()
                .map(|&range| {
                    (
                        range,
                        dataset.clone(),
                        scale.em_config(PAPER_BUFFER_REAL),
                        RectSize::square(range),
                    )
                })
                .collect();
            io_sweep(
                &format!("fig16{}", ['a', 'b'][i]),
                &format!("Effect of the range size on real data ({})", kind.name()),
                "range size",
                opts,
                &points,
            )
        })
        .collect()
}

/// Figure 17: approximation quality of ApproxMaxCRS — the ratio `W(ĉ)/W(c*)`
/// as the circle diameter grows, on all four datasets.
pub fn fig17_quality(opts: &FigureOptions) -> FigureReport {
    let mut report = FigureReport::new(
        "fig17",
        "Approximation quality of ApproxMaxCRS",
        "circle diameter",
        "ratio W(approx)/W(optimal)",
    );
    for kind in DatasetKind::ALL {
        let n = opts.scale.cardinality(match kind {
            DatasetKind::Uniform | DatasetKind::Gaussian => PAPER_CARDINALITY,
            real => real.paper_cardinality(),
        });
        let dataset = Dataset::generate(kind, n, opts.seed);
        let mut series = Series::new(kind.name());
        for &diameter in &PAPER_DIAMETERS {
            let ctx = EmContext::new(opts.scale.em_config(PAPER_BUFFER_SYNTHETIC));
            let approx = approx_max_crs_from_objects(
                &ctx,
                &dataset.objects,
                diameter,
                &ApproxMaxCrsOptions::default(),
            )
            .expect("ApproxMaxCRS failed");
            let exact = exact_max_crs_in_memory(&dataset.objects, diameter);
            let ratio = if exact.total_weight > 0.0 {
                approx.total_weight / exact.total_weight
            } else {
                1.0
            };
            series.push(diameter, ratio);
        }
        report.add_series(series);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> FigureOptions {
        FigureOptions {
            scale: ExperimentScale::smoke(),
            seed: 7,
            algorithms: [true, true, true],
        }
    }

    #[test]
    fn fig12_smoke_preserves_algorithm_ordering() {
        let reports = fig12_cardinality(&smoke_opts());
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.series.len(), 3);
            let xs = report.x_values();
            assert_eq!(xs.len(), PAPER_CARDINALITIES.len());
            // At the largest cardinality the paper's ordering must hold.
            let x = *xs.last().unwrap();
            let naive = report.series_named("Naive").unwrap().value_at(x).unwrap();
            let asb = report
                .series_named("aSB-Tree")
                .unwrap()
                .value_at(x)
                .unwrap();
            let exact = report
                .series_named("ExactMaxRS")
                .unwrap()
                .value_at(x)
                .unwrap();
            assert!(exact < asb, "{}: exact {exact} vs asb {asb}", report.id);
            assert!(asb < naive, "{}: asb {asb} vs naive {naive}", report.id);
        }
    }

    #[test]
    fn fig17_smoke_ratios_respect_the_bound() {
        let report = fig17_quality(&FigureOptions {
            scale: ExperimentScale::smoke(),
            seed: 3,
            algorithms: [false, false, true],
        });
        assert_eq!(report.series.len(), 4);
        for s in &report.series {
            for p in &s.points {
                assert!(p.y >= 0.25 - 1e-9, "{}: ratio {} below 1/4", s.name, p.y);
                assert!(p.y <= 1.0 + 1e-9, "{}: ratio {} above 1", s.name, p.y);
            }
        }
    }

    #[test]
    fn without_naive_drops_the_series() {
        let opts = smoke_opts().without_naive();
        assert_eq!(opts.selected_algorithms().len(), 2);
        let reports = fig14_range(&opts);
        assert!(reports.iter().all(|r| r.series_named("Naive").is_none()));
        assert!(reports.iter().all(|r| r.series.len() == 2));
    }
}
