//! Runners regenerating the paper's tables.

use maxrs_datagen::{Dataset, DatasetKind, NE_CARDINALITY, UX_CARDINALITY};

use crate::config::{
    ExperimentScale, PAPER_BLOCK_SIZE, PAPER_BUFFER_REAL, PAPER_BUFFER_SYNTHETIC,
    PAPER_CARDINALITY, PAPER_RANGE,
};

/// Table 2: cardinalities of the real datasets, together with basic statistics
/// of the surrogates actually generated at the current scale.
pub fn table2(scale: ExperimentScale, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# Table 2 — real dataset cardinalities\n");
    out.push_str("Dataset  Paper cardinality  Generated (this run)  Occupied 32x32 cells\n");
    for (kind, paper_n) in [
        (DatasetKind::Ux, UX_CARDINALITY),
        (DatasetKind::Ne, NE_CARDINALITY),
    ] {
        let n = scale.cardinality(paper_n);
        let ds = Dataset::generate(kind, n, seed);
        let cells = occupied_cells(&ds);
        out.push_str(&format!(
            "{:<7}  {:>17}  {:>21}  {:>20}\n",
            kind.name(),
            paper_n,
            ds.len(),
            cells
        ));
    }
    out
}

/// Table 3: the default experiment parameters, at paper scale and at the scale
/// of the current run.
pub fn table3(scale: ExperimentScale) -> String {
    let mut out = String::new();
    out.push_str("# Table 3 — default experiment parameters\n");
    out.push_str(&format!(
        "{:<28}{:>16}{:>16}\n",
        "Parameter", "Paper", "This run"
    ));
    let rows: Vec<(String, String, String)> = vec![
        (
            "Cardinality (|O|)".into(),
            format!("{PAPER_CARDINALITY}"),
            format!("{}", scale.cardinality(PAPER_CARDINALITY)),
        ),
        (
            "Block size".into(),
            format!("{} B", PAPER_BLOCK_SIZE),
            format!("{} B", PAPER_BLOCK_SIZE),
        ),
        (
            "Buffer size (synthetic)".into(),
            format!("{} KB", PAPER_BUFFER_SYNTHETIC / 1024),
            format!("{} KB", scale.buffer_bytes(PAPER_BUFFER_SYNTHETIC) / 1024),
        ),
        (
            "Buffer size (real)".into(),
            format!("{} KB", PAPER_BUFFER_REAL / 1024),
            format!("{} KB", scale.buffer_bytes(PAPER_BUFFER_REAL) / 1024),
        ),
        ("Space size".into(), "1M x 1M".into(), "1M x 1M".into()),
        (
            "Rectangle size (d1 x d2)".into(),
            format!("{0} x {0}", PAPER_RANGE),
            format!("{0} x {0}", PAPER_RANGE),
        ),
        (
            "Circle diameter (d)".into(),
            format!("{PAPER_RANGE}"),
            format!("{PAPER_RANGE}"),
        ),
    ];
    for (name, paper, run) in rows {
        out.push_str(&format!("{name:<28}{paper:>16}{run:>16}\n"));
    }
    out
}

fn occupied_cells(ds: &Dataset) -> usize {
    use std::collections::HashSet;
    let mut cells = HashSet::new();
    for o in &ds.objects {
        cells.insert((
            (o.point.x / (maxrs_datagen::SPACE_EXTENT / 32.0)) as i64,
            (o.point.y / (maxrs_datagen::SPACE_EXTENT / 32.0)) as i64,
        ));
    }
    cells.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_both_real_datasets() {
        let t = table2(ExperimentScale::smoke(), 1);
        assert!(t.contains("UX"));
        assert!(t.contains("NE"));
        assert!(t.contains("19499"));
        assert!(t.contains("123593"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn table3_shows_paper_and_run_columns() {
        let t = table3(ExperimentScale::paper());
        assert!(t.contains("250000"));
        assert!(t.contains("1024 KB"));
        assert!(t.contains("4096 B"));
        assert!(t.contains("1M x 1M"));
        // `reduced()` is 4% of the paper's sizes: 0.04 * 250_000 = 10_000.
        let reduced = table3(ExperimentScale::reduced());
        assert!(
            reduced.contains("10000"),
            "reduced cardinality column missing:\n{reduced}"
        );
    }
}
