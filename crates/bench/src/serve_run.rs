//! Closed-loop load generation against the concurrent serving layer
//! ([`MaxRsServer`]): N client threads each submit a query, wait for its
//! reply, and immediately submit the next — the measurement behind the
//! `serve` command of the experiment harness.
//!
//! Reported per run: sustained queries/sec, client-observed latency
//! percentiles (p50/p95/p99, including the batching window each query waits
//! inside), and the flushed batch-size histogram — the direct evidence that
//! strangers' queries actually shared sweep passes.  Every response is
//! verified bit-identical to a sequential [`PreparedDataset::run`] of the
//! same query, so the throughput numbers are also a concurrency correctness
//! check.
//!
//! [`PreparedDataset::run`]: maxrs_core::PreparedDataset::run

use std::sync::{Arc, Barrier};
use std::time::Instant;

use maxrs_core::{EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query, QueryAnswer};
use maxrs_em::EmConfig;
use maxrs_geometry::WeightedPoint;
use maxrs_serve::{DatasetRegistry, MaxRsServer, ServeConfig, ServeError};

use crate::json::Value;

/// Outcome of one closed-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Storage-backend name of the dataset's context ("sim", "fs").
    pub backend: String,
    /// Dataset cardinality.
    pub n: u64,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Queries each client issued.
    pub queries_per_client: usize,
    /// Batching window, in nanoseconds.
    pub window_ns: u64,
    /// Size threshold of the micro-batcher.
    pub max_batch: usize,
    /// Worker threads executing flushed batches.
    pub workers: usize,
    /// Wall-clock of the whole closed loop, in nanoseconds.
    pub wall_ns: u128,
    /// Client-observed submit-to-reply latencies, sorted ascending (ns).
    pub latencies_ns: Vec<u128>,
    /// Flushed micro-batches.
    pub batches: u64,
    /// Mean flushed batch size (> 1 means sweeps were actually shared).
    pub mean_batch_size: f64,
    /// Largest batch flushed.
    pub max_batch_size: usize,
    /// `(size, batches_of_that_size)` pairs, ascending, zeros omitted.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Sweep groups executed across all batches.
    pub sweep_groups: u64,
    /// Whether every response was bit-identical to a sequential run of the
    /// same query on the same prepared dataset.
    pub verified: bool,
}

impl ServeRun {
    /// Total queries answered in the run.
    pub fn total_queries(&self) -> u64 {
        (self.clients * self.queries_per_client) as u64
    }

    /// Sustained throughput of the closed loop, in queries per second.
    pub fn qps(&self) -> f64 {
        self.total_queries() as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// The `q`-quantile of the client-observed latency (nearest-rank on the
    /// sorted samples); 0 when no samples were taken.
    pub fn latency_ns(&self, q: f64) -> u128 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = (q * self.latencies_ns.len() as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, self.latencies_ns.len()) - 1]
    }

    /// Serializes the run for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        let histogram: Vec<Value> = self
            .batch_histogram
            .iter()
            .map(|&(size, count)| {
                Value::object(vec![
                    ("size", Value::Number(size as f64)),
                    ("count", Value::Number(count as f64)),
                ])
            })
            .collect();
        Value::object(vec![
            ("id", Value::String("serve".into())),
            ("backend", Value::String(self.backend.clone())),
            ("n", Value::Number(self.n as f64)),
            ("clients", Value::Number(self.clients as f64)),
            (
                "queries_per_client",
                Value::Number(self.queries_per_client as f64),
            ),
            ("total_queries", Value::Number(self.total_queries() as f64)),
            ("window_ns", Value::Number(self.window_ns as f64)),
            ("max_batch", Value::Number(self.max_batch as f64)),
            ("workers", Value::Number(self.workers as f64)),
            ("wall_ns", Value::Number(self.wall_ns as f64)),
            ("qps", Value::Number(self.qps())),
            ("p50_ns", Value::Number(self.latency_ns(0.50) as f64)),
            ("p95_ns", Value::Number(self.latency_ns(0.95) as f64)),
            ("p99_ns", Value::Number(self.latency_ns(0.99) as f64)),
            ("batches", Value::Number(self.batches as f64)),
            ("mean_batch_size", Value::Number(self.mean_batch_size)),
            ("max_batch_size", Value::Number(self.max_batch_size as f64)),
            ("batch_histogram", Value::Array(histogram)),
            ("sweep_groups", Value::Number(self.sweep_groups as f64)),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

/// Drives a closed loop of `clients` threads, each issuing `per_client`
/// queries drawn round-robin from `pool` against one registered dataset, and
/// verifies every response against sequential expectations computed before
/// the server starts.  The dataset is prepared once (the external x-sort);
/// the measured loop is pure serving.
pub fn run_serve(
    config: EmConfig,
    objects: &[WeightedPoint],
    pool: &[Query],
    serve: ServeConfig,
    clients: usize,
    per_client: usize,
) -> Result<ServeRun, ServeError> {
    assert!(!pool.is_empty(), "query pool must not be empty");
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    });
    let registry = Arc::new(DatasetRegistry::new(engine));
    let handle = registry.insert("bench", objects)?;
    let backend = handle.backend_name().unwrap_or("memory").to_string();
    let n = handle.len();

    // Sequential ground truth, computed before the server exists.
    let expected: Vec<QueryAnswer> = pool
        .iter()
        .map(|q| handle.run(q).map(|run| run.answer))
        .collect::<Result<_, ServeError>>()?;
    drop(handle);

    let server = Arc::new(MaxRsServer::start(registry, serve)?);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let pool: Vec<Query> = pool.to_vec();
            let expected = expected.clone();
            std::thread::spawn(move || -> Result<(Vec<u128>, bool), ServeError> {
                let mut latencies = Vec::with_capacity(per_client);
                let mut ok = true;
                barrier.wait();
                for j in 0..per_client {
                    // Stagger the draw per client so concurrent batches mix
                    // variants and sizes.
                    let index = (c + j) % pool.len();
                    let t = Instant::now();
                    let response = server.query("bench", pool[index])?;
                    latencies.push(t.elapsed().as_nanos());
                    ok &= response.query == pool[index] && response.run.answer == expected[index];
                }
                Ok((latencies, ok))
            })
        })
        .collect();

    barrier.wait();
    let t = Instant::now();
    let mut latencies: Vec<u128> = Vec::with_capacity(clients * per_client);
    let mut verified = true;
    for thread in threads {
        let (mut client_latencies, ok) = thread.join().expect("client panicked")?;
        latencies.append(&mut client_latencies);
        verified &= ok;
    }
    let wall_ns = t.elapsed().as_nanos();
    latencies.sort_unstable();

    let stats = server.stats();
    server.shutdown();
    verified &= stats.completed == (clients * per_client) as u64;
    Ok(ServeRun {
        backend,
        n,
        clients,
        queries_per_client: per_client,
        window_ns: u64::try_from(serve.window.as_nanos()).unwrap_or(u64::MAX),
        max_batch: serve.max_batch,
        workers: serve.workers,
        wall_ns,
        latencies_ns: latencies,
        batches: stats.batches,
        mean_batch_size: stats.mean_batch_size(),
        max_batch_size: stats.max_batch_size(),
        batch_histogram: stats.batch_size_histogram(),
        sweep_groups: stats.sweep_groups,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_datagen::{Dataset, DatasetKind};
    use maxrs_geometry::RectSize;
    use std::time::Duration;

    #[test]
    fn closed_loop_is_verified_and_histogram_adds_up() {
        let ds = Dataset::generate(DatasetKind::Uniform, 2_000, 7);
        let config = EmConfig::new(4096, 8 * 4096).unwrap();
        let pool = [
            Query::max_rs(RectSize::square(50_000.0)),
            Query::top_k(RectSize::square(50_000.0), 2),
            Query::approx_max_crs(50_000.0),
        ];
        let serve = ServeConfig {
            window: Duration::from_millis(2),
            max_batch: 8,
            workers: 2,
            queue_capacity: 256,
            ..Default::default()
        };
        let run = run_serve(config, &ds.objects, &pool, serve, 6, 5).unwrap();
        assert!(run.verified, "served answers diverged from sequential runs");
        assert_eq!(run.total_queries(), 30);
        assert_eq!(run.latencies_ns.len(), 30);
        assert!(run.qps() > 0.0);
        assert!(run.latency_ns(0.50) <= run.latency_ns(0.95));
        assert!(run.latency_ns(0.95) <= run.latency_ns(0.99));
        // The histogram accounts for every query exactly once.
        let histogram_total: u64 = run
            .batch_histogram
            .iter()
            .map(|&(size, count)| size as u64 * count)
            .sum();
        assert_eq!(histogram_total, 30);
        assert!(run.mean_batch_size >= 1.0);

        let json = run.to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("serve"));
        assert_eq!(json.get("backend").unwrap().as_str(), Some("sim"));
        assert_eq!(json.get("verified").unwrap(), &Value::Bool(true));
        assert_eq!(json.get("total_queries").unwrap().as_f64(), Some(30.0));
        assert!(json.get("p99_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(json.get("batch_histogram").unwrap().as_array().is_some());
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let run = ServeRun {
            backend: "sim".into(),
            n: 0,
            clients: 1,
            queries_per_client: 4,
            window_ns: 0,
            max_batch: 1,
            workers: 1,
            wall_ns: 1,
            latencies_ns: vec![10, 20, 30, 40],
            batches: 4,
            mean_batch_size: 1.0,
            max_batch_size: 1,
            batch_histogram: vec![(1, 4)],
            sweep_groups: 4,
            verified: true,
        };
        assert_eq!(run.latency_ns(0.50), 20);
        assert_eq!(run.latency_ns(0.95), 40);
        assert_eq!(run.latency_ns(0.99), 40);
        assert_eq!(run.latency_ns(0.0), 10);
    }
}
