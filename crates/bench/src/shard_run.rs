//! Sharded-prepare scaling measurements: the same fixed input prepared
//! through [`ShardedDataset`](maxrs_core::ShardedDataset) at increasing
//! shard counts — prepare wall-clock vs `K` (the headline: the one-time
//! external sort scales with cores), per-shard I/O, and query latency vs
//! the number of shards each query actually touches — the measurements
//! behind the `shard` command of the experiment harness.

use std::time::Instant;

use maxrs_core::{EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query, QueryAnswer, ShardLayout};
use maxrs_em::{EmConfig, IoSnapshot};
use maxrs_geometry::WeightedPoint;

use crate::json::Value;

/// One measured query against a sharded dataset: how many shards the
/// router engaged and what the answer cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardQuerySample {
    /// Short name of the query variant ("max-rs", "min-rs", ...).
    pub query: String,
    /// Shards the rect-size-inflated query was routed to.
    pub shards_touched: usize,
    /// Wall-clock of the query, in nanoseconds.
    pub query_ns: u128,
    /// Blocks transferred by the query across all engaged shards.
    pub query_io: u64,
}

/// Outcome of preparing one fixed input at one shard count: prepare cost
/// (wall-clock + logical I/O, total and per shard), the resulting balance,
/// and a set of verified query samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRun {
    /// Storage-backend name of the shard contexts ("sim", "fs").
    pub backend: String,
    /// Objects in the fixed input.
    pub n: usize,
    /// Shard count requested via [`ShardLayout::new`].
    pub shards_requested: usize,
    /// Shards actually built (boundary dedupe can collapse ties).
    pub shards: usize,
    /// Objects per shard, in x order — the balance the sampling pass bought.
    pub shard_lens: Vec<u64>,
    /// Wall-clock of the whole sharded prepare, in nanoseconds.
    pub prepare_ns: u128,
    /// Logical blocks transferred by the prepare, summed over shards.
    pub prepare_io: IoSnapshot,
    /// Per-shard logical I/O of the prepare, in x order.
    pub per_shard_io: Vec<IoSnapshot>,
    /// Prepare wall-clock of this run relative to the `K = 1` run of the
    /// same curve (`1.0` for the `K = 1` row itself; `0.0` when the run was
    /// measured outside a curve).
    pub speedup_vs_one: f64,
    /// The query samples, one per measured variant.
    pub samples: Vec<ShardQuerySample>,
    /// `true` when every sampled answer was bit-identical to an unsharded
    /// [`MaxRsEngine::prepare`] over the same input.
    pub verified: bool,
}

impl ShardRun {
    /// Serializes the run for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        let samples: Vec<Value> = self
            .samples
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("query", Value::String(s.query.clone())),
                    ("shards_touched", Value::Number(s.shards_touched as f64)),
                    ("query_ns", Value::Number(s.query_ns as f64)),
                    ("query_io", Value::Number(s.query_io as f64)),
                ])
            })
            .collect();
        let lens: Vec<Value> = self
            .shard_lens
            .iter()
            .map(|&l| Value::Number(l as f64))
            .collect();
        let per_shard: Vec<Value> = self
            .per_shard_io
            .iter()
            .map(|io| Value::Number(io.total() as f64))
            .collect();
        Value::object(vec![
            ("id", Value::String("shard".into())),
            ("backend", Value::String(self.backend.clone())),
            ("n", Value::Number(self.n as f64)),
            (
                "shards_requested",
                Value::Number(self.shards_requested as f64),
            ),
            ("shards", Value::Number(self.shards as f64)),
            ("shard_lens", Value::Array(lens)),
            ("prepare_ns", Value::Number(self.prepare_ns as f64)),
            ("prepare_io", Value::Number(self.prepare_io.total() as f64)),
            ("per_shard_io", Value::Array(per_shard)),
            ("speedup_vs_one", Value::Number(self.speedup_vs_one)),
            ("samples", Value::Array(samples)),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

/// Prepares `objects` once at shard count `shards` under `config` with
/// `shards` prepare workers, then answers every query in `queries`,
/// verifying each answer against `expected` (the unsharded answers in the
/// same order).  `speedup_vs_one` is left at `0.0`; [`run_shard_curve`]
/// fills it in relative to its `K = 1` row.
pub fn run_shard(
    config: EmConfig,
    objects: &[WeightedPoint],
    shards: usize,
    queries: &[Query],
    expected: &[QueryAnswer],
) -> maxrs_core::Result<ShardRun> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism: shards.max(1),
            ..ExactMaxRsOptions::default()
        },
        force_strategy: None,
    });
    let layout = ShardLayout::new(shards);

    let t = Instant::now();
    let sharded = engine.prepare_sharded(objects, &layout)?;
    let prepare_ns = t.elapsed().as_nanos();

    let mut samples = Vec::with_capacity(queries.len());
    let mut verified = true;
    for (query, want) in queries.iter().zip(expected) {
        let shards_touched = sharded.shards_touched(query);
        let t = Instant::now();
        let run = sharded.run(query)?;
        samples.push(ShardQuerySample {
            query: query.name().to_string(),
            shards_touched,
            query_ns: t.elapsed().as_nanos(),
            query_io: run.io.total(),
        });
        verified &= run.answer == *want;
    }

    Ok(ShardRun {
        backend: sharded.backend_name().to_string(),
        n: objects.len(),
        shards_requested: shards,
        shards: sharded.num_shards(),
        shard_lens: sharded.shard_lens(),
        prepare_ns,
        prepare_io: sharded.prepare_io(),
        per_shard_io: sharded.prepare_io_per_shard(),
        speedup_vs_one: 0.0,
        samples,
        verified,
    })
}

/// The scaling curve: one unsharded prepare establishes the reference
/// answers, then the **same** input is prepared at every shard count in
/// `shard_counts` and each run's prepare wall-clock is related to the
/// `K = 1` row's (`speedup_vs_one`).  Every sampled answer of every row is
/// verified bit-identical to the unsharded reference.
pub fn run_shard_curve(
    config: EmConfig,
    objects: &[WeightedPoint],
    shard_counts: &[usize],
    queries: &[Query],
) -> maxrs_core::Result<Vec<ShardRun>> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions::default(),
        force_strategy: None,
    });
    let reference = engine.prepare(objects)?;
    let expected: Vec<QueryAnswer> = queries
        .iter()
        .map(|q| reference.run(q).map(|r| r.answer))
        .collect::<maxrs_core::Result<_>>()?;

    let mut rows = Vec::with_capacity(shard_counts.len());
    for &k in shard_counts {
        rows.push(run_shard(config, objects, k, queries, &expected)?);
    }
    let base_ns = rows
        .iter()
        .find(|r| r.shards_requested == 1)
        .or(rows.first())
        .map_or(0, |r| r.prepare_ns);
    for row in &mut rows {
        row.speedup_vs_one = if row.prepare_ns > 0 {
            base_ns as f64 / row.prepare_ns as f64
        } else {
            f64::INFINITY
        };
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_datagen::{Dataset, DatasetKind};
    use maxrs_geometry::{Rect, RectSize};

    #[test]
    fn curve_is_verified_and_routes_queries() {
        let config = EmConfig::new(512, 32 * 512).unwrap();
        let ds = Dataset::generate(DatasetKind::Uniform, 1_500, 7);
        let size = RectSize::square(40_000.0);
        let queries = vec![
            Query::max_rs(size),
            Query::top_k(size, 3),
            Query::min_rs(size, Rect::new(450_000.0, 470_000.0, 0.0, 1_000_000.0)),
        ];
        let rows = run_shard_curve(config, &ds.objects, &[1, 2, 4], &queries).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.verified, "K={} answers diverged", row.shards_requested);
            assert_eq!(row.samples.len(), queries.len());
            assert_eq!(row.shard_lens.iter().sum::<u64>(), 1_500);
            assert_eq!(row.per_shard_io.len(), row.shards);
            assert!(row.speedup_vs_one > 0.0);
        }
        assert_eq!(rows[0].shards, 1);
        assert!((rows[0].speedup_vs_one - 1.0).abs() < 1e-12);
        // The narrow-domain MinRS must engage fewer shards than MaxRS once
        // the x-domain is actually split.
        let wide = rows[2].samples[0].shards_touched;
        let narrow = rows[2].samples[2].shards_touched;
        assert!(narrow <= wide, "narrow domain touched more shards");
        assert!(narrow < rows[2].shards, "routing never pruned a shard");

        let json = rows[1].to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("shard"));
        assert_eq!(json.get("verified").unwrap(), &Value::Bool(true));
        let samples = match json.get("samples").unwrap() {
            Value::Array(s) => s,
            other => panic!("samples must be an array, got {other:?}"),
        };
        assert_eq!(samples.len(), queries.len());
    }
}
