//! Report structures: the series and tables the experiment runners produce.

use crate::json::Value;

/// One measured point of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter (cardinality, buffer size, range size, diameter …).
    pub x: f64,
    /// The measured value (I/O count or approximation ratio).
    pub y: f64,
}

/// A named series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name (e.g. "ExactMaxRS").
    pub name: String,
    /// The measured points, in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }

    /// The y value measured at the given x, if any.
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// A reproduced figure or table: several series over a common x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Identifier matching the paper ("fig12a", "fig17", "table2" …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the swept parameter.
    pub x_label: String,
    /// Label of the measured value.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The series with the given name, if present.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All x values present in any series, sorted and deduplicated.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_unstable_by(f64::total_cmp);
        xs.dedup();
        xs
    }

    /// Renders the report as an aligned text table (one row per x value, one
    /// column per series) — the format printed by the `experiments` binary.
    pub fn to_table_string(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for x in xs {
            let mut row = vec![format_number(x)];
            for s in &self.series {
                row.push(match s.value_at(x) {
                    Some(v) => format_number(v),
                    None => "-".to_string(),
                });
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, v)| format!("{:>width$}", v, width = widths[c]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out.push_str(&format!("({} vs {})\n", self.y_label, self.x_label));
        out
    }

    /// Renders the report as CSV.
    pub fn to_csv(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(',', ";"));
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(v) = s.value_at(x) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty_string()
    }

    /// Converts the report into a JSON document.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("id", Value::String(self.id.clone())),
            ("title", Value::String(self.title.clone())),
            ("x_label", Value::String(self.x_label.clone())),
            ("y_label", Value::String(self.y_label.clone())),
            (
                "series",
                Value::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("name", Value::String(s.name.clone())),
                                (
                                    "points",
                                    Value::Array(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Value::object(vec![
                                                    ("x", Value::Number(p.x)),
                                                    ("y", Value::Number(p.y)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report from the JSON produced by [`FigureReport::to_json`].
    pub fn from_json(text: &str) -> Result<FigureReport, String> {
        let value = Value::parse(text)?;
        FigureReport::from_value(&value)
    }

    /// Converts a JSON document back into a report.
    pub fn from_value(value: &Value) -> Result<FigureReport, String> {
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let mut report = FigureReport {
            id: field("id")?,
            title: field("title")?,
            x_label: field("x_label")?,
            y_label: field("y_label")?,
            series: Vec::new(),
        };
        for s in value
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing 'series' array")?
        {
            let mut series = Series::new(
                s.get("name")
                    .and_then(Value::as_str)
                    .ok_or("series without 'name'")?,
            );
            for p in s
                .get("points")
                .and_then(Value::as_array)
                .ok_or("series without 'points'")?
            {
                let coord = |key: &str| {
                    p.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("point without '{key}'"))
                };
                series.push(coord("x")?, coord("y")?);
            }
            report.add_series(series);
        }
        Ok(report)
    }
}

fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut report = FigureReport::new("fig12a", "I/O vs cardinality", "N", "I/O");
        let mut a = Series::new("Naive");
        a.push(100.0, 50000.0);
        a.push(200.0, 200000.0);
        let mut b = Series::new("ExactMaxRS");
        b.push(100.0, 500.0);
        b.push(200.0, 900.0);
        report.add_series(a);
        report.add_series(b);
        report
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let t = sample().to_table_string();
        assert!(t.contains("fig12a"));
        assert!(t.contains("Naive"));
        assert!(t.contains("ExactMaxRS"));
        assert!(t.contains("200000"));
        assert!(t.contains("900"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn csv_and_json_roundtrip() {
        let r = sample();
        let csv = r.to_csv();
        assert!(csv.starts_with("N,Naive,ExactMaxRS"));
        assert_eq!(csv.lines().count(), 3);
        let json = r.to_json();
        let back = FigureReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn series_lookup() {
        let r = sample();
        assert_eq!(
            r.series_named("Naive").unwrap().value_at(100.0),
            Some(50000.0)
        );
        assert!(r.series_named("missing").is_none());
        assert_eq!(r.x_values(), vec![100.0, 200.0]);
        assert_eq!(r.series_named("ExactMaxRS").unwrap().value_at(300.0), None);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(1000.0), "1000");
        assert_eq!(format_number(0.9123), "0.9123");
    }
}
