//! Delta-main measurements: replaying generated event streams into a
//! [`DeltaDataset`] — query latency as the pending delta grows, the cost of
//! one compaction against its `2·N/B` sequential-merge floor, and the warm
//! post-compaction query — the measurements behind the `delta` command of
//! the experiment harness.

use std::time::Instant;

use maxrs_core::{
    DeltaDataset, DeltaOptions, EngineOptions, ExactMaxRsOptions, MaxRsEngine, ObjectRecord, Query,
};
use maxrs_datagen::{event_stream, EventStreamConfig};
use maxrs_em::{EmConfig, IoSnapshot, Record};

use crate::json::Value;

/// One per-checkpoint sample: the same query answered with `delta_len`
/// records pending against the base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSample {
    /// Pending delta records (inserts + tombstones) when the query ran.
    pub delta_len: u64,
    /// Records in the compacted base run at that point.
    pub base_len: u64,
    /// Wall-clock of the query, in nanoseconds.
    pub query_ns: u128,
    /// Blocks transferred by the query (merge of base + delta included).
    pub query_io: u64,
}

/// Outcome of one delta replay: ingest rate, the latency-vs-delta-size
/// curve, and the compaction's cost relative to its sequential-merge floor.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRun {
    /// Storage-backend name of the context ("sim", "fs").
    pub backend: String,
    /// Short name of the measured query variant.
    pub query: String,
    /// Events replayed.
    pub events: usize,
    /// Objects alive after the replay.
    pub survivors: u64,
    /// Largest pending delta observed at a checkpoint.
    pub delta_len_max: u64,
    /// Total wall-clock spent applying events, in nanoseconds.
    pub apply_ns: u128,
    /// Ingest throughput (events per second of apply time).
    pub events_per_sec: f64,
    /// The latency-vs-delta-size curve, one sample per checkpoint.
    pub samples: Vec<DeltaSample>,
    /// Wall-clock of the final compaction, in nanoseconds.
    pub compact_ns: u128,
    /// Blocks transferred by the final compaction.
    pub compact_io: IoSnapshot,
    /// The compaction's sequential-merge floor in blocks: one read of the
    /// old base plus one write of the new run (`2·N/B` shape).
    pub merge_floor_blocks: u64,
    /// Wall-clock / blocks of the same query once the delta is drained.
    pub compacted_query_ns: u128,
    /// Blocks transferred by the post-compaction query.
    pub compacted_query_io: u64,
    /// `true` when every measured answer was bit-identical to a from-scratch
    /// [`MaxRsEngine::prepare`] over the survivors, before and after
    /// compaction.
    pub verified: bool,
}

impl DeltaRun {
    /// Serializes the replay for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        let samples: Vec<Value> = self
            .samples
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("delta_len", Value::Number(s.delta_len as f64)),
                    ("base_len", Value::Number(s.base_len as f64)),
                    ("query_ns", Value::Number(s.query_ns as f64)),
                    ("query_io", Value::Number(s.query_io as f64)),
                ])
            })
            .collect();
        Value::object(vec![
            ("id", Value::String("delta".into())),
            ("backend", Value::String(self.backend.clone())),
            ("query", Value::String(self.query.clone())),
            ("events", Value::Number(self.events as f64)),
            ("survivors", Value::Number(self.survivors as f64)),
            ("delta_len_max", Value::Number(self.delta_len_max as f64)),
            ("apply_ns", Value::Number(self.apply_ns as f64)),
            ("events_per_sec", Value::Number(self.events_per_sec)),
            ("samples", Value::Array(samples)),
            ("compact_ns", Value::Number(self.compact_ns as f64)),
            ("compact_io", Value::Number(self.compact_io.total() as f64)),
            (
                "merge_floor_blocks",
                Value::Number(self.merge_floor_blocks as f64),
            ),
            (
                "compacted_query_ns",
                Value::Number(self.compacted_query_ns as f64),
            ),
            (
                "compacted_query_io",
                Value::Number(self.compacted_query_io as f64),
            ),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

fn object_blocks(config: EmConfig, n: u64) -> u64 {
    n.div_ceil((config.block_size / ObjectRecord::SIZE) as u64)
}

/// Replays the event stream of (`stream_cfg`, `seed`) into a fresh
/// [`DeltaDataset`] under `config`, compacting once mid-stream so the later
/// checkpoints measure queries merging a real delta against a real base,
/// then measures the final compaction against its `2·N/B` merge floor and
/// verifies every answer against a from-scratch prepare.
pub fn run_delta(
    stream_cfg: &EventStreamConfig,
    seed: u64,
    config: EmConfig,
    query: &Query,
    checkpoints: usize,
) -> maxrs_core::Result<DeltaRun> {
    let events = event_stream(stream_cfg, seed);
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions::default(),
        force_strategy: None,
    });
    let mut delta = DeltaDataset::new(&engine, DeltaOptions::default())?;
    let checkpoints = checkpoints.max(2);
    let chunk = events.len().div_ceil(checkpoints);

    let mut apply_ns = 0u128;
    let mut samples = Vec::with_capacity(checkpoints);
    let mut verified = true;
    for (i, batch) in events.chunks(chunk).enumerate() {
        let t = Instant::now();
        delta.apply(batch)?;
        apply_ns += t.elapsed().as_nanos();

        // Compact once a third of the way in: every later checkpoint then
        // exercises the interesting regime — a non-trivial base run with a
        // growing delta merged into the sweep on the fly.
        if i + 1 == checkpoints.div_ceil(3) {
            delta.compact()?;
        }

        let t = Instant::now();
        let run = delta.run(query)?;
        samples.push(DeltaSample {
            delta_len: delta.delta_len(),
            base_len: delta.base_len(),
            query_ns: t.elapsed().as_nanos(),
            query_io: run.io.total(),
        });
        verified &= run.answer == engine.prepare(&delta.survivors())?.run(query)?.answer;
    }

    let base_before = delta.base_len();
    let t = Instant::now();
    let report = delta.compact()?;
    let compact_ns = t.elapsed().as_nanos();
    let merge_floor_blocks =
        object_blocks(config, base_before) + object_blocks(config, report.base_after);

    let t = Instant::now();
    let compacted = delta.run(query)?;
    let compacted_query_ns = t.elapsed().as_nanos();
    verified &= compacted.answer == engine.prepare(&delta.survivors())?.run(query)?.answer;

    Ok(DeltaRun {
        backend: delta.context().backend_name().to_string(),
        query: query.name().to_string(),
        events: events.len(),
        survivors: delta.len(),
        delta_len_max: samples.iter().map(|s| s.delta_len).max().unwrap_or(0),
        apply_ns,
        events_per_sec: if apply_ns > 0 {
            events.len() as f64 / (apply_ns as f64 / 1e9)
        } else {
            f64::INFINITY
        },
        samples,
        compact_ns,
        compact_io: report.io,
        merge_floor_blocks,
        compacted_query_ns,
        compacted_query_io: compacted.io.total(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_geometry::RectSize;

    #[test]
    fn replay_is_verified_and_meters_the_merge_floor() {
        let cfg = EventStreamConfig {
            events: 1_200,
            delete_fraction: 0.3,
            ..Default::default()
        };
        let config = EmConfig::new(512, 32 * 512).unwrap();
        let query = Query::max_rs(RectSize::square(0.05 * cfg.extent));
        let run = run_delta(&cfg, 9, config, &query, 6).unwrap();
        assert!(run.verified, "delta answers diverged from prepare");
        assert_eq!(run.events, 1_200);
        assert_eq!(run.samples.len(), 6);
        assert!(run.delta_len_max > 0, "the delta never held records");
        assert!(run.survivors > 0);
        assert!(
            run.compact_io.total() <= 2 * run.merge_floor_blocks + 8,
            "compaction I/O {} exceeds 2×floor {}",
            run.compact_io,
            run.merge_floor_blocks
        );

        let json = run.to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("delta"));
        assert_eq!(json.get("query").unwrap().as_str(), Some("max-rs"));
        assert_eq!(json.get("verified").unwrap(), &Value::Bool(true));
        let samples = match json.get("samples").unwrap() {
            Value::Array(s) => s,
            other => panic!("samples must be an array, got {other:?}"),
        };
        assert_eq!(samples.len(), run.samples.len());
    }
}
