//! Experiment configuration: the paper's parameters and the scaling knob.

use maxrs_em::EmConfig;

/// Block size used throughout the paper (Table 3).
pub const PAPER_BLOCK_SIZE: usize = 4096;
/// Default buffer size for synthetic datasets (Table 3).
pub const PAPER_BUFFER_SYNTHETIC: usize = 1024 * 1024;
/// Default buffer size for real datasets (Table 3).
pub const PAPER_BUFFER_REAL: usize = 256 * 1024;
/// Default dataset cardinality for synthetic experiments (Table 3).
pub const PAPER_CARDINALITY: usize = 250_000;
/// Default rectangle side / circle diameter (Table 3).
pub const PAPER_RANGE: f64 = 1000.0;
/// Cardinality sweep of Figure 12.
pub const PAPER_CARDINALITIES: [usize; 5] = [100_000, 200_000, 300_000, 400_000, 500_000];
/// Buffer-size sweep of Figure 13 (bytes).
pub const PAPER_BUFFERS_SYNTHETIC: [usize; 5] = [
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    1536 * 1024,
    2048 * 1024,
];
/// Buffer-size sweep of Figure 15 (bytes).
pub const PAPER_BUFFERS_REAL: [usize; 5] =
    [64 * 1024, 128 * 1024, 256 * 1024, 384 * 1024, 512 * 1024];
/// Range-size sweep of Figures 14 and 16.
pub const PAPER_RANGES: [f64; 5] = [1000.0, 2500.0, 5000.0, 7500.0, 10000.0];
/// Diameter sweep of Figure 17.
pub const PAPER_DIAMETERS: [f64; 5] = [1000.0, 2500.0, 5000.0, 7500.0, 10000.0];

/// Scales the paper's experiment sizes down so that the full suite (including
/// the intentionally quadratic Naïve baseline) completes in minutes on a
/// laptop while preserving every qualitative relationship of the figures.
///
/// The factor multiplies dataset cardinalities *and* buffer sizes, keeping the
/// ratio `N/M` — the quantity that actually drives all three algorithms'
/// behaviour — at its paper value.  Block size, the data-space extent and the
/// query range are not scaled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Multiplier applied to cardinalities and buffer sizes.
    pub factor: f64,
}

impl ExperimentScale {
    /// The paper's exact sizes.
    pub fn paper() -> Self {
        ExperimentScale { factor: 1.0 }
    }

    /// The default reduced scale used by `cargo run -p maxrs-bench --bin
    /// experiments` (4% of the paper's sizes).
    pub fn reduced() -> Self {
        ExperimentScale { factor: 0.04 }
    }

    /// A very small scale suitable for smoke tests and CI.
    pub fn smoke() -> Self {
        ExperimentScale { factor: 0.01 }
    }

    /// An arbitrary scale factor (clamped to a sensible minimum).
    pub fn new(factor: f64) -> Self {
        ExperimentScale {
            factor: factor.clamp(0.001, 1.0),
        }
    }

    /// Scales a dataset cardinality (at least 200 objects).
    pub fn cardinality(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.factor).round() as usize).max(200)
    }

    /// Scales a buffer size, keeping at least four blocks.
    pub fn buffer_bytes(&self, paper_bytes: usize) -> usize {
        let scaled = (paper_bytes as f64 * self.factor).round() as usize;
        scaled.max(4 * PAPER_BLOCK_SIZE)
    }

    /// EM configuration for a scaled buffer.
    pub fn em_config(&self, paper_buffer: usize) -> EmConfig {
        EmConfig::new(PAPER_BLOCK_SIZE, self.buffer_bytes(paper_buffer))
            .expect("scaled buffer always holds at least two blocks")
    }

    /// `true` when running at the paper's exact sizes.
    pub fn is_paper_scale(&self) -> bool {
        (self.factor - 1.0).abs() < f64::EPSILON
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_table3() {
        assert_eq!(PAPER_BLOCK_SIZE, 4096);
        assert_eq!(PAPER_BUFFER_SYNTHETIC, 1024 * 1024);
        assert_eq!(PAPER_BUFFER_REAL, 256 * 1024);
        assert_eq!(PAPER_CARDINALITY, 250_000);
        assert_eq!(PAPER_RANGE, 1000.0);
        assert_eq!(PAPER_CARDINALITIES[0], 100_000);
        assert_eq!(PAPER_CARDINALITIES[4], 500_000);
    }

    #[test]
    fn scaling_behaviour() {
        let s = ExperimentScale::new(0.1);
        assert_eq!(s.cardinality(250_000), 25_000);
        assert_eq!(s.buffer_bytes(1024 * 1024), 104_858);
        assert!(ExperimentScale::paper().is_paper_scale());
        assert!(!s.is_paper_scale());
        // Tiny factors clamp to usable minima.
        let tiny = ExperimentScale::new(0.000001);
        assert!(tiny.cardinality(100_000) >= 200);
        assert!(tiny.buffer_bytes(1024 * 1024) >= 4 * PAPER_BLOCK_SIZE);
        let cfg = tiny.em_config(PAPER_BUFFER_SYNTHETIC);
        assert!(cfg.buffer_blocks() >= 4);
    }

    #[test]
    fn default_is_reduced() {
        assert_eq!(ExperimentScale::default(), ExperimentScale::reduced());
        assert!(ExperimentScale::smoke().factor < ExperimentScale::reduced().factor);
    }
}
