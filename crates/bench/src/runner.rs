//! Running one algorithm on one dataset under one EM configuration.

use std::time::Instant;

use maxrs_baselines::{asb_tree_sweep, naive_sweep, Algorithm};
use maxrs_core::{
    exact_max_rs, load_objects, EngineOptions, EngineRun, ExactMaxRsOptions, MaxRsEngine,
    MaxRsResult, Query, QueryBatch, QueryRun,
};
use maxrs_em::{EmConfig, EmContext, IoSnapshot};
use maxrs_geometry::{RectSize, WeightedPoint};

use crate::json::Value;

/// Outcome of one algorithm run: the answer and the I/O it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmRun {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The MaxRS answer it produced.
    pub result: MaxRsResult,
    /// Blocks transferred while solving (dataset loading excluded, exactly as
    /// the paper measures query processing only).
    pub io: IoSnapshot,
}

/// Runs `algorithm` on `objects` under a fresh EM context with the given
/// configuration and query rectangle, measuring only the solving phase.
pub fn run_algorithm(
    algorithm: Algorithm,
    config: EmConfig,
    objects: &[WeightedPoint],
    size: RectSize,
) -> maxrs_core::Result<AlgorithmRun> {
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, objects)?;
    // Loading the dataset is not part of the measured query cost.
    ctx.reset_stats();
    let result = match algorithm {
        Algorithm::NaiveSweep => naive_sweep(&ctx, &file, size)?,
        Algorithm::AsbTree => asb_tree_sweep(&ctx, &file, size)?,
        // The figures reproduce the *paper's* sequential sweep, so the
        // parallel slab stage is pinned off here regardless of the host's
        // core count; `run_engine` below measures the parallel variant.
        Algorithm::ExactMaxRs => exact_max_rs(&ctx, &file, size, &ExactMaxRsOptions::sequential())?,
    };
    let io = ctx.stats();
    Ok(AlgorithmRun {
        algorithm,
        result,
        io,
    })
}

/// Runs a MaxRS query through the [`MaxRsEngine`] facade under a fresh EM
/// context, measuring only the solving phase (dataset loading excluded).
///
/// `parallelism` caps the worker threads of the parallel slab stage; `1`
/// forces the engine's external-sequential path for datasets that exceed the
/// memory budget, making `run_engine(cfg, objs, size, 1)` vs.
/// `run_engine(cfg, objs, size, n)` a direct sequential-vs-parallel
/// comparison.
pub fn run_engine(
    config: EmConfig,
    objects: &[WeightedPoint],
    size: RectSize,
    parallelism: usize,
) -> maxrs_core::Result<EngineRun> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    });
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, objects)?;
    // The engine reports I/O as a delta across the solve, so the load above
    // is already excluded from the returned EngineRun.
    engine.solve_file(&ctx, &file, size)
}

/// Runs any [`Query`] variant through the [`MaxRsEngine`] under a fresh EM
/// context, measuring only the query phase (dataset loading excluded) — the
/// variant-polymorphic sibling of [`run_engine`] behind the `engine_variants`
/// bench rows.
pub fn run_query(
    config: EmConfig,
    objects: &[WeightedPoint],
    query: &Query,
    parallelism: usize,
) -> maxrs_core::Result<QueryRun> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    });
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, objects)?;
    // As in `run_engine`, the engine reports I/O as a delta across the query,
    // which already excludes the load above.
    engine.run_file(&ctx, &file, query)
}

/// One cold-vs-prepared comparison: the same query answered by a stateless
/// [`MaxRsEngine::run_file`] (pays the external sort every time) and by the
/// second run on a [`PreparedDataset`](maxrs_core::PreparedDataset) (sort
/// paid once at prepare time), with wall-clock and I/O for every phase and
/// the storage-backend name recorded alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedReuseRun {
    /// Storage-backend name of the context ("sim", "fs").
    pub backend: String,
    /// Short name of the query variant measured.
    pub query: String,
    /// Dataset cardinality.
    pub n: u64,
    /// Wall-clock of the cold single-shot query, in nanoseconds.
    pub cold_ns: u128,
    /// Wall-clock of the one-time preparation (external x-sort).
    pub prepare_ns: u128,
    /// Wall-clock of the *second* query on the prepared dataset (the first
    /// warm run is discarded as pool warm-up).
    pub warm_ns: u128,
    /// Blocks transferred by the cold query.
    pub cold_io: IoSnapshot,
    /// Blocks transferred by the preparation.
    pub prepare_io: IoSnapshot,
    /// Blocks transferred by the measured warm query.
    pub warm_io: IoSnapshot,
}

impl PreparedReuseRun {
    /// Serializes the comparison for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("id", Value::String("prepared_reuse".into())),
            ("backend", Value::String(self.backend.clone())),
            ("query", Value::String(self.query.clone())),
            ("n", Value::Number(self.n as f64)),
            ("cold_ns", Value::Number(self.cold_ns as f64)),
            ("prepare_ns", Value::Number(self.prepare_ns as f64)),
            ("warm_ns", Value::Number(self.warm_ns as f64)),
            ("cold_io", Value::Number(self.cold_io.total() as f64)),
            ("prepare_io", Value::Number(self.prepare_io.total() as f64)),
            ("warm_io", Value::Number(self.warm_io.total() as f64)),
            (
                "io_saved_per_query",
                Value::Number(self.cold_io.total_delta(&self.warm_io) as f64),
            ),
        ])
    }
}

/// Measures cold-vs-prepared execution of `query` under a fresh EM context
/// (dataset loading excluded from every phase, as usual).
pub fn run_prepared_reuse(
    config: EmConfig,
    objects: &[WeightedPoint],
    query: &Query,
    parallelism: usize,
) -> maxrs_core::Result<PreparedReuseRun> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    });
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, objects)?;

    let t = Instant::now();
    let cold = engine.run_file(&ctx, &file, query)?;
    let cold_ns = t.elapsed().as_nanos();

    let t = Instant::now();
    let prepared = engine.prepare_file(&ctx, &file)?;
    let prepare_ns = t.elapsed().as_nanos();

    // First warm run fills the buffer pool; the second is the steady state a
    // repeated-query workload observes.
    let _ = prepared.run(query)?;
    let t = Instant::now();
    let warm = prepared.run(query)?;
    let warm_ns = t.elapsed().as_nanos();

    Ok(PreparedReuseRun {
        backend: ctx.backend_name().to_string(),
        query: query.name().to_string(),
        n: file.len(),
        cold_ns,
        prepare_ns,
        warm_ns,
        cold_io: cold.io,
        prepare_io: prepared.prepare_io(),
        warm_io: warm.io,
    })
}

/// One batched-vs-independent comparison over a shared
/// [`PreparedDataset`](maxrs_core::PreparedDataset): the same M queries
/// answered by one `run_batch` (shared sweep passes) and by M independent
/// `run` calls, with wall-clock, I/O, throughput and the per-query I/O
/// attribution recorded for the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRun {
    /// Storage-backend name of the context ("sim", "fs").
    pub backend: String,
    /// Dataset cardinality.
    pub n: u64,
    /// Short names of the batched queries, in batch order.
    pub queries: Vec<String>,
    /// Number of shared sweep groups the batch planned into.
    pub groups: usize,
    /// Wall-clock of the one `run_batch` call, in nanoseconds.
    pub batch_ns: u128,
    /// Blocks transferred by the batch.
    pub batch_io: IoSnapshot,
    /// Wall-clock of the M independent `run` calls, in nanoseconds.
    pub independent_ns: u128,
    /// Blocks transferred by the independent runs.
    pub independent_io: IoSnapshot,
    /// Per-query I/O attribution of the batch (leader-attributed shared
    /// passes; sums to `batch_io`).
    pub per_query_io: Vec<IoSnapshot>,
    /// Whether every batched answer was bit-identical to its independent run.
    pub verified: bool,
}

impl BatchRun {
    /// Queries per second achieved by the batched path.
    pub fn batch_qps(&self) -> f64 {
        self.queries.len() as f64 / (self.batch_ns.max(1) as f64 / 1e9)
    }

    /// Queries per second achieved by the independent path.
    pub fn independent_qps(&self) -> f64 {
        self.queries.len() as f64 / (self.independent_ns.max(1) as f64 / 1e9)
    }

    /// Serializes the comparison for the experiment harness's JSON output:
    /// queries/sec for both paths plus a per-query I/O row per batched query.
    pub fn to_value(&self) -> Value {
        let per_query: Vec<Value> = self
            .queries
            .iter()
            .zip(&self.per_query_io)
            .map(|(name, io)| {
                Value::object(vec![
                    ("query", Value::String(name.clone())),
                    ("io", Value::Number(io.total() as f64)),
                    ("reads", Value::Number(io.reads as f64)),
                    ("writes", Value::Number(io.writes as f64)),
                ])
            })
            .collect();
        Value::object(vec![
            ("id", Value::String("batch".into())),
            ("backend", Value::String(self.backend.clone())),
            ("n", Value::Number(self.n as f64)),
            ("queries", Value::Number(self.queries.len() as f64)),
            ("groups", Value::Number(self.groups as f64)),
            ("batch_ns", Value::Number(self.batch_ns as f64)),
            ("batch_io", Value::Number(self.batch_io.total() as f64)),
            ("batch_qps", Value::Number(self.batch_qps())),
            ("independent_ns", Value::Number(self.independent_ns as f64)),
            (
                "independent_io",
                Value::Number(self.independent_io.total() as f64),
            ),
            ("independent_qps", Value::Number(self.independent_qps())),
            (
                "io_saved",
                Value::Number(self.independent_io.total_delta(&self.batch_io) as f64),
            ),
            ("per_query", Value::Array(per_query)),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

/// Measures batched vs. independent execution of `queries` over one prepared
/// dataset under a fresh EM context (dataset loading and the one-time
/// preparation excluded from both measured paths, as usual).  The batch runs
/// first, so buffer-pool warmth favors the independent baseline and the
/// reported savings stay conservative.
pub fn run_query_batch(
    config: EmConfig,
    objects: &[WeightedPoint],
    queries: &[Query],
    parallelism: usize,
) -> maxrs_core::Result<BatchRun> {
    let engine = MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    });
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, objects)?;
    let prepared = engine.prepare_file(&ctx, &file)?;
    let batch = QueryBatch::new(queries)?;

    let before = ctx.stats();
    let t = Instant::now();
    let batched = prepared.run_planned(&batch)?;
    let batch_ns = t.elapsed().as_nanos();
    let batch_io = ctx.stats().delta(&before);

    let before = ctx.stats();
    let t = Instant::now();
    let independent: Vec<QueryRun> = queries
        .iter()
        .map(|q| prepared.run(q))
        .collect::<maxrs_core::Result<_>>()?;
    let independent_ns = t.elapsed().as_nanos();
    let independent_io = ctx.stats().delta(&before);

    let verified = batched
        .iter()
        .zip(&independent)
        .all(|(b, s)| b.answer == s.answer);
    Ok(BatchRun {
        backend: ctx.backend_name().to_string(),
        n: file.len(),
        queries: queries.iter().map(|q| q.name().to_string()).collect(),
        groups: batch.num_groups(),
        batch_ns,
        batch_io,
        independent_ns,
        independent_io,
        per_query_io: batched.iter().map(|r| r.io).collect(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_datagen::{Dataset, DatasetKind};

    #[test]
    fn all_algorithms_agree_and_are_ordered_by_io() {
        let ds = Dataset::generate(DatasetKind::Uniform, 600, 11);
        let config = EmConfig::new(4096, 8 * 4096).unwrap();
        let size = RectSize::square(50_000.0);
        let runs: Vec<AlgorithmRun> = Algorithm::ALL
            .iter()
            .map(|&a| run_algorithm(a, config, &ds.objects, size).unwrap())
            .collect();
        let weights: Vec<f64> = runs.iter().map(|r| r.result.total_weight).collect();
        assert_eq!(weights[0], weights[1]);
        assert_eq!(weights[1], weights[2]);
        assert!(weights[0] >= 1.0);
        let naive = runs[0].io.total();
        let asb = runs[1].io.total();
        let exact = runs[2].io.total();
        assert!(
            exact < asb && asb < naive,
            "expected ExactMaxRS < aSB-tree < Naive, got {exact} / {asb} / {naive}"
        );
    }

    #[test]
    fn run_query_answers_every_variant_with_one_substrate() {
        use maxrs_core::Query;
        use maxrs_geometry::Rect;

        let ds = Dataset::generate(DatasetKind::Uniform, 1500, 17);
        let config = EmConfig::new(512, 64 * 512).unwrap();
        let size = RectSize::square(60_000.0);
        let domain = Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0);

        let max = run_query(config, &ds.objects, &Query::max_rs(size), 1).unwrap();
        let top = run_query(config, &ds.objects, &Query::top_k(size, 3), 1).unwrap();
        let min = run_query(config, &ds.objects, &Query::min_rs(size, domain), 1).unwrap();
        let crs = run_query(config, &ds.objects, &Query::approx_max_crs(60_000.0), 1).unwrap();

        // 1500 objects exceed the tiny buffer: every variant went external.
        for run in [&max, &top, &min, &crs] {
            assert_ne!(run.strategy, maxrs_core::ExecutionStrategy::InMemory);
            assert!(run.io.total() > 0);
        }
        // Shapes and cross-variant consistency.
        let best = max.answer.as_max_rs().unwrap().total_weight;
        let placements = top.answer.placements().unwrap();
        assert_eq!(placements[0].total_weight, best, "top-1 equals MaxRS");
        assert!(min.answer.as_max_rs().unwrap().total_weight <= best);
        assert!(crs.answer.as_max_crs().unwrap().total_weight <= best + 1e-9);
    }

    #[test]
    fn prepared_reuse_records_backend_and_beats_cold_io() {
        let ds = Dataset::generate(DatasetKind::Uniform, 2000, 7);
        let config = EmConfig::new(512, 32 * 512).unwrap();
        let run = run_prepared_reuse(
            config,
            &ds.objects,
            &Query::max_rs(RectSize::square(50_000.0)),
            1,
        )
        .unwrap();
        assert_eq!(run.backend, config.backend.name());
        assert_eq!(run.n, 2000);
        assert!(run.prepare_io.total() > 0, "the x-sort does I/O");
        assert!(
            run.warm_io.total() < run.cold_io.total(),
            "warm {} must beat cold {}",
            run.warm_io,
            run.cold_io
        );
        let json = run.to_value();
        assert_eq!(
            json.get("backend").unwrap().as_str(),
            Some(run.backend.as_str())
        );
        assert_eq!(json.get("query").unwrap().as_str(), Some("max-rs"));
        assert!(json.get("warm_ns").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(
            json.get("io_saved_per_query").unwrap().as_f64().unwrap(),
            run.cold_io.total_delta(&run.warm_io) as f64
        );
    }

    #[test]
    fn batch_run_verifies_and_beats_independent_io() {
        use maxrs_geometry::Rect;

        let ds = Dataset::generate(DatasetKind::Uniform, 2500, 13);
        let config = EmConfig::new(512, 32 * 512).unwrap();
        let size = RectSize::square(60_000.0);
        let queries = vec![
            Query::max_rs(size),
            Query::top_k(size, 2),
            Query::approx_max_crs(60_000.0),
            Query::min_rs(size, Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0)),
        ];
        let run = run_query_batch(config, &ds.objects, &queries, 1).unwrap();
        assert!(run.verified, "batched answers diverged");
        assert_eq!(run.backend, config.backend.name());
        assert_eq!(run.queries.len(), 4);
        assert_eq!(run.groups, 2, "three variants share one sweep group");
        assert!(
            run.batch_io.total() < run.independent_io.total(),
            "batch {} vs independent {}",
            run.batch_io,
            run.independent_io
        );
        // Leader attribution sums to the measured batch total.
        let attributed: u64 = run.per_query_io.iter().map(|io| io.total()).sum();
        assert_eq!(attributed, run.batch_io.total());

        let json = run.to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("batch"));
        assert_eq!(json.get("groups").unwrap().as_f64(), Some(2.0));
        assert!(json.get("batch_qps").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            json.get("io_saved").unwrap().as_f64().unwrap(),
            run.independent_io.total_delta(&run.batch_io) as f64
        );
    }

    #[test]
    fn io_excludes_dataset_loading() {
        let ds = Dataset::generate(DatasetKind::Gaussian, 2000, 2);
        let config = EmConfig::new(4096, 8 * 4096).unwrap();
        let run = run_algorithm(
            Algorithm::ExactMaxRs,
            config,
            &ds.objects,
            RectSize::square(10_000.0),
        )
        .unwrap();
        // The solve phase of a dataset larger than the buffer must do real I/O,
        // but far less than the data would need if it were re-read per event.
        assert!(run.io.total() > 0);
        let rect_blocks = config.blocks_for::<maxrs_core::RectRecord>(2000);
        assert!(run.io.total() < 100 * rect_blocks);
        assert_eq!(run.algorithm, Algorithm::ExactMaxRs);
    }
}
