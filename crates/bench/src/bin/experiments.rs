//! Command-line experiment driver reproducing the paper's evaluation.
//!
//! ```text
//! cargo run --release -p maxrs-bench --bin experiments -- all
//! cargo run --release -p maxrs-bench --bin experiments -- fig12 --scale 0.05
//! cargo run --release -p maxrs-bench --bin experiments -- fig17 --paper-scale
//! cargo run --release -p maxrs-bench --bin experiments -- fig13 --no-naive --json out.json
//! ```
//!
//! By default the sweeps run at 4% of the paper's sizes (`--scale 0.04`) with
//! the buffer scaled proportionally, which preserves every qualitative
//! relationship of the figures while keeping the intentionally quadratic Naïve
//! baseline tractable; `--paper-scale` selects the exact paper parameters.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use maxrs_bench::cluster_run::{run_cluster_curve, ClusterRun};
use maxrs_bench::config::{
    ExperimentScale, PAPER_BUFFER_SYNTHETIC, PAPER_CARDINALITY, PAPER_RANGE,
};
use maxrs_bench::delta_run::{run_delta, DeltaRun};
use maxrs_bench::figures::{
    fig12_cardinality, fig13_buffer, fig14_range, fig15_buffer_real, fig16_range_real,
    fig17_quality, FigureOptions,
};
use maxrs_bench::frontier_run::{run_sweepfront, SweepfrontReport};
use maxrs_bench::json::Value;
use maxrs_bench::report::FigureReport;
use maxrs_bench::runner::{run_prepared_reuse, run_query_batch, BatchRun, PreparedReuseRun};
use maxrs_bench::serve_run::{run_serve, ServeRun};
use maxrs_bench::shard_run::{run_shard_curve, ShardRun};
use maxrs_bench::stream_run::{run_stream, StreamRun};
use maxrs_bench::tables::{table2, table3};
use maxrs_core::Query;
use maxrs_datagen::{Dataset, DatasetKind, EventStreamConfig};
use maxrs_geometry::{Rect, RectSize};
use maxrs_serve::{OverloadPolicy, ServeConfig};
use maxrs_stream::StreamConfig;

struct Args {
    command: String,
    scale: ExperimentScale,
    seed: u64,
    no_naive: bool,
    json_path: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut parsed = Args {
        command,
        scale: ExperimentScale::default(),
        seed: 42,
        no_naive: false,
        json_path: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                let f: f64 = v.parse().map_err(|_| format!("bad scale factor: {v}"))?;
                parsed.scale = ExperimentScale::new(f);
            }
            "--paper-scale" => parsed.scale = ExperimentScale::paper(),
            "--smoke" => parsed.scale = ExperimentScale::smoke(),
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--no-naive" => parsed.no_naive = true,
            "--json" => {
                parsed.json_path = Some(args.next().ok_or("--json needs a path")?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(parsed)
}

fn usage() -> &'static str {
    "usage: experiments \
     <all|fig12|fig13|fig14|fig15|fig16|fig17|table2|table3|prepared|batch|stream|serve|delta|shard|cluster|sweepfront> \
     [--scale F | --paper-scale | --smoke] [--seed N] [--no-naive] [--json PATH]"
}

/// The streaming workload: replay generated insert/delete/tick sequences
/// through the incremental [`StreamEngine`](maxrs_stream::StreamEngine) —
/// plain, windowed and top-k — reporting ingest events/sec, incremental
/// answer latency and the speedup over a from-scratch recompute.  Every row
/// is verified: the final incremental answer must be bit-identical to the
/// batch engine on the surviving objects.
fn stream_runs(opts: &FigureOptions) -> Vec<StreamRun> {
    // The event count scales like the dataset cardinalities of the figures;
    // ~60k events at the default 4% scale, 15k under --smoke.  Answers are
    // taken every ~30 events — the high-frequency regime incremental
    // maintenance exists for (a full recompute per answer would dominate).
    let events = opts.scale.cardinality(1_500_000).max(1_000);
    let answer_every = (events / 500).max(1);
    let cfg = EventStreamConfig {
        events,
        ..Default::default()
    };
    let size = RectSize::square(10_000.0);
    let window = cfg.mean_dt * events as f64 / 4.0;
    let variants = [
        ("plain max-rs", StreamConfig::max_rs(size)),
        ("windowed", StreamConfig::max_rs(size).with_window(window)),
        ("top-k", StreamConfig::top_k(size, 3)),
    ];
    variants
        .iter()
        .map(|(name, config)| {
            let run =
                run_stream(&cfg, opts.seed, *config, answer_every).expect("stream replay failed");
            assert!(run.verified, "{name}: incremental answer diverged");
            run
        })
        .collect()
}

/// Cold-vs-prepared comparison at the synthetic defaults: how much I/O and
/// wall-clock a repeated-query workload saves per query by reusing one
/// [`PreparedDataset`](maxrs_core::PreparedDataset), per query variant.  The
/// storage backend in use (sim by default, `MAXRS_BACKEND=fs` for real
/// files) is recorded in every row.
fn prepared_reuse(opts: &FigureOptions) -> Vec<PreparedReuseRun> {
    let n = opts.scale.cardinality(PAPER_CARDINALITY);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let ds = Dataset::generate(DatasetKind::Uniform, n, opts.seed);
    let size = RectSize::square(PAPER_RANGE);
    [
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::approx_max_crs(PAPER_RANGE),
    ]
    .iter()
    .map(|q| {
        run_prepared_reuse(config, &ds.objects, q, 1).expect("prepared-reuse measurement failed")
    })
    .collect()
}

/// Batched-vs-independent execution of a serving-style query mix over one
/// prepared dataset: two mixes — one where every query shares a single sweep
/// group (the best case) and one mixed-size/mixed-variant workload — each
/// verified bit-identical against per-query runs and reported as
/// queries/sec + per-query I/O JSON rows.
fn batch_runs(opts: &FigureOptions) -> Vec<BatchRun> {
    let n = opts.scale.cardinality(PAPER_CARDINALITY);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let ds = Dataset::generate(DatasetKind::Uniform, n, opts.seed);
    let size = RectSize::square(PAPER_RANGE);
    let domain = Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0);
    let shared_group: Vec<Query> = vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::approx_max_crs(PAPER_RANGE),
        Query::max_rs(size),
    ];
    let mixed: Vec<Query> = vec![
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(PAPER_RANGE),
        Query::min_rs(size, domain),
        Query::max_rs(RectSize::square(PAPER_RANGE * 2.0)),
    ];
    [shared_group, mixed]
        .iter()
        .map(|queries| {
            let run =
                run_query_batch(config, &ds.objects, queries, 1).expect("batch measurement failed");
            assert!(run.verified, "batched answers diverged from per-query runs");
            run
        })
        .collect()
}

/// Closed-loop load generation against the concurrent serving layer: 8
/// client threads drive a [`MaxRsServer`](maxrs_serve::MaxRsServer) over one
/// registered dataset, once with the default dynamic micro-batching and once
/// in pass-through mode (`max_batch = 1`) as the no-batching baseline.  The
/// batched row must show a mean flushed batch size above 1 — the direct
/// evidence that strangers' queries shared sweep passes — and every response
/// in both rows is verified bit-identical to a sequential run.
fn serve_runs(opts: &FigureOptions) -> Vec<ServeRun> {
    let n = opts.scale.cardinality(PAPER_CARDINALITY);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let ds = Dataset::generate(DatasetKind::Uniform, n, opts.seed);
    let size = RectSize::square(PAPER_RANGE);
    let domain = Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0);
    let pool = vec![
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(PAPER_RANGE),
        Query::min_rs(size, domain),
        Query::max_rs(RectSize::square(PAPER_RANGE * 2.0)),
    ];
    let batched = ServeConfig {
        window: std::time::Duration::from_millis(3),
        max_batch: 8,
        workers: 2,
        queue_capacity: 1024,
        overload: OverloadPolicy::Block,
    };
    let pass_through = ServeConfig {
        max_batch: 1,
        ..batched
    };
    let run =
        run_serve(config, &ds.objects, &pool, batched, 8, 12).expect("serve measurement failed");
    assert!(run.verified, "served answers diverged from sequential runs");
    assert!(
        run.mean_batch_size > 1.0,
        "micro-batching never grouped concurrent queries (mean batch size {})",
        run.mean_batch_size
    );
    let baseline = run_serve(config, &ds.objects, &pool, pass_through, 8, 12)
        .expect("serve baseline measurement failed");
    assert!(baseline.verified, "pass-through answers diverged");
    vec![run, baseline]
}

/// The delta-main workload: replay insert/delete event streams into a
/// [`DeltaDataset`](maxrs_core::DeltaDataset), measuring query latency as
/// the pending delta grows, then the compaction's cost against its `2·N/B`
/// sequential-merge floor — once with moderate and once with heavy delete
/// churn (the tombstone-dominated regime).  Every measured answer is
/// verified bit-identical to a from-scratch prepare over the survivors.
fn delta_runs(opts: &FigureOptions) -> Vec<DeltaRun> {
    let events = opts.scale.cardinality(800_000).max(2_000);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let query = Query::max_rs(RectSize::square(10_000.0));
    [0.15, 0.4]
        .iter()
        .map(|&delete_fraction| {
            let cfg = EventStreamConfig {
                events,
                delete_fraction,
                ..Default::default()
            };
            let run = run_delta(&cfg, opts.seed, config, &query, 8).expect("delta replay failed");
            assert!(run.verified, "delta answers diverged from prepare");
            run
        })
        .collect()
}

/// Sharded-prepare scaling: the **same** fixed input is partitioned and
/// prepared through a [`maxrs_core::ShardedDataset`] at K ∈ {1, 2, 4, 8},
/// so prepare wall-clock vs shard count is the curve (the headline: the
/// one-time external sort scales with cores).  The input is deliberately
/// larger than the figure sweeps — per-shard sort work has to dwarf the
/// pool's spawn cost for the speedup to mean anything — and the query set
/// mixes whole-domain MaxRS/top-k with narrow- and wide-domain MinRS so the
/// samples cover the shards-touched spectrum.  Every sampled answer of
/// every row is verified bit-identical to an unsharded prepare.
fn shard_runs(opts: &FigureOptions) -> Vec<ShardRun> {
    let n = opts.scale.cardinality(12_000_000).max(20_000);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let ds = Dataset::generate(DatasetKind::Uniform, n, opts.seed);
    let size = RectSize::square(PAPER_RANGE);
    let queries = vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::min_rs(size, Rect::new(450_000.0, 470_000.0, 0.0, 1_000_000.0)),
        Query::min_rs(size, Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0)),
    ];
    let rows = run_shard_curve(config, &ds.objects, &[1, 2, 4, 8], &queries)
        .expect("shard scaling measurement failed");
    for row in &rows {
        assert!(
            row.verified,
            "K={} sharded answers diverged from the unsharded prepare",
            row.shards_requested
        );
    }
    rows
}

/// Cluster scale-out: the same fixed input at a fixed shard count (K = 6)
/// is hosted on 1, 2, 3 and 6 [`maxrs_cluster::ShardServer`]s over the
/// in-process transport, plus one row over real TCP loopback at 6 servers,
/// so query latency and queries/sec vs server count is the curve and the
/// TCP row isolates the wire cost.  The query set mixes whole-domain
/// MaxRS/top-k with narrow- and wide-domain MinRS so the samples cover the
/// shards-touched (and hence fan-out) spectrum.  Every sampled answer of
/// every row is verified bit-identical to an unsharded prepare.
fn cluster_runs(opts: &FigureOptions) -> Vec<ClusterRun> {
    let n = opts.scale.cardinality(PAPER_CARDINALITY).max(5_000);
    let config = opts.scale.em_config(PAPER_BUFFER_SYNTHETIC);
    let ds = Dataset::generate(DatasetKind::Uniform, n, opts.seed);
    let size = RectSize::square(PAPER_RANGE);
    let queries = vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::min_rs(size, Rect::new(450_000.0, 470_000.0, 0.0, 1_000_000.0)),
        Query::min_rs(size, Rect::new(100_000.0, 900_000.0, 100_000.0, 900_000.0)),
    ];
    let rows = run_cluster_curve(config, &ds.objects, 6, &[1, 2, 3, 6], &queries)
        .expect("cluster scale-out measurement failed");
    for row in &rows {
        assert!(
            row.verified,
            "{} x{} cluster answers diverged from the unsharded prepare",
            row.transport, row.servers
        );
    }
    rows
}

/// The sweep-front structure comparison: the locality-aware
/// [`FrontierMap`](maxrs_core::FrontierMap) against the `BTreeMap` it
/// replaced, replaying identical op sequences (lookups, value-replacing
/// inserts, successor probes) over the same preloaded keys on sequential,
/// local and random access patterns, plus one end-to-end stream replay.
/// Both drivers fold the touched values into a checksum that must agree, and
/// the two patterns the structure was built for — sequential and local —
/// must actually win, so a locality regression fails the harness rather
/// than silently shipping a slower map.
fn sweepfront_runs(opts: &FigureOptions) -> SweepfrontReport {
    let report = run_sweepfront(opts);
    for row in &report.patterns {
        if matches!(row.pattern.as_str(), "sequential" | "local") {
            assert!(
                row.speedup() > 1.0,
                "{}: FrontierMap lost to BTreeMap ({:.1} vs {:.1} ns/op)",
                row.pattern,
                row.frontier_ns_per_op,
                row.btreemap_ns_per_op
            );
        }
    }
    report
}

fn print_sweepfront_report(report: &SweepfrontReport) {
    for row in &report.patterns {
        println!(
            "  {:<10} keys={} ops={} btreemap={:.1} ns/op frontier={:.1} ns/op speedup={:.2}x",
            row.pattern,
            row.keys,
            row.ops,
            row.btreemap_ns_per_op,
            row.frontier_ns_per_op,
            row.speedup(),
        );
    }
    let s = &report.stream;
    println!(
        "  engine_stream events={} survivors={} ingest={:.0} ev/s answer_mean={:.1?} (verified)",
        s.events,
        s.survivors,
        s.events_per_sec,
        std::time::Duration::from_nanos(s.answer_ns_mean as u64),
    );
}

fn print_cluster_rows(rows: &[ClusterRun]) {
    for row in rows {
        let samples: Vec<String> = row
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{}:{}sh/{}srv {:.1?}/{}",
                    s.query,
                    s.shards_touched,
                    s.fan_out,
                    std::time::Duration::from_nanos(s.query_ns as u64),
                    s.query_io
                )
            })
            .collect();
        println!(
            "  backend={:<4} transport={:<10} n={} K={} servers={} qps={:.1} queries=[{}]",
            row.backend,
            row.transport,
            row.n,
            row.shards,
            row.servers,
            row.qps(),
            samples.join(", "),
        );
    }
}

fn print_shard_rows(rows: &[ShardRun]) {
    for row in rows {
        let lens: Vec<String> = row.shard_lens.iter().map(|l| l.to_string()).collect();
        let samples: Vec<String> = row
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{}:{}sh {:.1?}/{}",
                    s.query,
                    s.shards_touched,
                    std::time::Duration::from_nanos(s.query_ns as u64),
                    s.query_io
                )
            })
            .collect();
        println!(
            "  backend={:<4} n={} K={}({} built) prepare={:.1?}/{} blk \
             speedup={:.2}x lens=[{}] queries=[{}]",
            row.backend,
            row.n,
            row.shards_requested,
            row.shards,
            std::time::Duration::from_nanos(row.prepare_ns as u64),
            row.prepare_io.total(),
            row.speedup_vs_one,
            lens.join(", "),
            samples.join(", "),
        );
    }
}

fn print_delta_rows(rows: &[DeltaRun]) {
    for row in rows {
        let curve: Vec<String> = row
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{}@{:.1?}",
                    s.delta_len,
                    std::time::Duration::from_nanos(s.query_ns as u64)
                )
            })
            .collect();
        println!(
            "  backend={:<4} events={} survivors={} ingest={:.0} ev/s \
             delta_max={} compact={:.1?}/{} (floor {} blk) warm={:.1?}/{} \
             curve=[{}]",
            row.backend,
            row.events,
            row.survivors,
            row.events_per_sec,
            row.delta_len_max,
            std::time::Duration::from_nanos(row.compact_ns as u64),
            row.compact_io,
            row.merge_floor_blocks,
            std::time::Duration::from_nanos(row.compacted_query_ns as u64),
            row.compacted_query_io,
            curve.join(", "),
        );
    }
}

fn print_serve_rows(rows: &[ServeRun]) {
    for row in rows {
        let histogram: Vec<String> = row
            .batch_histogram
            .iter()
            .map(|(size, count)| format!("{size}x{count}"))
            .collect();
        println!(
            "  backend={:<4} n={} clients={} window={:.1?} max_batch={} workers={} \
             qps={:.0} p50={:.1?} p95={:.1?} p99={:.1?} mean_batch={:.2} \
             groups={} hist=[{}]",
            row.backend,
            row.n,
            row.clients,
            std::time::Duration::from_nanos(row.window_ns),
            row.max_batch,
            row.workers,
            row.qps(),
            std::time::Duration::from_nanos(row.latency_ns(0.50) as u64),
            std::time::Duration::from_nanos(row.latency_ns(0.95) as u64),
            std::time::Duration::from_nanos(row.latency_ns(0.99) as u64),
            row.mean_batch_size,
            row.sweep_groups,
            histogram.join(", "),
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let mut opts = FigureOptions {
        scale: args.scale,
        seed: args.seed,
        algorithms: [true, true, true],
    };
    if args.no_naive {
        opts = opts.without_naive();
    }

    println!(
        "MaxRS experiment harness — scale factor {:.3}{}, seed {}",
        opts.scale.factor,
        if opts.scale.is_paper_scale() {
            " (paper scale)"
        } else {
            ""
        },
        opts.seed
    );

    let mut reports: Vec<FigureReport> = Vec::new();
    let start = Instant::now();
    let run =
        |name: &str, f: &mut dyn FnMut() -> Vec<FigureReport>, reports: &mut Vec<FigureReport>| {
            let t = Instant::now();
            let mut rs = f();
            for r in &rs {
                println!("\n{}", r.to_table_string());
            }
            println!("[{name} took {:.1?}]", t.elapsed());
            reports.append(&mut rs);
        };

    let command = args.command.as_str();
    if matches!(command, "table2" | "all") {
        println!("\n{}", table2(opts.scale, opts.seed));
    }
    if matches!(command, "table3" | "all") {
        println!("\n{}", table3(opts.scale));
    }
    if matches!(command, "fig12" | "all") {
        run("fig12", &mut || fig12_cardinality(&opts), &mut reports);
    }
    if matches!(command, "fig13" | "all") {
        run("fig13", &mut || fig13_buffer(&opts), &mut reports);
    }
    if matches!(command, "fig14" | "all") {
        run("fig14", &mut || fig14_range(&opts), &mut reports);
    }
    if matches!(command, "fig15" | "all") {
        run("fig15", &mut || fig15_buffer_real(&opts), &mut reports);
    }
    if matches!(command, "fig16" | "all") {
        run("fig16", &mut || fig16_range_real(&opts), &mut reports);
    }
    if matches!(command, "fig17" | "all") {
        run("fig17", &mut || vec![fig17_quality(&opts)], &mut reports);
    }
    let mut prepared_rows: Vec<PreparedReuseRun> = Vec::new();
    if matches!(command, "prepared" | "all") {
        let t = Instant::now();
        prepared_rows = prepared_reuse(&opts);
        println!("\nprepared_reuse (backend, per-query cold vs. warm):");
        for row in &prepared_rows {
            println!(
                "  {:<14} backend={:<4} n={} cold={:.1?}/{} prepare={:.1?}/{} warm={:.1?}/{}",
                row.query,
                row.backend,
                row.n,
                std::time::Duration::from_nanos(row.cold_ns as u64),
                row.cold_io,
                std::time::Duration::from_nanos(row.prepare_ns as u64),
                row.prepare_io,
                std::time::Duration::from_nanos(row.warm_ns as u64),
                row.warm_io,
            );
        }
        println!("[prepared took {:.1?}]", t.elapsed());
    }
    let mut batch_rows: Vec<BatchRun> = Vec::new();
    if matches!(command, "batch" | "all") {
        let t = Instant::now();
        batch_rows = batch_runs(&opts);
        println!("\nbatch (shared sweep passes vs. independent runs, verified):");
        for row in &batch_rows {
            println!(
                "  [{}] backend={:<4} n={} groups={}/{} batch={:.1?}/{} ({:.0} q/s) \
                 independent={:.1?}/{} ({:.0} q/s)",
                row.queries.join(","),
                row.backend,
                row.n,
                row.groups,
                row.queries.len(),
                std::time::Duration::from_nanos(row.batch_ns as u64),
                row.batch_io,
                row.batch_qps(),
                std::time::Duration::from_nanos(row.independent_ns as u64),
                row.independent_io,
                row.independent_qps(),
            );
        }
        println!("[batch took {:.1?}]", t.elapsed());
    }
    let mut stream_rows: Vec<StreamRun> = Vec::new();
    if matches!(command, "stream" | "all") {
        let t = Instant::now();
        stream_rows = stream_runs(&opts);
        println!("\nstream (incremental maintenance vs. full recompute, verified):");
        for row in &stream_rows {
            println!(
                "  {:<8} window={:<9} events={} survivors={} expired={} \
                 ingest={:.0} ev/s answer_mean={:.1?} answer_max={:.1?} \
                 recompute={:.1?} cells {:.1}/{} swept/total",
                row.query,
                row.window.map_or("none".to_string(), |w| format!("{w:.0}")),
                row.events,
                row.survivors,
                row.expired,
                row.events_per_sec,
                std::time::Duration::from_nanos(row.answer_ns_mean as u64),
                std::time::Duration::from_nanos(row.answer_ns_max as u64),
                std::time::Duration::from_nanos(row.full_recompute_ns as u64),
                row.cells_swept_mean,
                row.cells_total,
            );
        }
        println!("[stream took {:.1?}]", t.elapsed());
    }
    let mut serve_rows: Vec<ServeRun> = Vec::new();
    if matches!(command, "serve" | "all") {
        let t = Instant::now();
        serve_rows = serve_runs(&opts);
        println!("\nserve (closed-loop clients vs. micro-batching server, verified):");
        print_serve_rows(&serve_rows);
        println!("[serve took {:.1?}]", t.elapsed());
    }
    let mut delta_rows: Vec<DeltaRun> = Vec::new();
    if matches!(command, "delta" | "all") {
        let t = Instant::now();
        delta_rows = delta_runs(&opts);
        println!("\ndelta (delta-main queries + compaction vs. merge floor, verified):");
        print_delta_rows(&delta_rows);
        println!("[delta took {:.1?}]", t.elapsed());
    }
    let mut shard_rows: Vec<ShardRun> = Vec::new();
    if matches!(command, "shard" | "all") {
        let t = Instant::now();
        shard_rows = shard_runs(&opts);
        println!("\nshard (parallel x-partitioned prepare vs. shard count, verified):");
        print_shard_rows(&shard_rows);
        println!("[shard took {:.1?}]", t.elapsed());
    }
    let mut cluster_rows: Vec<ClusterRun> = Vec::new();
    if matches!(command, "cluster" | "all") {
        let t = Instant::now();
        cluster_rows = cluster_runs(&opts);
        println!("\ncluster (multi-node scale-out at fixed K, both transports, verified):");
        print_cluster_rows(&cluster_rows);
        println!("[cluster took {:.1?}]", t.elapsed());
    }
    let mut sweepfront_report: Option<SweepfrontReport> = None;
    if matches!(command, "sweepfront" | "all") {
        let t = Instant::now();
        let report = sweepfront_runs(&opts);
        println!("\nsweepfront (FrontierMap vs. the BTreeMap it replaced, checksum-verified):");
        print_sweepfront_report(&report);
        println!("[sweepfront took {:.1?}]", t.elapsed());
        sweepfront_report = Some(report);
    }
    if !matches!(
        command,
        "all"
            | "fig12"
            | "fig13"
            | "fig14"
            | "fig15"
            | "fig16"
            | "fig17"
            | "table2"
            | "table3"
            | "prepared"
            | "batch"
            | "stream"
            | "serve"
            | "delta"
            | "shard"
            | "cluster"
            | "sweepfront"
    ) {
        eprintln!("unknown command: {command}\n{}", usage());
        return ExitCode::FAILURE;
    }

    // Fixed-scale regression artifacts: every `prepared` / `batch` /
    // `stream` / `serve` / `delta` / `shard` / `cluster` (or `all`)
    // invocation rewrites
    // its BENCH_<command>.json at smoke scale with a fixed seed, so
    // consecutive runs produce comparable rows no matter what
    // --scale / --seed the interactive sweep above used.
    let smoke = FigureOptions {
        scale: ExperimentScale::smoke(),
        seed: 42,
        algorithms: opts.algorithms,
    };
    let write_bench = |path: &str, rows: Vec<Value>| -> bool {
        match fs::write(path, Value::Array(rows).to_pretty_string()) {
            Ok(()) => {
                println!("wrote fixed smoke-scale rows to {path}");
                true
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                false
            }
        }
    };
    if matches!(command, "prepared" | "all") {
        let rows = prepared_reuse(&smoke)
            .iter()
            .map(PreparedReuseRun::to_value)
            .collect();
        if !write_bench("BENCH_prepared.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "batch" | "all") {
        let rows = batch_runs(&smoke).iter().map(BatchRun::to_value).collect();
        if !write_bench("BENCH_batch.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "stream" | "all") {
        let rows = stream_runs(&smoke)
            .iter()
            .map(StreamRun::to_value)
            .collect();
        if !write_bench("BENCH_stream.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "serve" | "all") {
        let rows = serve_runs(&smoke).iter().map(ServeRun::to_value).collect();
        if !write_bench("BENCH_serve.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "delta" | "all") {
        let rows = delta_runs(&smoke).iter().map(DeltaRun::to_value).collect();
        if !write_bench("BENCH_delta.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "shard" | "all") {
        let rows = shard_runs(&smoke).iter().map(ShardRun::to_value).collect();
        if !write_bench("BENCH_shard.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "cluster" | "all") {
        let rows = cluster_runs(&smoke)
            .iter()
            .map(ClusterRun::to_value)
            .collect();
        if !write_bench("BENCH_cluster.json", rows) {
            return ExitCode::FAILURE;
        }
    }
    if matches!(command, "sweepfront" | "all") {
        let rows = sweepfront_runs(&smoke).to_values();
        if !write_bench("BENCH_sweepfront.json", rows) {
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = args.json_path {
        let values: Vec<Value> = reports
            .iter()
            .map(FigureReport::to_value)
            .chain(prepared_rows.iter().map(PreparedReuseRun::to_value))
            .chain(batch_rows.iter().map(BatchRun::to_value))
            .chain(stream_rows.iter().map(StreamRun::to_value))
            .chain(serve_rows.iter().map(ServeRun::to_value))
            .chain(delta_rows.iter().map(DeltaRun::to_value))
            .chain(shard_rows.iter().map(ShardRun::to_value))
            .chain(cluster_rows.iter().map(ClusterRun::to_value))
            .chain(
                sweepfront_report
                    .iter()
                    .flat_map(SweepfrontReport::to_values),
            )
            .collect();
        let count = values.len();
        let json = Value::Array(values).to_pretty_string();
        if let Err(e) = fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {count} reports to {path}");
    }
    println!("total time: {:.1?}", start.elapsed());
    ExitCode::SUCCESS
}
