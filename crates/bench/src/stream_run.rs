//! Replaying generated event streams through the [`StreamEngine`]: ingest
//! throughput, incremental answer latency and the comparison against a full
//! from-scratch recompute — the measurements behind the `stream` command of
//! the experiment harness.

use std::time::Instant;

use maxrs_core::MaxRsEngine;
use maxrs_datagen::{event_stream, EventStreamConfig};
use maxrs_stream::{StreamConfig, StreamEngine};

use crate::json::Value;

/// Outcome of one stream replay: what the engine ingested, how fast, how
/// expensive the incremental answers were, and how that compares to
/// recomputing from scratch.
///
/// Interpretation note for top-k rows: only round 1 of a top-k answer is
/// maintained incrementally; rounds 2..k re-sweep the suppressed remainder
/// like the batch greedy does, so the top-k `speedup_vs_recompute` is
/// structurally bounded near `k / (k - 1)` and the MaxRS rows are the ones
/// that demonstrate the incremental structure itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// Short name of the maintained query variant.
    pub query: String,
    /// Events replayed.
    pub events: usize,
    /// Sliding-window length, if any.
    pub window: Option<f64>,
    /// Objects alive after the replay.
    pub survivors: usize,
    /// Objects expired by the sliding window during the replay.
    pub expired: usize,
    /// Incremental answers taken during the replay.
    pub answers: usize,
    /// Total wall-clock spent applying events, in nanoseconds.
    pub ingest_ns: u128,
    /// Ingest throughput (events per second of apply time).
    pub events_per_sec: f64,
    /// Mean / maximum wall-clock of one incremental answer, in nanoseconds.
    pub answer_ns_mean: f64,
    /// Worst-case incremental answer latency observed, in nanoseconds.
    pub answer_ns_max: u128,
    /// Wall-clock of one from-scratch [`MaxRsEngine::run`] over the final
    /// survivors — what every answer would cost without the incremental
    /// structure.
    pub full_recompute_ns: u128,
    /// Mean grid cells re-swept per answer (the localized work).
    pub cells_swept_mean: f64,
    /// Non-empty grid cells at the end of the replay (the work a naive
    /// per-answer resweep of every cell would do).
    pub cells_total: usize,
    /// `true` when the final incremental answer was verified bit-identical
    /// to the from-scratch run.
    pub verified: bool,
}

impl StreamRun {
    /// Serializes the replay for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("id", Value::String("stream".into())),
            ("query", Value::String(self.query.clone())),
            ("events", Value::Number(self.events as f64)),
            ("window", self.window.map_or(Value::Null, Value::Number)),
            ("survivors", Value::Number(self.survivors as f64)),
            ("expired", Value::Number(self.expired as f64)),
            ("answers", Value::Number(self.answers as f64)),
            ("ingest_ns", Value::Number(self.ingest_ns as f64)),
            ("events_per_sec", Value::Number(self.events_per_sec)),
            ("answer_ns_mean", Value::Number(self.answer_ns_mean)),
            ("answer_ns_max", Value::Number(self.answer_ns_max as f64)),
            (
                "full_recompute_ns",
                Value::Number(self.full_recompute_ns as f64),
            ),
            (
                "speedup_vs_recompute",
                Value::Number(if self.answer_ns_mean > 0.0 {
                    self.full_recompute_ns as f64 / self.answer_ns_mean
                } else {
                    f64::NAN
                }),
            ),
            ("cells_swept_mean", Value::Number(self.cells_swept_mean)),
            ("cells_total", Value::Number(self.cells_total as f64)),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

/// Replays the event stream of (`stream_cfg`, `seed`) into a fresh
/// [`StreamEngine`] with `config`, taking an incremental answer every
/// `answer_every` events, then verifies the final answer against a
/// from-scratch engine run over the survivors.
pub fn run_stream(
    stream_cfg: &EventStreamConfig,
    seed: u64,
    config: StreamConfig,
    answer_every: usize,
) -> maxrs_stream::Result<StreamRun> {
    let events = event_stream(stream_cfg, seed);
    let mut engine = StreamEngine::new(config)?;
    let answer_every = answer_every.max(1);

    let mut ingest_ns = 0u128;
    let mut expired = 0usize;
    let mut answers = 0usize;
    let mut answer_ns_total = 0u128;
    let mut answer_ns_max = 0u128;
    let mut cells_swept_total = 0usize;
    for (i, event) in events.iter().enumerate() {
        let t = Instant::now();
        let outcome = engine.apply(event)?;
        ingest_ns += t.elapsed().as_nanos();
        expired += outcome.expired;
        if (i + 1) % answer_every == 0 {
            let t = Instant::now();
            let answer = engine.answer();
            let ns = t.elapsed().as_nanos();
            answers += 1;
            answer_ns_total += ns;
            answer_ns_max = answer_ns_max.max(ns);
            cells_swept_total += answer.stats.cells_swept;
        }
    }

    // Final answer + from-scratch verification (also the recompute baseline).
    let survivors = engine.survivors();
    let t = Instant::now();
    let last = engine.answer();
    let ns = t.elapsed().as_nanos();
    answers += 1;
    answer_ns_total += ns;
    answer_ns_max = answer_ns_max.max(ns);
    cells_swept_total += last.stats.cells_swept;
    let cells_total = last.stats.cells_total;

    let t = Instant::now();
    let from_scratch = MaxRsEngine::new().run(&survivors, &config.query)?;
    let full_recompute_ns = t.elapsed().as_nanos();
    let verified = from_scratch.answer == last.run.answer;

    Ok(StreamRun {
        query: config.query.name().to_string(),
        events: events.len(),
        window: config.window,
        survivors: survivors.len(),
        expired,
        answers,
        ingest_ns,
        events_per_sec: if ingest_ns > 0 {
            events.len() as f64 / (ingest_ns as f64 / 1e9)
        } else {
            f64::INFINITY
        },
        answer_ns_mean: answer_ns_total as f64 / answers as f64,
        answer_ns_max,
        full_recompute_ns,
        cells_swept_mean: cells_swept_total as f64 / answers as f64,
        cells_total,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_geometry::RectSize;

    #[test]
    fn replay_is_verified_and_counts_line_up() {
        let cfg = EventStreamConfig {
            events: 3_000,
            ..Default::default()
        };
        let run = run_stream(
            &cfg,
            11,
            StreamConfig::max_rs(RectSize::square(50_000.0)),
            200,
        )
        .unwrap();
        assert!(run.verified, "incremental answer must equal recompute");
        assert_eq!(run.events, 3_000);
        assert_eq!(run.answers, 3_000 / 200 + 1);
        assert!(run.survivors > 0);
        assert_eq!(run.expired, 0, "no window, no expiry");
        assert!(run.events_per_sec > 0.0);
        assert!(run.answer_ns_mean > 0.0);

        let json = run.to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("stream"));
        assert_eq!(json.get("query").unwrap().as_str(), Some("max-rs"));
        assert_eq!(json.get("window").unwrap(), &Value::Null);
        assert_eq!(json.get("verified").unwrap(), &Value::Bool(true));
        assert!(json.get("speedup_vs_recompute").unwrap().as_f64().is_some());
    }

    #[test]
    fn windowed_replay_expires_and_stays_verified() {
        let cfg = EventStreamConfig {
            events: 3_000,
            delete_fraction: 0.1,
            ..Default::default()
        };
        let run = run_stream(
            &cfg,
            5,
            StreamConfig::max_rs(RectSize::square(50_000.0)).with_window(300.0),
            250,
        )
        .unwrap();
        assert!(run.verified);
        assert!(run.expired > 0, "the sliding window must expire objects");
        let json = run.to_value();
        assert_eq!(json.get("window").unwrap().as_f64(), Some(300.0));
    }
}
