//! Experiment harness reproducing the paper's evaluation (Section 7).
//!
//! Every table and figure of the paper has a corresponding runner here:
//!
//! | Paper artifact | Runner | What it sweeps |
//! |---|---|---|
//! | Table 2 | [`tables::table2`] | real-dataset cardinalities |
//! | Table 3 | [`tables::table3`] | default parameters |
//! | Figure 12 | [`figures::fig12_cardinality`] | I/O vs cardinality (Gaussian, Uniform) |
//! | Figure 13 | [`figures::fig13_buffer`] | I/O vs buffer size (synthetic) |
//! | Figure 14 | [`figures::fig14_range`] | I/O vs range size (synthetic) |
//! | Figure 15 | [`figures::fig15_buffer_real`] | I/O vs buffer size (UX, NE) |
//! | Figure 16 | [`figures::fig16_range_real`] | I/O vs range size (UX, NE) |
//! | Figure 17 | [`figures::fig17_quality`] | approximation ratio vs diameter |
//!
//! The `experiments` binary drives these runners from the command line and
//! prints the same rows/series the paper reports; `cargo bench` runs reduced
//! Criterion configurations for wall-clock regression tracking.
//!
//! Beyond the paper's own evaluation, the binary also measures the
//! workspace's extensions: `prepared` (sort-once repeated querying, see
//! [`runner::run_prepared_reuse`]), `stream` (incremental MaxRS over
//! event streams, see [`stream_run::run_stream`] — ingest events/sec,
//! incremental answer latency and the speedup over full recomputes),
//! `serve` (closed-loop load generation against the concurrent serving
//! layer, see [`serve_run::run_serve`] — queries/sec, latency percentiles
//! and the micro-batch size histogram, every response verified) and
//! `delta` (event replay into a delta-main [`maxrs_core::DeltaDataset`],
//! see [`delta_run::run_delta`] — query latency as the pending delta grows
//! and compaction cost against its `2·N/B` sequential-merge floor, every
//! answer verified against a from-scratch prepare) and `shard` (the same
//! fixed input prepared through a [`maxrs_core::ShardedDataset`] at
//! increasing shard counts, see [`shard_run::run_shard_curve`] — prepare
//! wall-clock vs shard count, per-shard I/O and query latency vs
//! shards-touched, every answer verified against an unsharded prepare)
//! and `cluster` (the same fixed input at a fixed shard count hosted on an
//! increasing number of [`maxrs_cluster::ShardServer`]s, see
//! [`cluster_run::run_cluster_curve`] — query latency and queries/sec vs
//! server count over the in-process transport plus one row over real TCP
//! loopback, fan-out vs shards-touched per sample, every answer verified
//! against an unsharded prepare) and `sweepfront` (the locality-aware
//! [`maxrs_core::FrontierMap`] head-to-head against the `BTreeMap` it
//! replaced in the sweep-front hot paths, see
//! [`frontier_run::run_sweepfront`] — ns/op on sequential, local and random
//! access plus an end-to-end stream replay, the two drivers checksum-verified
//! against each other).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster_run;
pub mod config;
pub mod delta_run;
pub mod figures;
pub mod frontier_run;
pub mod json;
pub mod report;
pub mod runner;
pub mod serve_run;
pub mod shard_run;
pub mod stream_run;
pub mod tables;

pub use cluster_run::{run_cluster, run_cluster_curve, ClusterQuerySample, ClusterRun};
pub use config::{ExperimentScale, PAPER_BLOCK_SIZE};
pub use delta_run::{run_delta, DeltaRun};
pub use frontier_run::{run_sweepfront, AccessPattern, SweepfrontReport, SweepfrontRun};
pub use report::{FigureReport, Series, SeriesPoint};
pub use runner::{run_algorithm, AlgorithmRun};
pub use serve_run::{run_serve, ServeRun};
pub use shard_run::{run_shard, run_shard_curve, ShardQuerySample, ShardRun};
pub use stream_run::{run_stream, StreamRun};
