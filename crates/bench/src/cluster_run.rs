//! Scale-out measurements of the multi-node cluster layer
//! ([`maxrs_cluster::ClusterCoordinator`]): the same fixed input is split
//! into a fixed number of shards and hosted on an increasing number of
//! servers, so query latency and queries/sec vs server count is the curve
//! — plus one row over real TCP loopback to show the wire adds transport
//! cost but changes no answer.  Per sample the row records how many shards
//! the router engaged (`shards_touched`) and how many servers the
//! coordinator actually contacted (`fan_out`); every sampled answer is
//! verified bit-identical to an unsharded
//! [`PreparedDataset::run`](maxrs_core::PreparedDataset::run).  The
//! measurements behind the `cluster` command of the experiment harness.

use std::sync::Arc;
use std::time::Instant;

use maxrs_cluster::{
    partition_objects, serve_tcp, ClusterConfig, ClusterCoordinator, ClusterError,
    InProcessTransport, ShardServer, TcpTransport, Transport,
};
use maxrs_core::{EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query, QueryAnswer};
use maxrs_em::EmConfig;
use maxrs_geometry::WeightedPoint;

use crate::json::Value;

/// How many x-sample points the partitioner draws when choosing shard
/// boundaries — the [`maxrs_core::ShardLayout`] default.
const BOUNDARY_SAMPLE: usize = 8192;

/// Which transport a cluster row was measured over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTransport {
    /// Direct in-process calls — isolates coordinator/merge overhead.
    InProcess,
    /// Real `std::net` TCP over loopback — adds framing + socket cost.
    Tcp,
}

impl ClusterTransport {
    /// Short name used in printed rows and JSON ("in-process", "tcp").
    pub fn name(self) -> &'static str {
        match self {
            ClusterTransport::InProcess => "in-process",
            ClusterTransport::Tcp => "tcp",
        }
    }
}

/// One measured query against a cluster: routing breadth and answer cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQuerySample {
    /// Short name of the query variant ("max-rs", "min-rs", ...).
    pub query: String,
    /// Shards the rect-size-inflated query was routed to.
    pub shards_touched: usize,
    /// Servers the coordinator engaged for those shards.
    pub fan_out: usize,
    /// Wall-clock of the query, in nanoseconds.
    pub query_ns: u128,
    /// Logical blocks transferred across all engaged servers.
    pub query_io: u64,
}

/// Outcome of hosting one fixed input (at one fixed shard count) on one
/// server count over one transport: the verified query samples plus the
/// sustained rate of answering them back to back.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRun {
    /// Storage-backend name of the shard contexts ("sim", "fs").
    pub backend: String,
    /// Transport the row was measured over ("in-process", "tcp").
    pub transport: String,
    /// Objects in the fixed input.
    pub n: usize,
    /// Shards the input was split into (after boundary dedupe).
    pub shards: usize,
    /// Servers the shards were hosted on (round-robin).
    pub servers: usize,
    /// Objects per shard, in x order.
    pub shard_lens: Vec<u64>,
    /// Wall-clock of answering every sampled query once, in nanoseconds.
    pub wall_ns: u128,
    /// The query samples, one per measured variant.
    pub samples: Vec<ClusterQuerySample>,
    /// `true` when every sampled answer was bit-identical to an unsharded
    /// [`MaxRsEngine::prepare`] over the same input.
    pub verified: bool,
}

impl ClusterRun {
    /// Sustained rate of the back-to-back sample loop, in queries/sec.
    pub fn qps(&self) -> f64 {
        self.samples.len() as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Serializes the run for the experiment harness's JSON output.
    pub fn to_value(&self) -> Value {
        let samples: Vec<Value> = self
            .samples
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("query", Value::String(s.query.clone())),
                    ("shards_touched", Value::Number(s.shards_touched as f64)),
                    ("fan_out", Value::Number(s.fan_out as f64)),
                    ("query_ns", Value::Number(s.query_ns as f64)),
                    ("query_io", Value::Number(s.query_io as f64)),
                ])
            })
            .collect();
        let lens: Vec<Value> = self
            .shard_lens
            .iter()
            .map(|&l| Value::Number(l as f64))
            .collect();
        Value::object(vec![
            ("id", Value::String("cluster".into())),
            ("backend", Value::String(self.backend.clone())),
            ("transport", Value::String(self.transport.clone())),
            ("n", Value::Number(self.n as f64)),
            ("shards", Value::Number(self.shards as f64)),
            ("servers", Value::Number(self.servers as f64)),
            ("shard_lens", Value::Array(lens)),
            ("wall_ns", Value::Number(self.wall_ns as f64)),
            ("qps", Value::Number(self.qps())),
            ("samples", Value::Array(samples)),
            ("verified", Value::Bool(self.verified)),
        ])
    }
}

fn engine_options(config: EmConfig) -> EngineOptions {
    EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..ExactMaxRsOptions::default()
        },
        force_strategy: None,
    }
}

/// Splits `objects` into `shards` x-ranges, hosts them round-robin on
/// `servers` [`ShardServer`]s reached over `transport`, answers every query
/// in `queries` and verifies each answer against `expected` (the unsharded
/// answers in the same order).
pub fn run_cluster(
    config: EmConfig,
    objects: &[WeightedPoint],
    shards: usize,
    servers: usize,
    transport: ClusterTransport,
    queries: &[Query],
    expected: &[QueryAnswer],
) -> maxrs_cluster::Result<ClusterRun> {
    let opts = engine_options(config);
    let (boundaries, parts) = partition_objects(objects, shards, BOUNDARY_SAMPLE);
    let servers = servers.max(1).min(parts.len());
    let mut hosts: Vec<ShardServer> = (0..servers)
        .map(|_| ShardServer::new(opts, boundaries.clone()))
        .collect();
    for (t, part) in parts.iter().enumerate() {
        hosts[t % servers].host(t, part)?;
    }

    // Keep TCP listeners alive for the whole measurement; shut down after.
    let mut tcp_handles = Vec::new();
    let transports: Vec<Box<dyn Transport>> = hosts
        .into_iter()
        .enumerate()
        .map(|(i, host)| -> maxrs_cluster::Result<Box<dyn Transport>> {
            let name = format!("server-{i}");
            let host = Arc::new(host);
            match transport {
                ClusterTransport::InProcess => Ok(Box::new(InProcessTransport::new(name, host))),
                ClusterTransport::Tcp => {
                    let handle =
                        serve_tcp(host, "127.0.0.1:0").map_err(|e| ClusterError::Topology {
                            detail: format!("failed to serve on loopback: {e}"),
                        })?;
                    let t = TcpTransport::new(name, handle.addr());
                    tcp_handles.push(handle);
                    Ok(Box::new(t))
                }
            }
        })
        .collect::<maxrs_cluster::Result<_>>()?;
    let cluster = ClusterCoordinator::connect(opts, ClusterConfig::default(), transports)?;

    let mut samples = Vec::with_capacity(queries.len());
    let mut verified = true;
    let loop_start = Instant::now();
    for (query, want) in queries.iter().zip(expected) {
        let shards_touched = cluster.shards_touched(query);
        let fan_out = cluster.fan_out(query);
        let t = Instant::now();
        let run = cluster.run(query)?;
        samples.push(ClusterQuerySample {
            query: query.name().to_string(),
            shards_touched,
            fan_out,
            query_ns: t.elapsed().as_nanos(),
            query_io: run.io.total(),
        });
        verified &= run.answer == *want;
    }
    let wall_ns = loop_start.elapsed().as_nanos();

    let row = ClusterRun {
        backend: cluster.backend_name().to_string(),
        transport: transport.name().to_string(),
        n: objects.len(),
        shards: cluster.num_shards(),
        servers: cluster.num_servers(),
        shard_lens: cluster.shard_lens(),
        wall_ns,
        samples,
        verified,
    };
    drop(cluster);
    for mut handle in tcp_handles {
        handle.shutdown();
    }
    Ok(row)
}

/// The scale-out curve: one unsharded prepare establishes the reference
/// answers, then the **same** input at the **same** shard count is hosted
/// on every server count in `server_counts` over the in-process transport,
/// plus one final row over real TCP loopback at the largest server count.
/// Every sampled answer of every row is verified bit-identical to the
/// unsharded reference.
pub fn run_cluster_curve(
    config: EmConfig,
    objects: &[WeightedPoint],
    shards: usize,
    server_counts: &[usize],
    queries: &[Query],
) -> maxrs_cluster::Result<Vec<ClusterRun>> {
    let reference = MaxRsEngine::with_options(engine_options(config)).prepare(objects)?;
    let expected: Vec<QueryAnswer> = queries
        .iter()
        .map(|q| reference.run(q).map(|r| r.answer))
        .collect::<maxrs_core::Result<_>>()?;
    drop(reference);

    let mut rows = Vec::with_capacity(server_counts.len() + 1);
    for &servers in server_counts {
        rows.push(run_cluster(
            config,
            objects,
            shards,
            servers,
            ClusterTransport::InProcess,
            queries,
            &expected,
        )?);
    }
    let tcp_servers = server_counts.iter().copied().max().unwrap_or(1);
    rows.push(run_cluster(
        config,
        objects,
        shards,
        tcp_servers,
        ClusterTransport::Tcp,
        queries,
        &expected,
    )?);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_datagen::{Dataset, DatasetKind};
    use maxrs_geometry::{Rect, RectSize};

    #[test]
    fn curve_is_verified_on_both_transports() {
        let config = EmConfig::new(512, 32 * 512).unwrap();
        let ds = Dataset::generate(DatasetKind::Uniform, 1_500, 7);
        let size = RectSize::square(40_000.0);
        let queries = vec![
            Query::max_rs(size),
            Query::top_k(size, 3),
            Query::min_rs(size, Rect::new(450_000.0, 470_000.0, 0.0, 1_000_000.0)),
        ];
        let rows = run_cluster_curve(config, &ds.objects, 4, &[1, 2, 4], &queries).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.verified,
                "{} x{} answers diverged",
                row.transport, row.servers
            );
            assert_eq!(row.shards, 4);
            assert_eq!(row.samples.len(), queries.len());
            assert_eq!(row.shard_lens.iter().sum::<u64>(), 1_500);
            assert!(row.qps() > 0.0);
            for s in &row.samples {
                assert!(s.shards_touched >= 1 && s.shards_touched <= row.shards);
                assert!(s.fan_out >= 1 && s.fan_out <= row.servers);
                // A server fans out at most once per hosted-and-engaged
                // shard set, so fan-out never exceeds shards touched.
                assert!(s.fan_out <= s.shards_touched);
            }
        }
        assert_eq!(rows[0].servers, 1);
        assert_eq!(rows[2].servers, 4);
        assert_eq!(rows[3].transport, "tcp");
        assert_eq!(rows[3].servers, 4);
        // Narrow-domain min-rs touches fewer shards than the whole-domain
        // variants, and the router agrees across server counts.
        let narrow = |row: &ClusterRun| row.samples[2].shards_touched;
        assert!(narrow(&rows[0]) <= rows[0].samples[0].shards_touched);
        assert_eq!(narrow(&rows[0]), narrow(&rows[2]));

        let json = rows[3].to_value();
        assert_eq!(json.get("id").unwrap().as_str(), Some("cluster"));
        assert_eq!(json.get("transport").unwrap().as_str(), Some("tcp"));
        assert_eq!(json.get("verified").unwrap(), &Value::Bool(true));
        assert_eq!(json.get("shards").unwrap().as_f64(), Some(4.0));
        assert!(json.get("qps").unwrap().as_f64().unwrap() > 0.0);
        assert!(json.get("samples").unwrap().as_array().is_some());
    }
}
