//! A minimal JSON document model with a pretty printer and parser.
//!
//! The build environment has no crates.io access, so report serialization
//! cannot use `serde_json`.  This module implements the small subset the
//! harness needs: numbers, strings, booleans, null, arrays and objects, with
//! insertion-ordered object keys so emitted reports are stable and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.  JSON has no NaN/Infinity, so non-finite values are emitted
    /// as `null` by the printer.
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for object members.
    pub fn object(members: Vec<(&str, Value)>) -> Value {
        Value::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as indented, human-readable JSON.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&inner_pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.at));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON cannot represent NaN/Infinity; degrade to null so the
        // document stays parseable (mirrors lenient serializers).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.at..].starts_with(kw.as_bytes()) {
            self.at += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.at)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4(self.at + 1)?;
                            self.at += 4;
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a low surrogate escape must
                                // follow (how serializers encode non-BMP
                                // characters such as emoji).
                                if self.bytes.get(self.at + 1..self.at + 3) != Some(b"\\u") {
                                    return Err("lone high surrogate in \\u escape".into());
                                }
                                let low = self.hex4(self.at + 3)?;
                                self.at += 6;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".into());
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(scalar).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are copied
                    // byte-for-byte; the input is a valid &str).
                    let start = self.at;
                    self.at += 1;
                    while self.bytes.get(self.at).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.at += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.at]).unwrap());
                }
            }
        }
    }

    /// Reads four hex digits starting at byte offset `from`.
    fn hex4(&self, from: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(from..from + 4)
            .ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::object(vec![
            ("id", Value::String("fig12a".into())),
            ("n", Value::Number(250000.0)),
            ("ratio", Value::Number(0.9125)),
            ("ok", Value::Bool(true)),
            ("missing", Value::Null),
            (
                "series",
                Value::Array(vec![Value::object(vec![
                    ("name", Value::String("Exact\"MaxRS\"\n".into())),
                    ("points", Value::Array(vec![])),
                ])]),
            ),
        ]);
        let text = doc.to_pretty_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": [1, 2.5], "b": "x"}"#).unwrap();
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, ]").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse("nope").is_err());
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        let doc = Value::Array(vec![
            Value::Number(f64::NAN),
            Value::Number(f64::INFINITY),
            Value::Number(1.5),
        ]);
        let text = doc.to_pretty_string();
        let back = Value::parse(&text).expect("output must stay valid JSON");
        assert_eq!(
            back,
            Value::Array(vec![Value::Null, Value::Null, Value::Number(1.5)])
        );
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Value::parse(r#""café → ok""#).unwrap();
        assert_eq!(v.as_str(), Some("café → ok"));
    }

    #[test]
    fn surrogate_pairs_combine() {
        // How ensure-ascii serializers encode non-BMP characters (U+1F600 as
        // a \\u surrogate pair) and BMP ones (U+00E9 as a single escape).
        let v = Value::parse(r#""\ud83d\ude00 ok \u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok \u{00e9}"));
        // Lone or malformed surrogates are rejected, not silently mangled.
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err());
        assert!(Value::parse(r#""\ud83d\u0041""#).is_err());
    }
}
