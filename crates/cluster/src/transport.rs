//! Pluggable request/reply transports.
//!
//! * [`InProcessTransport`] — calls a [`ShardServer`] directly.  Fully
//!   deterministic (no sockets, no clocks), the transport the determinism
//!   suite and doc-tests run on.
//! * [`TcpTransport`] / [`serve_tcp`] — real `std::net` TCP with 4-byte
//!   big-endian length-prefixed frames around the hand-rolled wire encoding
//!   of [`crate::protocol`].  One connection per request keeps retries safe
//!   (a retried request can never read a stale reply off a half-dead
//!   connection).
//! * [`FaultInjectedTransport`] — wraps any transport and fails a
//!   configurable number of leading calls, for deterministic
//!   retry/health-state tests without real network faults.
//!
//! Transports perform **one attempt** per [`Transport::call`]; the
//! [`ClusterCoordinator`](crate::ClusterCoordinator) owns timeouts, retries
//! and backoff policy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::TransportError;
use crate::protocol::{Request, Response};
use crate::server::ShardServer;

/// Upper bound on a single frame; anything larger is treated as a protocol
/// error rather than an allocation request.
const MAX_FRAME: u32 = 1 << 30;

/// A synchronous request/reply channel to one shard server.
///
/// `call` performs **one attempt** bounded by `timeout` and never blocks
/// longer than (a small multiple of) it; retry policy lives in the
/// coordinator.
pub trait Transport: Send + Sync {
    /// Name of the remote server (used in error messages and health
    /// reports).
    fn name(&self) -> &str;

    /// Performs one request attempt.
    fn call(&self, request: &Request, timeout: Duration) -> Result<Response, TransportError>;
}

// ---- in-process -------------------------------------------------------------

/// Directly invokes a [`ShardServer`] in this process — deterministic and
/// clock-free.
pub struct InProcessTransport {
    name: String,
    server: Arc<ShardServer>,
}

impl InProcessTransport {
    /// Wraps a server behind a named in-process channel.
    pub fn new(name: impl Into<String>, server: Arc<ShardServer>) -> Self {
        InProcessTransport {
            name: name.into(),
            server,
        }
    }
}

impl Transport for InProcessTransport {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, request: &Request, _timeout: Duration) -> Result<Response, TransportError> {
        Ok(self.server.handle(request))
    }
}

// ---- TCP --------------------------------------------------------------------

/// TCP client transport: one connection per request, length-prefixed frames.
pub struct TcpTransport {
    name: String,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Creates a client for the given server address.
    pub fn new(name: impl Into<String>, addr: SocketAddr) -> Self {
        TcpTransport {
            name: name.into(),
            addr,
        }
    }

    /// Resolves `addr` (e.g. `"127.0.0.1:7400"`) and creates a client for
    /// its first resolution.
    pub fn resolve(name: impl Into<String>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
        })?;
        Ok(TcpTransport::new(name, addr))
    }
}

fn io_to_transport(e: std::io::Error, timeout: Duration) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => TransportError::Timeout {
            millis: timeout.as_millis() as u64,
        },
        _ => TransportError::Unavailable {
            detail: e.to_string(),
        },
    }
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

impl Transport for TcpTransport {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, request: &Request, timeout: Duration) -> Result<Response, TransportError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, timeout)
            .map_err(|e| io_to_transport(e, timeout))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_to_transport(e, timeout))?;
        write_frame(&mut stream, &request.encode()).map_err(|e| io_to_transport(e, timeout))?;
        let payload = read_frame(&mut stream).map_err(|e| io_to_transport(e, timeout))?;
        Response::decode(&payload).map_err(|e| TransportError::Protocol {
            detail: e.to_string(),
        })
    }
}

/// A running TCP shard server: accept loop plus one thread per connection.
///
/// Shutting down (explicitly or on drop) stops accepting and unblocks the
/// accept loop; in-flight connections die with their sockets.
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// The bound address (useful with a `:0` ephemeral bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves a [`ShardServer`] over TCP on `addr` (`"127.0.0.1:0"` binds an
/// ephemeral loopback port).  Each connection handles any number of
/// framed requests sequentially; the client side here sends one per
/// connection.
pub fn serve_tcp(
    server: Arc<ShardServer>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<TcpServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(&server);
            std::thread::spawn(move || handle_connection(server, stream));
        }
    });
    Ok(TcpServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

fn handle_connection(server: Arc<ShardServer>, mut stream: TcpStream) {
    loop {
        let Ok(payload) = read_frame(&mut stream) else {
            return; // EOF or broken pipe: the client is done.
        };
        let response = match Request::decode(&payload) {
            Ok(request) => server.handle(&request),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

// ---- fault injection --------------------------------------------------------

/// The failure a [`FaultInjectedTransport`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt reports the server unreachable.
    Unavailable,
    /// The attempt reports a timeout (without actually sleeping, keeping
    /// fault tests fast and deterministic).
    Timeout,
}

/// Wraps a transport and fails its first `failures` calls (or all calls),
/// for deterministic retry, backoff and health-state tests.
pub struct FaultInjectedTransport<T> {
    inner: T,
    remaining: AtomicU32,
    fault: InjectedFault,
    calls: AtomicU64,
}

impl<T: Transport> FaultInjectedTransport<T> {
    /// Fails the first `failures` calls with `fault`, then passes through.
    pub fn failing(inner: T, failures: u32, fault: InjectedFault) -> Self {
        FaultInjectedTransport {
            inner,
            remaining: AtomicU32::new(failures),
            fault,
            calls: AtomicU64::new(0),
        }
    }

    /// Fails every call with `fault` — a permanently dead server.
    pub fn failing_forever(inner: T, fault: InjectedFault) -> Self {
        Self::failing(inner, u32::MAX, fault)
    }

    /// Total attempts observed (including injected failures).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl<T: Transport> Transport for FaultInjectedTransport<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, request: &Request, timeout: Duration) -> Result<Response, TransportError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let fail = self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| {
                if r == 0 {
                    None
                } else if r == u32::MAX {
                    Some(r)
                } else {
                    Some(r - 1)
                }
            })
            .is_ok();
        if fail {
            return Err(match self.fault {
                InjectedFault::Unavailable => TransportError::Unavailable {
                    detail: "injected fault".to_string(),
                },
                InjectedFault::Timeout => TransportError::Timeout {
                    millis: timeout.as_millis() as u64,
                },
            });
        }
        self.inner.call(request, timeout)
    }
}
