//! Typed failures of the cluster layer.
//!
//! The split mirrors where a failure can originate:
//!
//! * [`TransportError`] — one **attempt** of one request failed (timeout,
//!   refused connection, malformed frame).  Transports never retry; the
//!   coordinator owns the retry budget.
//! * [`ClusterError`] — a **query** (or the cluster handshake) failed.  A
//!   server that stays unreachable after the retry budget surfaces as
//!   [`ClusterError::ShardUnavailable`] *naming the shards it hosts*, so a
//!   dead shard is always a typed error, never a hang or a wrong answer.

use maxrs_core::CoreError;

/// Failure of a single request attempt on a [`Transport`](crate::Transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The attempt did not complete within the per-request timeout.
    Timeout {
        /// The timeout that elapsed, in milliseconds.
        millis: u64,
    },
    /// The remote end is unreachable (connection refused, reset, closed).
    Unavailable {
        /// Human-readable cause.
        detail: String,
    },
    /// The bytes on the wire did not decode as a protocol message.
    Protocol {
        /// Human-readable cause.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout { millis } => {
                write!(f, "request timed out after {millis} ms")
            }
            TransportError::Unavailable { detail } => write!(f, "server unavailable: {detail}"),
            TransportError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Failure of a cluster query or of
/// [`ClusterCoordinator::connect`](crate::ClusterCoordinator::connect).
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A server stayed unreachable through the whole timeout + retry budget
    /// (or was already marked dead by the health tracker).  Names the server
    /// and every shard it hosts.
    ShardUnavailable {
        /// Transport name of the unreachable server.
        server: String,
        /// Global shard ids hosted by that server.
        shards: Vec<usize>,
        /// Attempts made before giving up (0 when fast-failed as dead).
        attempts: u32,
        /// The last transport failure observed.
        detail: String,
    },
    /// The server was reachable but reported a request-level error.  These
    /// are deterministic (bad request, storage failure) and are not retried.
    Remote {
        /// Transport name of the reporting server.
        server: String,
        /// The server's error message.
        detail: String,
    },
    /// A reply decoded fine but violated the coordinator's expectations
    /// (wrong variant, missing or duplicated shard/slab coverage).
    Protocol {
        /// Human-readable cause.
        detail: String,
    },
    /// The cluster handshake found an inconsistent topology: disagreeing
    /// shard boundaries, duplicated shards, or shards hosted nowhere.
    Topology {
        /// Human-readable cause.
        detail: String,
    },
    /// A local (coordinator-side) algorithm failure.
    Core(CoreError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ShardUnavailable {
                server,
                shards,
                attempts,
                detail,
            } => write!(
                f,
                "server '{server}' hosting shards {shards:?} unavailable after {attempts} attempt(s): {detail}"
            ),
            ClusterError::Remote { server, detail } => {
                write!(f, "server '{server}' failed the request: {detail}")
            }
            ClusterError::Protocol { detail } => write!(f, "cluster protocol violation: {detail}"),
            ClusterError::Topology { detail } => write!(f, "inconsistent cluster topology: {detail}"),
            ClusterError::Core(e) => write!(f, "coordinator-side failure: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<maxrs_em::EmError> for ClusterError {
    fn from(e: maxrs_em::EmError) -> Self {
        ClusterError::Core(e.into())
    }
}

/// Convenience alias for cluster-layer results.
pub type Result<T> = std::result::Result<T, ClusterError>;
