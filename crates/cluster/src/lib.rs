//! Multi-node shard serving for external-memory MaxRS.
//!
//! `maxrs-cluster` distributes a
//! [`ShardedDataset`](maxrs_core::ShardedDataset)-style x-partition
//! across **servers**: each
//! [`ShardServer`] hosts one or more shards as ordinary prepared datasets,
//! and a [`ClusterCoordinator`] answers all four [`Query`](maxrs_core::Query)
//! variants by routing per-shard sub-queries over a pluggable [`Transport`]
//! and merging the partial results through the canonical `MergeSweep`.
//! Because the merged slab-file and the min-next-breakpoint canonicalization
//! are exactly the single-machine ones, cluster answers are **bit-identical**
//! to the unsharded [`PreparedDataset::run`](maxrs_core::PreparedDataset::run)
//! — on the in-process transport, over real TCP loopback, and on either
//! storage backend.
//!
//! Two transports ship in the crate:
//!
//! * [`InProcessTransport`] — direct calls, deterministic, no sockets.
//! * [`TcpTransport`] + [`serve_tcp`] — real `std::net` TCP with
//!   length-prefixed frames around a hand-rolled wire format (no
//!   serialization dependency).
//!
//! Failures are typed, never hung: per-request timeouts, bounded retries
//! with exponential backoff, and per-server health tracking turn a dead
//! server into [`ClusterError::ShardUnavailable`] naming the shards it
//! hosts (see [`ClusterConfig`]).
//!
//! # Cookbook: a two-server cluster in one process
//!
//! ```
//! use std::sync::Arc;
//! use maxrs_cluster::{
//!     partition_objects, ClusterConfig, ClusterCoordinator, InProcessTransport,
//!     ShardServer, Transport,
//! };
//! use maxrs_core::{EngineOptions, MaxRsEngine, Query, QueryAnswer};
//! use maxrs_geometry::{RectSize, WeightedPoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small integer-weighted dataset (integer weights make float sums
//! // exact, so the bit-identity below is meaningful).
//! let objects: Vec<WeightedPoint> = (0..200)
//!     .map(|i| {
//!         let x = (i * 37 % 100) as f64;
//!         let y = (i * 61 % 100) as f64;
//!         WeightedPoint::at(x, y, (1 + i % 5) as f64)
//!     })
//!     .collect();
//! let opts = EngineOptions::default();
//!
//! // Split into 4 shards and host two per server.
//! let (boundaries, parts) = partition_objects(&objects, 4, 4096);
//! let mut alpha = ShardServer::new(opts, boundaries.clone());
//! alpha.host(0, &parts[0])?;
//! alpha.host(1, &parts[1])?;
//! let mut beta = ShardServer::new(opts, boundaries);
//! beta.host(2, &parts[2])?;
//! beta.host(3, &parts[3])?;
//!
//! let transports: Vec<Box<dyn Transport>> = vec![
//!     Box::new(InProcessTransport::new("alpha", Arc::new(alpha))),
//!     Box::new(InProcessTransport::new("beta", Arc::new(beta))),
//! ];
//! let cluster = ClusterCoordinator::connect(opts, ClusterConfig::default(), transports)?;
//!
//! // The cluster answer is bit-identical to the single-machine one.
//! let query = Query::MaxRs {
//!     size: RectSize::square(12.0),
//! };
//! let local = MaxRsEngine::with_options(opts).prepare(&objects)?.run(&query)?;
//! let remote = cluster.run(&query)?;
//! let (QueryAnswer::MaxRs(a), QueryAnswer::MaxRs(b)) = (&local.answer, &remote.answer) else {
//!     unreachable!()
//! };
//! assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
//! assert_eq!(a.center.x.to_bits(), b.center.x.to_bits());
//! assert_eq!(a.center.y.to_bits(), b.center.y.to_bits());
//! # Ok(())
//! # }
//! ```
//!
//! For real multi-process deployments replace the in-process transports
//! with [`serve_tcp`] on each server host and a [`TcpTransport`] per
//! server on the coordinator — the protocol bytes are the same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod error;
pub mod protocol;
mod server;
mod transport;

pub use coordinator::{ClusterConfig, ClusterCoordinator, ShardHealth};
pub use error::{ClusterError, Result, TransportError};
pub use protocol::{Request, Response};
pub use server::ShardServer;
pub use transport::{
    serve_tcp, FaultInjectedTransport, InProcessTransport, InjectedFault, TcpServerHandle,
    TcpTransport, Transport,
};

use maxrs_core::select_shard_boundaries;
use maxrs_geometry::WeightedPoint;

/// Splits `objects` into `shards` x-ranges using the same deterministic
/// quantile boundaries as the single-machine
/// [`ShardedDataset`](maxrs_core::ShardedDataset) (sampled above
/// `boundary_sample` objects),
/// returning the interior boundaries plus one object vector per shard.
///
/// Ties route right (an `x` exactly on a boundary belongs to the shard on
/// the right), matching the sweep's own `SlabPartition::locate`, so a
/// cluster built from these parts partitions exactly like a local
/// `prepare_sharded` over the same objects.
pub fn partition_objects(
    objects: &[WeightedPoint],
    shards: usize,
    boundary_sample: usize,
) -> (Vec<f64>, Vec<Vec<WeightedPoint>>) {
    let k = shards.max(1);
    let boundaries = select_shard_boundaries(objects, k, boundary_sample);
    let mut parts: Vec<Vec<WeightedPoint>> =
        (0..boundaries.len() + 1).map(|_| Vec::new()).collect();
    for o in objects {
        let idx = boundaries.partition_point(|&b| b <= o.point.x);
        parts[idx].push(*o);
    }
    (boundaries, parts)
}
