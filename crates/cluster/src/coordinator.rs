//! The cluster coordinator: shard routing, concurrent sub-query fan-out,
//! canonical merging, and failure handling.
//!
//! [`ClusterCoordinator`] is the multi-node twin of the single-machine
//! [`ShardedDataset`](maxrs_core::ShardedDataset): the same engaged-shard
//! routing, the same boundary-spanning crop + span-event decomposition, the
//! same canonical [`merge_sweep`] and min-next-breakpoint widening — with
//! the per-shard work pushed to [`ShardServer`](crate::ShardServer)s behind
//! a pluggable [`Transport`].  Every accumulation that touches floats
//! happens in **global shard order**, so all four [`Query`] variants are
//! bit-identical to the unsharded [`PreparedDataset::run`]
//! (maxrs_core::PreparedDataset::run) — proven by the determinism suite on
//! both transports and both storage backends.
//!
//! ## Robustness
//!
//! Each request runs under a per-attempt timeout with bounded retries and
//! exponential backoff ([`ClusterConfig`]).  A server that exhausts its
//! retry budget fails the query with
//! [`ClusterError::ShardUnavailable`] naming the server and its shards —
//! never a hang, never a silently wrong answer — and accumulates toward a
//! per-server failure threshold after which the coordinator fails fast
//! without touching the network ([`ShardHealth::Dead`]) until
//! [`revive`](ClusterCoordinator::revive)d.  Server-side errors
//! ([`ClusterError::Remote`]) are deterministic and are not retried.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use maxrs_core::shard::shard_slab;
use maxrs_core::sweep::extract_best;
use maxrs_core::{
    best_candidate, candidate_points, merge_sweep, min_rs_in_memory, min_strip_scan, parallel_map,
    EngineOptions, ExecutionStrategy, MaxCrsResult, MaxRsResult, ObjectRecord, Query, QueryAnswer,
    QueryBatch, QueryRun, SlabPartition, SlabTuple, SpanEvent,
};
use maxrs_em::{external_sort_by_key, EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::error::{ClusterError, Result};
use crate::protocol::{PassSpec, PieceSet, Request, Response};
use crate::transport::Transport;

/// Timeout, retry and health policy of a coordinator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Per-attempt timeout of every request.
    pub request_timeout: Duration,
    /// Retries after the first failed attempt (so `retries + 1` attempts
    /// per request).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per subsequent retry.
    /// `Duration::ZERO` disables sleeping (deterministic tests).
    pub backoff: Duration,
    /// Consecutive failed **requests** (each already through its retry
    /// budget) after which a server is marked dead and fails fast.
    pub failure_threshold: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            request_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(10),
            failure_threshold: 3,
        }
    }
}

/// Health of one server as tracked by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Last request succeeded.
    Healthy,
    /// At least one recent request failed, but the failure threshold has
    /// not been reached.
    Degraded,
    /// The failure threshold was crossed: requests fail fast until
    /// [`ClusterCoordinator::revive`].
    Dead,
}

#[derive(Default)]
struct HealthState {
    consecutive_failures: u32,
    dead: bool,
}

struct Member {
    transport: Box<dyn Transport>,
    shards: Vec<usize>,
    health: Mutex<HealthState>,
}

struct ShardRef {
    server: usize,
    slab: Interval,
    len: u64,
    prepare_io: IoSnapshot,
}

/// Fronts a set of shard servers as one queryable dataset.
pub struct ClusterCoordinator {
    opts: EngineOptions,
    config: ClusterConfig,
    members: Vec<Member>,
    boundaries: Vec<f64>,
    shards: Vec<ShardRef>,
    merge_ctx: EmContext,
    backend: String,
    len: u64,
}

impl std::fmt::Debug for ClusterCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCoordinator")
            .field("servers", &self.members.len())
            .field("shards", &self.shards.len())
            .field("len", &self.len)
            .finish()
    }
}

impl ClusterCoordinator {
    /// Connects to the given servers: performs the `Describe` handshake on
    /// every transport, validates that all servers agree on the shard
    /// boundaries, and that the global shards `0..K` are hosted exactly
    /// once across the cluster.
    pub fn connect(
        opts: EngineOptions,
        config: ClusterConfig,
        transports: Vec<Box<dyn Transport>>,
    ) -> Result<Self> {
        if transports.is_empty() {
            return Err(ClusterError::Topology {
                detail: "a cluster needs at least one server".to_string(),
            });
        }
        let merge_ctx = EmContext::new(opts.em_config);
        let mut coordinator = ClusterCoordinator {
            opts,
            config,
            members: transports
                .into_iter()
                .map(|transport| Member {
                    transport,
                    shards: Vec::new(),
                    health: Mutex::new(HealthState::default()),
                })
                .collect(),
            boundaries: Vec::new(),
            shards: Vec::new(),
            merge_ctx,
            backend: String::new(),
            len: 0,
        };

        let mut shard_map: Vec<Option<ShardRef>> = Vec::new();
        for i in 0..coordinator.members.len() {
            let agg = Mutex::new(IoSnapshot::default());
            let resp = coordinator.rpc(i, &Request::Describe, &agg)?;
            let Response::Described {
                boundaries,
                backend,
                shards,
            } = resp
            else {
                return Err(ClusterError::Protocol {
                    detail: format!(
                        "server '{}' answered the handshake with the wrong reply",
                        coordinator.members[i].transport.name()
                    ),
                });
            };
            if i == 0 {
                shard_map = (0..boundaries.len() + 1).map(|_| None).collect();
                coordinator.boundaries = boundaries;
            } else if boundaries != coordinator.boundaries {
                return Err(ClusterError::Topology {
                    detail: format!(
                        "server '{}' disagrees on the shard boundaries",
                        coordinator.members[i].transport.name()
                    ),
                });
            }
            for info in shards {
                let id = info.shard as usize;
                if id >= shard_map.len() {
                    return Err(ClusterError::Topology {
                        detail: format!(
                            "server '{}' hosts shard {id} but the cluster only has {} shards",
                            coordinator.members[i].transport.name(),
                            shard_map.len()
                        ),
                    });
                }
                if let Some(prev) = &shard_map[id] {
                    return Err(ClusterError::Topology {
                        detail: format!(
                            "shard {id} hosted by both '{}' and '{}'",
                            coordinator.members[prev.server].transport.name(),
                            coordinator.members[i].transport.name()
                        ),
                    });
                }
                shard_map[id] = Some(ShardRef {
                    server: i,
                    slab: shard_slab(&coordinator.boundaries, id),
                    len: info.len,
                    prepare_io: info.prepare_io,
                });
                coordinator.members[i].shards.push(id);
            }
            if coordinator.backend.is_empty() {
                coordinator.backend = backend;
            }
        }

        for (id, slot) in shard_map.iter().enumerate() {
            if slot.is_none() {
                return Err(ClusterError::Topology {
                    detail: format!("shard {id} is hosted by no server"),
                });
            }
        }
        coordinator.shards = shard_map.into_iter().map(|s| s.expect("checked")).collect();
        coordinator.len = coordinator.shards.iter().map(|s| s.len).sum();
        Ok(coordinator)
    }

    // ---- dataset-shaped accessors ------------------------------------------

    /// The engine options the coordinator (and its merge device) runs with.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Total objects across the cluster.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the cluster holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of global shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.members.len()
    }

    /// Global interior shard boundaries (`K - 1` values).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Objects per global shard.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.len).collect()
    }

    /// Summed preparation I/O reported by the servers at handshake.
    pub fn prepare_io(&self) -> IoSnapshot {
        self.shards
            .iter()
            .fold(IoSnapshot::default(), |acc, s| acc + s.prepare_io)
    }

    /// Storage backend name reported by the servers (first non-empty).
    pub fn backend_name(&self) -> &str {
        &self.backend
    }

    /// How many shards `query` routes to — same inflated-slab rule as the
    /// single-machine
    /// [`ShardedDataset::shards_touched`](maxrs_core::ShardedDataset::shards_touched).
    pub fn shards_touched(&self, query: &Query) -> usize {
        let (size, root) = query_root(query);
        self.engaged_sources(size, root).len()
    }

    /// How many servers the sweep passes of `query` fan out to.
    pub fn fan_out(&self, query: &Query) -> usize {
        let (size, root) = query_root(query);
        self.engaged_servers(&self.engaged_sources(size, root))
            .len()
    }

    /// Current health of every server, by transport name.
    pub fn health(&self) -> Vec<(String, ShardHealth)> {
        self.members
            .iter()
            .map(|m| {
                let h = m.health.lock().expect("health lock");
                let state = if h.dead {
                    ShardHealth::Dead
                } else if h.consecutive_failures > 0 {
                    ShardHealth::Degraded
                } else {
                    ShardHealth::Healthy
                };
                (m.transport.name().to_string(), state)
            })
            .collect()
    }

    /// Clears the dead flag and failure count of the named server so it is
    /// tried again (e.g. after an operator restarted it).  Returns `false`
    /// when no server has that name.
    pub fn revive(&self, server: &str) -> bool {
        for m in &self.members {
            if m.transport.name() == server {
                let mut h = m.health.lock().expect("health lock");
                h.dead = false;
                h.consecutive_failures = 0;
                return true;
            }
        }
        false
    }

    // ---- query execution ----------------------------------------------------

    /// Answers one query, bit-identical to the unsharded
    /// [`PreparedDataset::run`](maxrs_core::PreparedDataset::run).
    pub fn run(&self, query: &Query) -> Result<QueryRun> {
        query.validate()?;
        let before = self.merge_ctx.stats();
        let agg = Mutex::new(IoSnapshot::default());
        let answer = self.answer(query, &agg)?;
        let remote = *agg.lock().expect("io lock");
        let io = remote + self.merge_ctx.stats().delta(&before);
        let workers = self.members.len();
        let strategy = if workers > 1 {
            ExecutionStrategy::ExternalParallel
        } else {
            ExecutionStrategy::ExternalSequential
        };
        Ok(QueryRun {
            answer,
            strategy,
            workers,
            io,
        })
    }

    /// Validates and answers a batch of queries, one after another.
    ///
    /// Unlike the single-machine batch executor the cluster does not share
    /// sweep passes between queries of the same rectangle size yet — each
    /// query runs its own fan-out (answers are identical either way; only
    /// the I/O sharing differs).
    pub fn run_batch(&self, queries: &[Query]) -> Result<Vec<QueryRun>> {
        QueryBatch::new(queries)?;
        queries.iter().map(|q| self.run(q)).collect()
    }

    /// Answers an already planned batch query-by-query (see
    /// [`run_batch`](ClusterCoordinator::run_batch) for the sharing caveat).
    pub fn run_planned(&self, batch: &QueryBatch) -> Result<Vec<QueryRun>> {
        batch.queries().iter().map(|q| self.run(q)).collect()
    }

    fn answer(&self, query: &Query, agg: &Mutex<IoSnapshot>) -> Result<QueryAnswer> {
        match *query {
            Query::MaxRs { size } => Ok(QueryAnswer::MaxRs(self.cluster_max_rs(size, &[], agg)?)),
            Query::TopK { size, k } => Ok(QueryAnswer::TopK(self.top_k(size, k, agg)?)),
            Query::ApproxMaxCrs { diameter, .. } => {
                let sigma = query.sigma_fraction().expect("approx variant has a sigma");
                Ok(QueryAnswer::MaxCrs(
                    self.approx_max_crs(diameter, sigma, agg)?,
                ))
            }
            Query::MinRs { size, domain } => {
                Ok(QueryAnswer::MinRs(self.min_rs(size, domain, agg)?))
            }
        }
    }

    // ---- routing ------------------------------------------------------------

    /// Engaged source shards: same strictly-out-of-reach rule as the
    /// single-machine dataset.
    fn engaged_sources(&self, size: RectSize, root: Interval) -> Vec<usize> {
        let half = size.width / 2.0;
        (0..self.shards.len())
            .filter(|&i| {
                let s = self.shards[i].slab;
                !(s.hi + half < root.lo || s.lo - half > root.hi)
            })
            .collect()
    }

    fn clipped_partition(&self, root: Interval) -> SlabPartition {
        let mut bounds = Vec::with_capacity(self.boundaries.len() + 2);
        bounds.push(root.lo);
        for &b in &self.boundaries {
            if b > root.lo && b < root.hi {
                bounds.push(b);
            }
        }
        bounds.push(root.hi);
        SlabPartition::new(bounds)
    }

    fn slab_owners(&self, partition: &SlabPartition) -> Vec<usize> {
        (0..partition.num_slabs())
            .map(|t| {
                self.boundaries
                    .partition_point(|&b| b <= partition.boundaries[t])
                    .min(self.shards.len() - 1)
            })
            .collect()
    }

    /// Server indices hosting any of the given shards, ascending, deduped.
    fn engaged_servers(&self, shards: &[usize]) -> Vec<usize> {
        let mut servers: Vec<usize> = shards.iter().map(|&s| self.shards[s].server).collect();
        servers.sort_unstable();
        servers.dedup();
        servers
    }

    fn all_servers(&self) -> Vec<usize> {
        (0..self.members.len()).collect()
    }

    // ---- rpc plumbing -------------------------------------------------------

    /// One request with the full robustness treatment: fast-fail on dead
    /// servers, per-attempt timeout, bounded retries with exponential
    /// backoff, health bookkeeping, remote I/O aggregation.
    fn rpc(&self, server: usize, request: &Request, agg: &Mutex<IoSnapshot>) -> Result<Response> {
        let member = &self.members[server];
        {
            let h = member.health.lock().expect("health lock");
            if h.dead {
                return Err(ClusterError::ShardUnavailable {
                    server: member.transport.name().to_string(),
                    shards: member.shards.clone(),
                    attempts: 0,
                    detail: "server is marked dead by the health tracker".to_string(),
                });
            }
        }
        let attempts = self.config.retries + 1;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 && !self.config.backoff.is_zero() {
                self.sleep_backoff(attempt);
            }
            match member.transport.call(request, self.config.request_timeout) {
                Ok(Response::Error { message }) => {
                    // Deterministic server-side failure: retrying cannot
                    // help, and the server itself is alive.
                    return Err(ClusterError::Remote {
                        server: member.transport.name().to_string(),
                        detail: message,
                    });
                }
                Ok(response) => {
                    member
                        .health
                        .lock()
                        .expect("health lock")
                        .consecutive_failures = 0;
                    let mut total = agg.lock().expect("io lock");
                    *total = *total + response.io();
                    return Ok(response);
                }
                Err(e) => last = e.to_string(),
            }
        }
        {
            let mut h = member.health.lock().expect("health lock");
            h.consecutive_failures += 1;
            if h.consecutive_failures >= self.config.failure_threshold {
                h.dead = true;
            }
        }
        Err(ClusterError::ShardUnavailable {
            server: member.transport.name().to_string(),
            shards: member.shards.clone(),
            attempts,
            detail: last,
        })
    }

    fn sleep_backoff(&self, attempt: u32) {
        let factor = 2u32.saturating_pow(attempt.saturating_sub(1));
        std::thread::sleep(self.config.backoff.saturating_mul(factor));
    }

    /// Fans the prepared `(server, request)` pairs out concurrently and
    /// collects the replies in the same order.
    fn fan_out_requests(
        &self,
        requests: Vec<(usize, Request)>,
        agg: &Mutex<IoSnapshot>,
    ) -> Result<Vec<Response>> {
        let workers = requests.len().max(1);
        let outs = parallel_map(workers, requests, |_, (server, request)| {
            self.rpc(server, &request, agg)
        });
        let mut responses = Vec::with_capacity(outs.len());
        let mut first_err = None;
        for out in outs {
            match out {
                Ok(r) => responses.push(r),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    fn fan_out_same(
        &self,
        servers: &[usize],
        request: &Request,
        agg: &Mutex<IoSnapshot>,
    ) -> Result<Vec<Response>> {
        self.fan_out_requests(servers.iter().map(|&s| (s, request.clone())).collect(), agg)
    }

    // ---- the distributed sweep ----------------------------------------------

    /// One `(size, weight_scale, root)` pass over the cluster: the
    /// two-round distribute/solve protocol (see [`crate::protocol`]) plus
    /// the canonical [`merge_sweep`] on the coordinator's merge device.
    /// Returns the merged root slab-file, exactly the file the
    /// single-machine `sharded_slab_file` produces.
    fn cluster_slab_file(
        &self,
        size: RectSize,
        weight_scale: f64,
        root: Interval,
        suppressed: &[Rect],
        agg: &Mutex<IoSnapshot>,
    ) -> Result<TupleFile<SlabTuple>> {
        let partition = self.clipped_partition(root);
        let owners = self.slab_owners(&partition);
        let m = partition.num_slabs();
        let engaged = self.engaged_sources(size, root);
        let servers = self.engaged_servers(&engaged);
        let pass = PassSpec {
            size,
            weight_scale,
            root,
            bounds: partition.boundaries.clone(),
            owners: owners.iter().map(|&o| o as u32).collect(),
            engaged: engaged.iter().map(|&s| s as u32).collect(),
            suppressed: suppressed.to_vec(),
        };

        // Round 1 — distribute: spans and cross-server piece exports.
        let responses = self.fan_out_same(&servers, &Request::Distribute(pass.clone()), agg)?;
        let mut span_sets: Vec<(u32, Vec<SpanEvent>)> = Vec::new();
        let mut exports: BTreeMap<(u32, u32), Vec<maxrs_core::RectRecord>> = BTreeMap::new();
        for response in responses {
            let Response::Distributed {
                spans, exported, ..
            } = response
            else {
                return Err(wrong_reply("Distribute"));
            };
            span_sets.extend(spans);
            for ps in exported {
                if exports.insert((ps.source, ps.slab), ps.rects).is_some() {
                    return Err(ClusterError::Protocol {
                        detail: format!(
                            "piece set (source {}, slab {}) exported twice",
                            ps.source, ps.slab
                        ),
                    });
                }
            }
        }

        // Round 2 — solve: route each export to the server hosting the
        // owner shard of its slab.
        let mut imported: BTreeMap<usize, Vec<PieceSet>> = BTreeMap::new();
        for ((source, slab), rects) in exports {
            let owner = owners[slab as usize];
            imported
                .entry(self.shards[owner].server)
                .or_default()
                .push(PieceSet {
                    source,
                    slab,
                    rects,
                });
        }
        let requests: Vec<(usize, Request)> = servers
            .iter()
            .map(|&s| {
                (
                    s,
                    Request::Solve {
                        pass: pass.clone(),
                        imported: imported.remove(&s).unwrap_or_default(),
                    },
                )
            })
            .collect();
        let responses = self.fan_out_requests(requests, agg)?;

        let mut slab_tuples: Vec<Option<Vec<SlabTuple>>> = (0..m).map(|_| None).collect();
        for response in responses {
            let Response::Solved { slabs, .. } = response else {
                return Err(wrong_reply("Solve"));
            };
            for (t, tuples) in slabs {
                let t = t as usize;
                if t >= m || slab_tuples[t].replace(tuples).is_some() {
                    return Err(ClusterError::Protocol {
                        detail: format!("global slab {t} solved zero or two times"),
                    });
                }
            }
        }
        let mut resolved = Vec::with_capacity(m);
        for (t, tuples) in slab_tuples.into_iter().enumerate() {
            match tuples {
                Some(ts) => resolved.push(ts),
                None => {
                    return Err(ClusterError::Protocol {
                        detail: format!("no server solved global slab {t}"),
                    })
                }
            }
        }

        // Merge on the coordinator's device: per-slab files + y-sorted span
        // events through the canonical MergeSweep.
        let mut slab_files: Vec<TupleFile<SlabTuple>> = Vec::with_capacity(m);
        let body = (|| -> Result<TupleFile<SlabTuple>> {
            for tuples in &resolved {
                slab_files.push(self.merge_ctx.write_all(tuples)?);
            }
            span_sets.sort_by_key(|&(source, _)| source);
            let all_spans: Vec<SpanEvent> = span_sets
                .iter()
                .flat_map(|(_, events)| events.iter().copied())
                .collect();
            let unsorted = self.merge_ctx.write_all(&all_spans)?;
            let sorted = external_sort_by_key(&self.merge_ctx, &unsorted, |e| e.y);
            self.merge_ctx.delete_file(unsorted)?;
            let sorted = sorted?;
            let merged = merge_sweep(&self.merge_ctx, &slab_files, &partition.slabs(), &sorted);
            self.merge_ctx.delete_file(sorted)?;
            Ok(merged?)
        })();
        for f in slab_files.drain(..) {
            let _ = self.merge_ctx.delete_file(f);
        }
        body
    }

    /// The full distributed MaxRS pipeline: sweep → extract → canonicalize.
    fn cluster_max_rs(
        &self,
        size: RectSize,
        suppressed: &[Rect],
        agg: &Mutex<IoSnapshot>,
    ) -> Result<MaxRsResult> {
        if self.len == 0 {
            return Ok(MaxRsResult::empty());
        }
        let merged = self.cluster_slab_file(size, 1.0, Interval::UNBOUNDED, suppressed, agg)?;
        let result = extract_best(&self.merge_ctx, &merged);
        self.merge_ctx.delete_file(merged)?;
        self.canonicalize(size, Interval::UNBOUNDED, suppressed, result?, agg)
    }

    /// Min-next-breakpoint canonicalization across the cluster: every
    /// server reports the minimum over its hosted shards, the coordinator
    /// takes the minimum across servers — together exactly the all-shards
    /// loop of the single-machine canonicalize.
    fn canonicalize(
        &self,
        size: RectSize,
        root: Interval,
        suppressed: &[Rect],
        result: MaxRsResult,
        agg: &Mutex<IoSnapshot>,
    ) -> Result<MaxRsResult> {
        if !result.region.x_lo.is_finite() && !result.region.x_hi.is_finite() {
            // The empty-dataset sentinel; nothing to widen.
            return Ok(result);
        }
        let hi = self.min_breakpoint(size, root, result.region.x_lo, suppressed, agg)?;
        let x = Interval::new(result.region.x_lo, hi.max(result.region.x_hi));
        Ok(MaxRsResult {
            center: Point::new(x.representative(), result.center.y),
            total_weight: result.total_weight,
            region: Rect::new(x.lo, x.hi, result.region.y_lo, result.region.y_hi),
        })
    }

    fn min_breakpoint(
        &self,
        size: RectSize,
        root: Interval,
        after_x: f64,
        suppressed: &[Rect],
        agg: &Mutex<IoSnapshot>,
    ) -> Result<f64> {
        let request = Request::Breakpoint {
            size,
            root,
            after_x,
            suppressed: suppressed.to_vec(),
        };
        let responses = self.fan_out_same(&self.all_servers(), &request, agg)?;
        let mut hi = f64::INFINITY;
        for response in responses {
            let Response::Breakpoint { hi: h, .. } = response else {
                return Err(wrong_reply("Breakpoint"));
            };
            hi = hi.min(h);
        }
        Ok(hi)
    }

    /// Greedy suppression rounds; each round is a full distributed MaxRS
    /// over the objects not strictly inside any already-chosen rectangle
    /// (carried statelessly in every request).
    fn top_k(&self, size: RectSize, k: usize, agg: &Mutex<IoSnapshot>) -> Result<Vec<MaxRsResult>> {
        let mut results = Vec::new();
        let mut suppressed: Vec<Rect> = Vec::new();
        for _ in 0..k {
            let best = self.cluster_max_rs(size, &suppressed, agg)?;
            if best.total_weight <= 0.0 {
                break;
            }
            suppressed.push(Rect::centered_at(best.center, size));
            results.push(best);
        }
        Ok(results)
    }

    /// Steps 1–3 of ApproxMaxCRS: distributed MaxRS on the MBR transform,
    /// then the five-candidate refinement with per-shard sums accumulated
    /// in shard order (the same order the single-machine refine uses).
    fn approx_max_crs(
        &self,
        diameter: f64,
        sigma_fraction: f64,
        agg: &Mutex<IoSnapshot>,
    ) -> Result<MaxCrsResult> {
        if self.len == 0 {
            return Ok(MaxCrsResult::empty());
        }
        let best = self.cluster_max_rs(RectSize::square(diameter), &[], agg)?;
        let candidates = candidate_points(best.center, diameter, sigma_fraction);
        let request = Request::Evaluate {
            candidates: candidates.to_vec(),
            diameter,
        };
        let responses = self.fan_out_same(&self.all_servers(), &request, agg)?;
        let mut per_shard: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for response in responses {
            let Response::Evaluated { sums, .. } = response else {
                return Err(wrong_reply("Evaluate"));
            };
            for (shard, s) in sums {
                per_shard.insert(shard, s);
            }
        }
        let mut totals = vec![0.0f64; candidates.len()];
        for shard in 0..self.shards.len() as u32 {
            if let Some(sums) = per_shard.get(&shard) {
                for (t, s) in totals.iter_mut().zip(sums.iter()) {
                    *t += s;
                }
            }
        }
        Ok(best_candidate(&candidates, &totals))
    }

    /// MinRS: the weight-negated pass over the domain's x-slab, the strip
    /// scan on the merged slab-file, and the canonical finalization — all
    /// mirroring the single-machine MinRS group.
    fn min_rs(&self, size: RectSize, domain: Rect, agg: &Mutex<IoSnapshot>) -> Result<MaxRsResult> {
        if domain.x_lo == domain.x_hi || domain.y_lo == domain.y_hi {
            return self.degenerate_min_rs(size, domain, agg);
        }
        if self.len == 0 {
            return Ok(MaxRsResult {
                center: domain.center(),
                total_weight: 0.0,
                region: domain,
            });
        }
        let slab = Interval::new(domain.x_lo, domain.x_hi);
        let slab_file = self.cluster_slab_file(size, -1.0, slab, &[], agg)?;
        let best = {
            let mut reader = self.merge_ctx.open_reader(&slab_file);
            let tuples = std::iter::from_fn(|| match reader.next_record() {
                Ok(Some(t)) => Some(Ok(t)),
                Ok(None) => None,
                Err(e) => Some(Err(e.into())),
            });
            min_strip_scan(tuples, slab, domain)
        };
        self.merge_ctx.delete_file(slab_file)?;
        match best? {
            None => {
                // Defensive mirror of the in-memory fallback: evaluate the
                // domain center over the full object stream, fetched and
                // scanned in shard order so the accumulation is exactly the
                // single-machine all-shards scan.
                let center = domain.center();
                let query_rect = Rect::centered_at(center, size);
                let mut total = 0.0;
                for record in self.fetch_all_objects(agg)? {
                    if query_rect.contains_open(&record.0.point) {
                        total += record.0.weight;
                    }
                }
                Ok(MaxRsResult {
                    center,
                    total_weight: total,
                    region: domain,
                })
            }
            Some((negated_sum, x, y, from_tuple)) => {
                let x = if from_tuple {
                    let hi = self.min_breakpoint(size, slab, x.lo, &[], agg)?;
                    Interval::new(x.lo, hi.max(x.hi))
                } else {
                    x
                };
                let center = Point::new(
                    x.representative().clamp(domain.x_lo, domain.x_hi),
                    y.representative().clamp(domain.y_lo, domain.y_hi),
                );
                Ok(MaxRsResult {
                    center,
                    // `0.0 - x` so an uncovered minimum reports +0.0
                    // (mirrors `min_rs_in_memory`).
                    total_weight: 0.0 - negated_sum,
                    region: Rect::new(x.lo, x.hi, y.lo, y.hi),
                })
            }
        }
    }

    /// Degenerate-domain MinRS: fetch every shard's records in shard order
    /// and delegate to the in-memory reference, exactly like the sharded
    /// executor's one-scan delegate.
    fn degenerate_min_rs(
        &self,
        size: RectSize,
        domain: Rect,
        agg: &Mutex<IoSnapshot>,
    ) -> Result<MaxRsResult> {
        if self.len == 0 {
            return Ok(MaxRsResult {
                center: domain.center(),
                total_weight: 0.0,
                region: domain,
            });
        }
        let records = self.fetch_all_objects(agg)?;
        let points: Vec<WeightedPoint> = records.iter().map(|r| r.0).collect();
        Ok(min_rs_in_memory(&points, size, domain))
    }

    /// Every shard's object records concatenated in global shard order.
    fn fetch_all_objects(&self, agg: &Mutex<IoSnapshot>) -> Result<Vec<ObjectRecord>> {
        let responses = self.fan_out_same(&self.all_servers(), &Request::FetchObjects, agg)?;
        let mut per_shard: BTreeMap<u32, Vec<ObjectRecord>> = BTreeMap::new();
        for response in responses {
            let Response::Objects { objects, .. } = response else {
                return Err(wrong_reply("FetchObjects"));
            };
            for (shard, records) in objects {
                per_shard.insert(shard, records);
            }
        }
        let mut all = Vec::with_capacity(self.len as usize);
        for shard in 0..self.shards.len() as u32 {
            if let Some(records) = per_shard.remove(&shard) {
                all.extend(records);
            }
        }
        Ok(all)
    }
}

fn query_root(query: &Query) -> (RectSize, Interval) {
    match *query {
        Query::MaxRs { size } | Query::TopK { size, .. } => (size, Interval::UNBOUNDED),
        Query::MinRs { size, domain } => (size, Interval::new(domain.x_lo, domain.x_hi)),
        Query::ApproxMaxCrs { diameter, .. } => (RectSize::square(diameter), Interval::UNBOUNDED),
    }
}

fn wrong_reply(expected: &str) -> ClusterError {
    ClusterError::Protocol {
        detail: format!("a server answered {expected} with the wrong reply variant"),
    }
}
