//! The shard-hosting server: owns one or more shards' [`PreparedDataset`]s
//! and answers the per-shard sub-queries of the cluster protocol.
//!
//! A [`ShardServer`] is transport-agnostic: [`ShardServer::handle`] maps one
//! [`Request`] to one [`Response`] synchronously.  The in-process transport
//! calls it directly; the TCP transport calls it from connection threads
//! (all request state is per-call, so `handle` is freely concurrent).
//!
//! Every handler is a **verbatim mirror** of the corresponding phase of the
//! single-machine [`ShardedDataset`](maxrs_core::ShardedDataset): the same
//! cropping rule, the same piece ordering, the same scans — restricted to
//! the shards this server hosts.  That is what makes the coordinator's
//! merged answers bit-identical to the unsharded sweep.

use std::collections::BTreeMap;
use std::path::Path;

use maxrs_core::shard::prepare_shard;
use maxrs_core::sweep::{next_breakpoint_after, solve_rects};
use maxrs_core::{
    evaluate_candidates, EngineOptions, ExactMaxRsOptions, ObjectRecord, PreparedDataset,
    RectRecord, Result as CoreResult, SlabPartition, SpanEvent,
};
use maxrs_em::{EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::{Rect, WeightedPoint};

use crate::protocol::{PassSpec, PieceSet, Request, Response, ShardInfo};

/// One shard hosted by this server.
struct HostedShard {
    id: usize,
    data: PreparedDataset<'static>,
    prepare_io: IoSnapshot,
}

/// Hosts shards' prepared datasets and answers cluster sub-queries.
///
/// Shards are installed with [`host`](ShardServer::host) (each getting its
/// own external-memory context, like the single-machine sharded dataset
/// gives every shard its own device) and served read-only afterwards.
pub struct ShardServer {
    opts: EngineOptions,
    boundaries: Vec<f64>,
    num_shards: usize,
    hosted: Vec<HostedShard>,
}

impl ShardServer {
    /// Creates a server agreeing on the given global shard `boundaries`
    /// (interior boundaries, as produced by
    /// [`select_shard_boundaries`](maxrs_core::select_shard_boundaries) —
    /// `K - 1` values for a `K`-shard cluster).
    pub fn new(opts: EngineOptions, boundaries: Vec<f64>) -> Self {
        let num_shards = boundaries.len() + 1;
        ShardServer {
            opts,
            boundaries,
            num_shards,
            hosted: Vec::new(),
        }
    }

    /// Prepares and hosts shard `id` from its objects on the simulated
    /// backend of the server's engine options.
    pub fn host(&mut self, id: usize, objects: &[WeightedPoint]) -> CoreResult<()> {
        self.host_inner(id, None, objects)
    }

    /// Prepares and hosts shard `id` with its block device rooted in
    /// `directory` (filesystem backend).
    pub fn host_in(
        &mut self,
        id: usize,
        directory: &Path,
        objects: &[WeightedPoint],
    ) -> CoreResult<()> {
        self.host_inner(id, Some(directory), objects)
    }

    fn host_inner(
        &mut self,
        id: usize,
        directory: Option<&Path>,
        objects: &[WeightedPoint],
    ) -> CoreResult<()> {
        assert!(
            id < self.num_shards,
            "shard id {id} out of range for {} shards",
            self.num_shards
        );
        assert!(
            !self.hosted.iter().any(|h| h.id == id),
            "shard {id} already hosted"
        );
        let (data, prepare_io) = prepare_shard(self.opts, directory, objects)?;
        let at = self.hosted.partition_point(|h| h.id < id);
        self.hosted.insert(
            at,
            HostedShard {
                id,
                data,
                prepare_io,
            },
        );
        Ok(())
    }

    /// The global shard ids hosted here, ascending.
    pub fn hosted_shards(&self) -> Vec<usize> {
        self.hosted.iter().map(|h| h.id).collect()
    }

    /// Answers one protocol request.  Never panics outward on bad input from
    /// a well-formed message; failures become [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        let before = self.stats_total();
        match self.dispatch(request) {
            Ok(resp) => resp.with_io(self.stats_total().delta(&before)),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    fn dispatch(&self, request: &Request) -> CoreResult<Response> {
        match request {
            Request::Describe => Ok(self.describe()),
            Request::Distribute(pass) => self.distribute(pass),
            Request::Solve { pass, imported } => self.solve(pass, imported),
            Request::Breakpoint {
                size,
                root,
                after_x,
                suppressed,
            } => self.breakpoint(*size, *root, *after_x, suppressed),
            Request::Evaluate {
                candidates,
                diameter,
            } => self.evaluate(candidates, *diameter),
            Request::FetchObjects => self.fetch_objects(),
        }
    }

    /// Logical transfers across every hosted shard's device.
    fn stats_total(&self) -> IoSnapshot {
        self.hosted
            .iter()
            .filter_map(|h| h.data.external_parts())
            .fold(IoSnapshot::default(), |acc, (ctx, _)| acc + ctx.stats())
    }

    fn hosts(&self, shard: usize) -> bool {
        self.hosted.iter().any(|h| h.id == shard)
    }

    fn hosted_ctx(&self, shard: usize) -> &EmContext {
        self.hosted
            .iter()
            .find(|h| h.id == shard)
            .and_then(|h| h.data.external_parts())
            .map(|(ctx, _)| ctx)
            .expect("hosted shards are always external")
    }

    // ---- handlers -----------------------------------------------------------

    fn describe(&self) -> Response {
        let backend = self
            .hosted
            .first()
            .and_then(|h| h.data.backend_name())
            .unwrap_or("")
            .to_string();
        Response::Described {
            boundaries: self.boundaries.clone(),
            backend,
            shards: self
                .hosted
                .iter()
                .map(|h| ShardInfo {
                    shard: h.id as u32,
                    len: h.data.len(),
                    prepare_io: h.prepare_io,
                })
                .collect(),
        }
    }

    /// Round 1: the cropping scan of
    /// [`ShardedDataset`](maxrs_core::ShardedDataset)'s `distribute_source`,
    /// run for every hosted engaged source.  Pieces whose owner slab is
    /// hosted elsewhere are exported; span events always travel to the
    /// coordinator (they merge on the coordinator's device).  Pieces whose
    /// owner slab is hosted *here* are dropped — round 2 re-derives them
    /// with the same one-pass scan, which keeps the server stateless.
    fn distribute(&self, pass: &PassSpec) -> CoreResult<Response> {
        let partition = SlabPartition::new(pass.bounds.clone());
        let mut spans: Vec<(u32, Vec<SpanEvent>)> = Vec::new();
        let mut exported: BTreeMap<(u32, u32), Vec<RectRecord>> = BTreeMap::new();
        for h in &self.hosted {
            if !pass.engaged.contains(&(h.id as u32)) {
                continue;
            }
            let (ctx, file) = h.data.external_parts().expect("shards are external");
            let filtered = filtered_file(ctx, file, &pass.suppressed)?;
            let mut events: Vec<SpanEvent> = Vec::new();
            let scan = (|| -> CoreResult<()> {
                let mut reader = ctx.open_reader(filtered.file());
                while let Some(rec) = reader.next_record()? {
                    let record =
                        RectRecord::new(rec.0.to_rect(pass.size), pass.weight_scale * rec.0.weight);
                    let j = partition.locate(record.rect.x_lo);
                    let k = partition.locate(record.rect.x_hi);
                    if j == k {
                        export_piece(&mut exported, self, pass, h.id, j, &record);
                    } else {
                        let left = RectRecord::new(
                            Rect::new(
                                record.rect.x_lo,
                                partition.boundaries[j + 1],
                                record.rect.y_lo,
                                record.rect.y_hi,
                            ),
                            record.weight,
                        );
                        export_piece(&mut exported, self, pass, h.id, j, &left);
                        let right = RectRecord::new(
                            Rect::new(
                                partition.boundaries[k],
                                record.rect.x_hi,
                                record.rect.y_lo,
                                record.rect.y_hi,
                            ),
                            record.weight,
                        );
                        export_piece(&mut exported, self, pass, h.id, k, &right);
                        if k > j + 1 {
                            events.extend(SpanEvent::pair(
                                record.rect.y_lo,
                                record.rect.y_hi,
                                record.weight,
                                (j + 1) as u32,
                                (k - 1) as u32,
                            ));
                        }
                    }
                }
                Ok(())
            })();
            filtered.cleanup(ctx)?;
            scan?;
            if !events.is_empty() {
                spans.push((h.id as u32, events));
            }
        }
        Ok(Response::Distributed {
            spans,
            exported: exported
                .into_iter()
                .map(|((source, slab), rects)| PieceSet {
                    source,
                    slab,
                    rects,
                })
                .collect(),
            io: IoSnapshot::default(),
        })
    }

    /// Round 2: re-derive the locally hosted sources' pieces for the global
    /// slabs owned here, interleave them with the imported pieces in global
    /// source order (the exact concatenation order of the single-machine
    /// `solve_slab`), and run the ordinary per-slab recursion.
    fn solve(&self, pass: &PassSpec, imported: &[PieceSet]) -> CoreResult<Response> {
        let partition = SlabPartition::new(pass.bounds.clone());
        let m = partition.num_slabs();
        let owners: Vec<usize> = pass.owners.iter().map(|&o| o as usize).collect();
        if owners.len() != m {
            return Err(maxrs_core::CoreError::InvalidParameter(format!(
                "pass has {m} slabs but {} owners",
                owners.len()
            )));
        }
        let owned: Vec<usize> = (0..m).filter(|&t| self.hosts(owners[t])).collect();
        if owned.is_empty() {
            return Ok(Response::Solved {
                slabs: Vec::new(),
                io: IoSnapshot::default(),
            });
        }

        // Pieces of the locally owned slabs, gathered in memory (exactly
        // like round 1 gathers exports) and keyed `(source, slab)`.
        // Keeping them in memory — instead of streaming per-source piece
        // files — gives every shard device a **canonical access sequence**
        // (scan, combined write, solve) that does not depend on which
        // sources happen to be co-hosted, which is what keeps the summed
        // `IoSnapshot` invariant across server topologies.
        let mut pieces: BTreeMap<(usize, usize), Vec<RectRecord>> = BTreeMap::new();
        for h in &self.hosted {
            if !pass.engaged.contains(&(h.id as u32)) {
                continue;
            }
            let (ctx, file) = h.data.external_parts().expect("shards are external");
            let filtered = filtered_file(ctx, file, &pass.suppressed)?;
            let scan = (|| -> CoreResult<()> {
                let mut reader = ctx.open_reader(filtered.file());
                while let Some(rec) = reader.next_record()? {
                    let record =
                        RectRecord::new(rec.0.to_rect(pass.size), pass.weight_scale * rec.0.weight);
                    let j = partition.locate(record.rect.x_lo);
                    let k = partition.locate(record.rect.x_hi);
                    if j == k {
                        push_owned(self, &owners, &mut pieces, h.id, j, &record);
                    } else {
                        let left = RectRecord::new(
                            Rect::new(
                                record.rect.x_lo,
                                partition.boundaries[j + 1],
                                record.rect.y_lo,
                                record.rect.y_hi,
                            ),
                            record.weight,
                        );
                        push_owned(self, &owners, &mut pieces, h.id, j, &left);
                        let right = RectRecord::new(
                            Rect::new(
                                partition.boundaries[k],
                                record.rect.x_hi,
                                record.rect.y_lo,
                                record.rect.y_hi,
                            ),
                            record.weight,
                        );
                        push_owned(self, &owners, &mut pieces, h.id, k, &right);
                    }
                }
                Ok(())
            })();
            filtered.cleanup(ctx)?;
            scan?;
        }

        // Merge the imported piece sets.  The keys cannot collide with the
        // local ones: a source is exported only by a server that does not
        // host this slab's owner, and `pieces` only holds sources hosted
        // here.
        for ps in imported {
            let (source, t) = (ps.source as usize, ps.slab as usize);
            if t >= m || !self.hosts(owners[t]) {
                return Err(maxrs_core::CoreError::InvalidParameter(format!(
                    "imported piece set routed to a non-owned slab {t}"
                )));
            }
            pieces.insert((source, t), ps.rects.clone());
        }

        let mut out = Vec::with_capacity(owned.len());
        for &t in &owned {
            let ctx = self.hosted_ctx(owners[t]);
            let mut writer = ctx.create_writer::<RectRecord>()?;
            for source in 0..self.num_shards {
                if let Some(rects) = pieces.get(&(source, t)) {
                    for rec in rects {
                        writer.push(rec)?;
                    }
                }
            }
            let rects = writer.finish()?;
            let opts = ExactMaxRsOptions {
                parallelism: 1,
                ..self.opts.exact
            };
            let solved = solve_rects(ctx, &opts, rects, partition.slab(t), false, 1)?;
            let tuples = ctx.read_all(&solved)?;
            ctx.delete_file(solved)?;
            out.push((t as u32, tuples));
        }
        Ok(Response::Solved {
            slabs: out,
            io: IoSnapshot::default(),
        })
    }

    /// The per-server half of min-next-breakpoint canonicalization: the
    /// minimum of [`next_breakpoint_after`] over every hosted shard (the
    /// coordinator takes the minimum across servers, which together is
    /// exactly the all-shards loop of the single-machine canonicalize).
    fn breakpoint(
        &self,
        size: maxrs_geometry::RectSize,
        root: maxrs_geometry::Interval,
        after_x: f64,
        suppressed: &[Rect],
    ) -> CoreResult<Response> {
        let mut hi = f64::INFINITY;
        for h in &self.hosted {
            let (ctx, file) = h.data.external_parts().expect("shards are external");
            let filtered = filtered_file(ctx, file, suppressed)?;
            let scanned = next_breakpoint_after(ctx, filtered.file(), size, root, after_x);
            filtered.cleanup(ctx)?;
            hi = hi.min(scanned?);
        }
        Ok(Response::Breakpoint {
            hi,
            io: IoSnapshot::default(),
        })
    }

    /// ApproxMaxCRS refinement scan: per hosted shard, the candidates'
    /// open-disk weight sums over the **full** object file (refinement never
    /// sees top-k suppression, mirroring the single-machine `refine_crs`).
    fn evaluate(
        &self,
        candidates: &[maxrs_geometry::Point],
        diameter: f64,
    ) -> CoreResult<Response> {
        let mut sums = Vec::with_capacity(self.hosted.len());
        for h in &self.hosted {
            let (ctx, file) = h.data.external_parts().expect("shards are external");
            sums.push((
                h.id as u32,
                evaluate_candidates(ctx, file, candidates, diameter)?,
            ));
        }
        Ok(Response::Evaluated {
            sums,
            io: IoSnapshot::default(),
        })
    }

    fn fetch_objects(&self) -> CoreResult<Response> {
        let mut objects = Vec::with_capacity(self.hosted.len());
        for h in &self.hosted {
            let (ctx, file) = h.data.external_parts().expect("shards are external");
            objects.push((h.id as u32, ctx.read_all(file)?));
        }
        Ok(Response::Objects {
            objects,
            io: IoSnapshot::default(),
        })
    }
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("num_shards", &self.num_shards)
            .field("hosted", &self.hosted_shards())
            .finish()
    }
}

/// Exports a cropped piece when its owner slab is hosted on another server;
/// locally-owned pieces are regenerated in round 2 instead.
fn export_piece(
    exported: &mut BTreeMap<(u32, u32), Vec<RectRecord>>,
    server: &ShardServer,
    pass: &PassSpec,
    source: usize,
    t: usize,
    record: &RectRecord,
) {
    let owner = pass
        .owners
        .get(t)
        .map(|&o| o as usize)
        .unwrap_or(usize::MAX);
    if !server.hosts(owner) {
        exported
            .entry((source as u32, t as u32))
            .or_default()
            .push(*record);
    }
}

/// Collects a piece of a locally-owned global slab; pieces of slabs owned
/// elsewhere are dropped (they were exported in round 1).
fn push_owned(
    server: &ShardServer,
    owners: &[usize],
    pieces: &mut BTreeMap<(usize, usize), Vec<RectRecord>>,
    source: usize,
    t: usize,
    record: &RectRecord,
) {
    if server.hosts(owners[t]) {
        pieces.entry((source, t)).or_default().push(*record);
    }
}

/// An object file with the top-k suppression filter applied: borrowed when
/// no suppression is active, a materialized temporary otherwise.
enum Filtered<'a> {
    Borrowed(&'a TupleFile<ObjectRecord>),
    Owned(TupleFile<ObjectRecord>),
}

impl<'a> Filtered<'a> {
    fn file(&self) -> &TupleFile<ObjectRecord> {
        match self {
            Filtered::Borrowed(f) => f,
            Filtered::Owned(f) => f,
        }
    }

    fn cleanup(self, ctx: &EmContext) -> CoreResult<()> {
        if let Filtered::Owned(f) = self {
            ctx.delete_file(f)?;
        }
        Ok(())
    }
}

/// Applies the suppression filter exactly like the single-machine top-k
/// rounds: an object strictly inside any chosen rectangle is removed, order
/// preserved.
fn filtered_file<'a>(
    ctx: &EmContext,
    file: &'a TupleFile<ObjectRecord>,
    suppressed: &[Rect],
) -> CoreResult<Filtered<'a>> {
    if suppressed.is_empty() {
        return Ok(Filtered::Borrowed(file));
    }
    let filtered = ctx.filter_map_file(file, |rec: ObjectRecord| {
        if suppressed.iter().any(|r| r.contains_open(&rec.0.point)) {
            None
        } else {
            Some(rec)
        }
    })?;
    Ok(Filtered::Owned(filtered))
}
