//! The cluster wire protocol: request/reply messages and their hand-rolled
//! binary encoding.
//!
//! A cluster query is answered by a **two-round stateless protocol** that
//! mirrors the phases of the single-machine sharded sweep
//! ([`maxrs_core::shard`]):
//!
//! 1. [`Request::Distribute`] — every engaged server crops its hosted source
//!    shards' rectangles against the global slab partition of the pass and
//!    replies with the span-event contributions plus the end pieces whose
//!    owner slab lives on *another* server.
//! 2. [`Request::Solve`] — the coordinator routes those exported pieces to
//!    the servers hosting the owner shards; each server re-derives its local
//!    pieces (the scan is one cheap `O(N_s/B)` pass), interleaves local and
//!    imported pieces in global source order, runs the ordinary per-slab
//!    recursion, and replies with the resulting slab tuples.
//!
//! Servers keep **no per-query state** between the two rounds, so retries,
//! interleaved queries from several coordinators, and failover need no
//! session bookkeeping.  Top-k suppression rounds stay stateless the same
//! way: every request carries the list of already-chosen rectangles
//! ([`PassSpec::suppressed`]) and servers filter their object files per
//! request.
//!
//! The encoding is length-prefixed little-endian, reusing the exact on-disk
//! [`Record`] codecs for records, so a record crosses the wire bit-identical
//! to how it rests on a block device.  No serialization dependency is
//! involved.

use maxrs_core::{ObjectRecord, RectRecord, SlabTuple, SpanEvent};
use maxrs_em::{codec, IoSnapshot, Record};
use maxrs_geometry::{Interval, Point, Rect, RectSize};

/// Hard cap on any decoded collection: larger counts are rejected as
/// malformed before allocation.
const MAX_COUNT: usize = 1 << 28;

/// One `(size, weight_scale, root)` sweep pass over the cluster, fully
/// describing the global slab partition so every server derives the same
/// geometry without further coordination.
#[derive(Debug, Clone, PartialEq)]
pub struct PassSpec {
    /// Query rectangle extent.
    pub size: RectSize,
    /// `1.0` for MaxRS-style passes, `-1.0` for the weight-negated MinRS
    /// pass.
    pub weight_scale: f64,
    /// Root slab of the pass (unbounded except for MinRS).
    pub root: Interval,
    /// Boundaries of the clipped global partition (`m + 1` values for `m`
    /// global slabs).
    pub bounds: Vec<f64>,
    /// Owner shard of each global slab (`m` values).
    pub owners: Vec<u32>,
    /// Engaged source shards, ascending.
    pub engaged: Vec<u32>,
    /// Top-k suppression: objects strictly inside any of these rectangles
    /// are filtered out of every scan of the pass.
    pub suppressed: Vec<Rect>,
}

/// A batch of rectangle pieces cropped from one source shard into one
/// global slab, in source-scan order.
#[derive(Debug, Clone, PartialEq)]
pub struct PieceSet {
    /// Source shard the pieces were cropped from.
    pub source: u32,
    /// Global slab index the pieces belong to.
    pub slab: u32,
    /// The pieces, in the source file's scan order.
    pub rects: Vec<RectRecord>,
}

/// One hosted shard as reported by [`Request::Describe`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Global shard id.
    pub shard: u32,
    /// Objects in the shard.
    pub len: u64,
    /// Block transfers spent preparing the shard.
    pub prepare_io: IoSnapshot,
}

/// A sub-query sent to one [`ShardServer`](crate::ShardServer).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Topology handshake: boundaries, hosted shards, storage backend.
    Describe,
    /// Round 1 of a sweep pass: crop and export (see the module docs).
    Distribute(PassSpec),
    /// Round 2 of a sweep pass: solve the locally-owned global slabs.
    Solve {
        /// The same pass as the preceding [`Request::Distribute`].
        pass: PassSpec,
        /// Pieces exported by *other* servers whose owner slab is hosted
        /// here.
        imported: Vec<PieceSet>,
    },
    /// Canonicalization support: the next arrangement breakpoint strictly
    /// after `after_x` over every hosted shard.
    Breakpoint {
        /// Query rectangle extent.
        size: RectSize,
        /// Root slab of the pass being canonicalized.
        root: Interval,
        /// Scan for breakpoints strictly greater than this.
        after_x: f64,
        /// Top-k suppression in effect for the pass.
        suppressed: Vec<Rect>,
    },
    /// ApproxMaxCRS refinement: per-shard candidate weight sums under the
    /// open disk of the given diameter.
    Evaluate {
        /// Candidate circle centers.
        candidates: Vec<Point>,
        /// Circle diameter.
        diameter: f64,
    },
    /// Fetch every hosted shard's object records (degenerate MinRS and
    /// defensive fallbacks delegate to in-memory code on the coordinator).
    FetchObjects,
}

/// A [`ShardServer`](crate::ShardServer)'s reply.  Every data-carrying
/// variant reports the logical block transfers the request cost on the
/// server ([`Response::io`]), keeping the paper's I/O accounting exact
/// across the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Describe`].
    Described {
        /// The server's view of the global shard boundaries.
        boundaries: Vec<f64>,
        /// Storage backend name (empty when the server hosts no shards).
        backend: String,
        /// The shards hosted by this server.
        shards: Vec<ShardInfo>,
    },
    /// Reply to [`Request::Distribute`].
    Distributed {
        /// Span events per engaged source shard, in scan order.
        spans: Vec<(u32, Vec<SpanEvent>)>,
        /// Pieces destined for slabs owned elsewhere.
        exported: Vec<PieceSet>,
        /// Server-side block transfers of this request.
        io: IoSnapshot,
    },
    /// Reply to [`Request::Solve`].
    Solved {
        /// Slab tuples per locally-owned global slab.
        slabs: Vec<(u32, Vec<SlabTuple>)>,
        /// Server-side block transfers of this request.
        io: IoSnapshot,
    },
    /// Reply to [`Request::Breakpoint`].
    Breakpoint {
        /// Minimum breakpoint over the hosted shards (`+∞` when none).
        hi: f64,
        /// Server-side block transfers of this request.
        io: IoSnapshot,
    },
    /// Reply to [`Request::Evaluate`].
    Evaluated {
        /// Per hosted shard: the candidates' weight sums.
        sums: Vec<(u32, Vec<f64>)>,
        /// Server-side block transfers of this request.
        io: IoSnapshot,
    },
    /// Reply to [`Request::FetchObjects`].
    Objects {
        /// Per hosted shard: its object records in file order.
        objects: Vec<(u32, Vec<ObjectRecord>)>,
        /// Server-side block transfers of this request.
        io: IoSnapshot,
    },
    /// The request failed on the server.  Deterministic — the coordinator
    /// does not retry these.
    Error {
        /// The server's error message.
        message: String,
    },
}

impl Response {
    /// The server-side I/O carried by this reply (zero for handshake and
    /// error replies).
    pub fn io(&self) -> IoSnapshot {
        match self {
            Response::Distributed { io, .. }
            | Response::Solved { io, .. }
            | Response::Breakpoint { io, .. }
            | Response::Evaluated { io, .. }
            | Response::Objects { io, .. } => *io,
            Response::Described { .. } | Response::Error { .. } => IoSnapshot::default(),
        }
    }

    /// Stamps the server-side I/O onto a freshly built reply.
    pub(crate) fn with_io(mut self, stamped: IoSnapshot) -> Self {
        match &mut self {
            Response::Distributed { io, .. }
            | Response::Solved { io, .. }
            | Response::Breakpoint { io, .. }
            | Response::Evaluated { io, .. }
            | Response::Objects { io, .. } => *io = stamped,
            Response::Described { .. } | Response::Error { .. } => {}
        }
        self
    }
}

/// Decoding failure: the buffer is not a well-formed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire message: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type WireResult<T> = std::result::Result<T, WireError>;

// ---- primitive writer/reader ------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        let at = self.grow(4);
        codec::put_u32(&mut self.buf, at, v);
    }
    fn u64(&mut self, v: u64) {
        let at = self.grow(8);
        codec::put_u64(&mut self.buf, at, v);
    }
    fn f64(&mut self, v: f64) {
        let at = self.grow(8);
        codec::put_f64(&mut self.buf, at, v);
    }
    fn grow(&mut self, n: usize) -> usize {
        let at = self.buf.len();
        self.buf.resize(at + n, 0);
        at
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn record<T: Record>(&mut self, r: &T) {
        let at = self.grow(T::SIZE);
        r.encode(&mut self.buf[at..at + T::SIZE]);
    }
    fn records<T: Record>(&mut self, rs: &[T]) {
        self.u32(rs.len() as u32);
        for r in rs {
            self.record(r);
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }
    fn u32s(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }
    fn interval(&mut self, v: Interval) {
        self.f64(v.lo);
        self.f64(v.hi);
    }
    fn rect(&mut self, v: &Rect) {
        self.f64(v.x_lo);
        self.f64(v.x_hi);
        self.f64(v.y_lo);
        self.f64(v.y_hi);
    }
    fn rects(&mut self, vs: &[Rect]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.rect(v);
        }
    }
    fn size(&mut self, v: RectSize) {
        self.f64(v.width);
        self.f64(v.height);
    }
    fn point(&mut self, v: Point) {
        self.f64(v.x);
        self.f64(v.y);
    }
    fn io(&mut self, v: IoSnapshot) {
        self.u64(v.reads);
        self.u64(v.writes);
    }
    fn pass(&mut self, p: &PassSpec) {
        self.size(p.size);
        self.f64(p.weight_scale);
        self.interval(p.root);
        self.f64s(&p.bounds);
        self.u32s(&p.owners);
        self.u32s(&p.engaged);
        self.rects(&p.suppressed);
    }
    fn piece_sets(&mut self, ps: &[PieceSet]) {
        self.u32(ps.len() as u32);
        for p in ps {
            self.u32(p.source);
            self.u32(p.slab);
            self.records(&p.rects);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("truncated message: wanted {n} more bytes")))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> WireResult<u32> {
        Ok(codec::get_u32(self.take(4)?, 0))
    }
    fn u64(&mut self) -> WireResult<u64> {
        Ok(codec::get_u64(self.take(8)?, 0))
    }
    fn f64(&mut self) -> WireResult<f64> {
        Ok(codec::get_f64(self.take(8)?, 0))
    }
    /// A collection count, bounds-checked against the remaining bytes so a
    /// malformed header cannot drive a huge allocation.
    fn count(&mut self, elem_size: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.at;
        if n > MAX_COUNT || n.saturating_mul(elem_size.max(1)) > remaining {
            return Err(WireError(format!("implausible collection count {n}")));
        }
        Ok(n)
    }
    fn str(&mut self) -> WireResult<String> {
        let n = self.count(1)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|e| WireError(format!("invalid utf-8 string: {e}")))
    }
    fn record<T: Record>(&mut self) -> WireResult<T> {
        Ok(T::decode(self.take(T::SIZE)?))
    }
    fn records<T: Record>(&mut self) -> WireResult<Vec<T>> {
        let n = self.count(T::SIZE)?;
        (0..n).map(|_| self.record()).collect()
    }
    fn f64s(&mut self) -> WireResult<Vec<f64>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn u32s(&mut self) -> WireResult<Vec<u32>> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
    fn interval(&mut self) -> WireResult<Interval> {
        Ok(Interval {
            lo: self.f64()?,
            hi: self.f64()?,
        })
    }
    fn rect(&mut self) -> WireResult<Rect> {
        Ok(Rect {
            x_lo: self.f64()?,
            x_hi: self.f64()?,
            y_lo: self.f64()?,
            y_hi: self.f64()?,
        })
    }
    fn rects(&mut self) -> WireResult<Vec<Rect>> {
        let n = self.count(32)?;
        (0..n).map(|_| self.rect()).collect()
    }
    fn size(&mut self) -> WireResult<RectSize> {
        Ok(RectSize {
            width: self.f64()?,
            height: self.f64()?,
        })
    }
    fn point(&mut self) -> WireResult<Point> {
        Ok(Point {
            x: self.f64()?,
            y: self.f64()?,
        })
    }
    fn io(&mut self) -> WireResult<IoSnapshot> {
        Ok(IoSnapshot {
            reads: self.u64()?,
            writes: self.u64()?,
        })
    }
    fn pass(&mut self) -> WireResult<PassSpec> {
        Ok(PassSpec {
            size: self.size()?,
            weight_scale: self.f64()?,
            root: self.interval()?,
            bounds: self.f64s()?,
            owners: self.u32s()?,
            engaged: self.u32s()?,
            suppressed: self.rects()?,
        })
    }
    fn piece_sets(&mut self) -> WireResult<Vec<PieceSet>> {
        let n = self.count(12)?;
        (0..n)
            .map(|_| {
                Ok(PieceSet {
                    source: self.u32()?,
                    slab: self.u32()?,
                    rects: self.records()?,
                })
            })
            .collect()
    }
    fn finish(self) -> WireResult<()> {
        if self.at != self.buf.len() {
            return Err(WireError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

// ---- message encoding -------------------------------------------------------

const REQ_DESCRIBE: u8 = 0;
const REQ_DISTRIBUTE: u8 = 1;
const REQ_SOLVE: u8 = 2;
const REQ_BREAKPOINT: u8 = 3;
const REQ_EVALUATE: u8 = 4;
const REQ_FETCH_OBJECTS: u8 = 5;

impl Request {
    /// Encodes the request into a self-contained byte message (framing is
    /// the transport's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            Request::Describe => w.u8(REQ_DESCRIBE),
            Request::Distribute(pass) => {
                w.u8(REQ_DISTRIBUTE);
                w.pass(pass);
            }
            Request::Solve { pass, imported } => {
                w.u8(REQ_SOLVE);
                w.pass(pass);
                w.piece_sets(imported);
            }
            Request::Breakpoint {
                size,
                root,
                after_x,
                suppressed,
            } => {
                w.u8(REQ_BREAKPOINT);
                w.size(*size);
                w.interval(*root);
                w.f64(*after_x);
                w.rects(suppressed);
            }
            Request::Evaluate {
                candidates,
                diameter,
            } => {
                w.u8(REQ_EVALUATE);
                w.u32(candidates.len() as u32);
                for &c in candidates {
                    w.point(c);
                }
                w.f64(*diameter);
            }
            Request::FetchObjects => w.u8(REQ_FETCH_OBJECTS),
        }
        w.buf
    }

    /// Decodes a request message.
    pub fn decode(buf: &[u8]) -> WireResult<Request> {
        let mut r = Reader::new(buf);
        let req = match r.u8()? {
            REQ_DESCRIBE => Request::Describe,
            REQ_DISTRIBUTE => Request::Distribute(r.pass()?),
            REQ_SOLVE => Request::Solve {
                pass: r.pass()?,
                imported: r.piece_sets()?,
            },
            REQ_BREAKPOINT => Request::Breakpoint {
                size: r.size()?,
                root: r.interval()?,
                after_x: r.f64()?,
                suppressed: r.rects()?,
            },
            REQ_EVALUATE => {
                let n = r.count(16)?;
                let candidates = (0..n).map(|_| r.point()).collect::<WireResult<Vec<_>>>()?;
                Request::Evaluate {
                    candidates,
                    diameter: r.f64()?,
                }
            }
            REQ_FETCH_OBJECTS => Request::FetchObjects,
            tag => return Err(WireError(format!("unknown request tag {tag}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

const RESP_DESCRIBED: u8 = 0;
const RESP_DISTRIBUTED: u8 = 1;
const RESP_SOLVED: u8 = 2;
const RESP_BREAKPOINT: u8 = 3;
const RESP_EVALUATED: u8 = 4;
const RESP_OBJECTS: u8 = 5;
const RESP_ERROR: u8 = 6;

impl Response {
    /// Encodes the reply into a self-contained byte message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            Response::Described {
                boundaries,
                backend,
                shards,
            } => {
                w.u8(RESP_DESCRIBED);
                w.f64s(boundaries);
                w.str(backend);
                w.u32(shards.len() as u32);
                for s in shards {
                    w.u32(s.shard);
                    w.u64(s.len);
                    w.io(s.prepare_io);
                }
            }
            Response::Distributed {
                spans,
                exported,
                io,
            } => {
                w.u8(RESP_DISTRIBUTED);
                w.u32(spans.len() as u32);
                for (source, events) in spans {
                    w.u32(*source);
                    w.records(events);
                }
                w.piece_sets(exported);
                w.io(*io);
            }
            Response::Solved { slabs, io } => {
                w.u8(RESP_SOLVED);
                w.u32(slabs.len() as u32);
                for (slab, tuples) in slabs {
                    w.u32(*slab);
                    w.records(tuples);
                }
                w.io(*io);
            }
            Response::Breakpoint { hi, io } => {
                w.u8(RESP_BREAKPOINT);
                w.f64(*hi);
                w.io(*io);
            }
            Response::Evaluated { sums, io } => {
                w.u8(RESP_EVALUATED);
                w.u32(sums.len() as u32);
                for (shard, s) in sums {
                    w.u32(*shard);
                    w.f64s(s);
                }
                w.io(*io);
            }
            Response::Objects { objects, io } => {
                w.u8(RESP_OBJECTS);
                w.u32(objects.len() as u32);
                for (shard, records) in objects {
                    w.u32(*shard);
                    w.records(records);
                }
                w.io(*io);
            }
            Response::Error { message } => {
                w.u8(RESP_ERROR);
                w.str(message);
            }
        }
        w.buf
    }

    /// Decodes a reply message.
    pub fn decode(buf: &[u8]) -> WireResult<Response> {
        let mut r = Reader::new(buf);
        let resp = match r.u8()? {
            RESP_DESCRIBED => {
                let boundaries = r.f64s()?;
                let backend = r.str()?;
                let n = r.count(28)?;
                let shards = (0..n)
                    .map(|_| {
                        Ok(ShardInfo {
                            shard: r.u32()?,
                            len: r.u64()?,
                            prepare_io: r.io()?,
                        })
                    })
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Described {
                    boundaries,
                    backend,
                    shards,
                }
            }
            RESP_DISTRIBUTED => {
                let n = r.count(8)?;
                let spans = (0..n)
                    .map(|_| Ok((r.u32()?, r.records::<SpanEvent>()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Distributed {
                    spans,
                    exported: r.piece_sets()?,
                    io: r.io()?,
                }
            }
            RESP_SOLVED => {
                let n = r.count(8)?;
                let slabs = (0..n)
                    .map(|_| Ok((r.u32()?, r.records::<SlabTuple>()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Solved { slabs, io: r.io()? }
            }
            RESP_BREAKPOINT => Response::Breakpoint {
                hi: r.f64()?,
                io: r.io()?,
            },
            RESP_EVALUATED => {
                let n = r.count(8)?;
                let sums = (0..n)
                    .map(|_| Ok((r.u32()?, r.f64s()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Evaluated { sums, io: r.io()? }
            }
            RESP_OBJECTS => {
                let n = r.count(8)?;
                let objects = (0..n)
                    .map(|_| Ok((r.u32()?, r.records::<ObjectRecord>()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Objects {
                    objects,
                    io: r.io()?,
                }
            }
            RESP_ERROR => Response::Error { message: r.str()? },
            tag => return Err(WireError(format!("unknown response tag {tag}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    fn sample_pass() -> PassSpec {
        PassSpec {
            size: RectSize::new(3.0, 4.5),
            weight_scale: -1.0,
            root: Interval::new(f64::NEG_INFINITY, 7.25),
            bounds: vec![f64::NEG_INFINITY, -1.5, 0.0, 7.25],
            owners: vec![0, 1, 2],
            engaged: vec![0, 2, 3],
            suppressed: vec![Rect::new(0.0, 1.0, -2.0, 3.0)],
        }
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Describe);
        roundtrip_request(Request::FetchObjects);
        roundtrip_request(Request::Distribute(sample_pass()));
        roundtrip_request(Request::Solve {
            pass: sample_pass(),
            imported: vec![PieceSet {
                source: 3,
                slab: 1,
                rects: vec![RectRecord::new(Rect::new(-1.0, 0.5, 2.0, 4.0), 2.5)],
            }],
        });
        roundtrip_request(Request::Breakpoint {
            size: RectSize::square(2.0),
            root: Interval::UNBOUNDED,
            after_x: -3.75,
            suppressed: vec![],
        });
        roundtrip_request(Request::Evaluate {
            candidates: vec![Point::new(1.0, 2.0), Point::new(-0.5, 0.25)],
            diameter: 4.0,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Described {
            boundaries: vec![0.0, 10.0],
            backend: "sim".to_string(),
            shards: vec![ShardInfo {
                shard: 2,
                len: 1234,
                prepare_io: IoSnapshot {
                    reads: 10,
                    writes: 20,
                },
            }],
        });
        roundtrip_response(Response::Distributed {
            spans: vec![(1, SpanEvent::pair(0.5, 2.5, 3.0, 1, 4).to_vec())],
            exported: vec![PieceSet {
                source: 1,
                slab: 0,
                rects: vec![RectRecord::new(Rect::new(0.0, 1.0, 0.0, 1.0), 1.0)],
            }],
            io: IoSnapshot {
                reads: 7,
                writes: 0,
            },
        });
        roundtrip_response(Response::Solved {
            slabs: vec![
                (0, vec![SlabTuple::new(1.0, f64::NEG_INFINITY, 2.0, 5.0)]),
                (3, vec![]),
            ],
            io: IoSnapshot {
                reads: 1,
                writes: 2,
            },
        });
        roundtrip_response(Response::Breakpoint {
            hi: f64::INFINITY,
            io: IoSnapshot::default(),
        });
        roundtrip_response(Response::Evaluated {
            sums: vec![(0, vec![1.0, 2.0, 3.0, 4.0, 5.0])],
            io: IoSnapshot::default(),
        });
        roundtrip_response(Response::Objects {
            objects: vec![(1, vec![ObjectRecord::new(1.0, 2.0, 3.0)])],
            io: IoSnapshot::default(),
        });
        roundtrip_response(Response::Error {
            message: "boom".to_string(),
        });
    }

    #[test]
    fn malformed_messages_are_rejected_without_allocation() {
        // Unknown tag.
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        // Truncated body.
        let mut bytes = Request::Distribute(sample_pass()).encode();
        bytes.truncate(bytes.len() - 3);
        assert!(Request::decode(&bytes).is_err());
        // Trailing garbage.
        let mut bytes = Request::Describe.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // A count header claiming far more elements than the buffer holds.
        let mut w = Vec::new();
        w.push(5); // REQ_FETCH_OBJECTS is 5; craft an Evaluate instead:
        w.clear();
        w.push(4); // REQ_EVALUATE
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&w).is_err());
    }
}
