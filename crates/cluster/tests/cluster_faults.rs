//! Robustness tests: a dead, flaky or lying shard server must surface as a
//! **typed error within the timeout + retry budget** — never a hang, never a
//! silently wrong answer — under both the in-process and the TCP transport.
//! Also pins the health-state machine: consecutive failed requests cross the
//! failure threshold into fast-fail, and `revive` re-admits a recovered
//! server.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use maxrs_cluster::{
    partition_objects, serve_tcp, ClusterConfig, ClusterCoordinator, ClusterError,
    FaultInjectedTransport, InProcessTransport, InjectedFault, Request, Response, ShardHealth,
    ShardServer, TcpTransport, Transport, TransportError,
};
use maxrs_core::{EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query};
use maxrs_em::EmConfig;
use maxrs_geometry::{RectSize, WeightedPoint};

fn objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * 1000.0,
                next() * 1000.0,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

fn opts() -> EngineOptions {
    EngineOptions {
        em_config: EmConfig::new(512, 32 * 512).unwrap(),
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    }
}

fn fast_config() -> ClusterConfig {
    ClusterConfig {
        request_timeout: Duration::from_millis(500),
        retries: 2,
        backoff: Duration::from_millis(5),
        failure_threshold: 3,
    }
}

/// Two servers, two shards each.
fn two_servers(data: &[WeightedPoint]) -> Vec<ShardServer> {
    let (boundaries, parts) = partition_objects(data, 4, 8192);
    assert_eq!(parts.len(), 4);
    let mut alpha = ShardServer::new(opts(), boundaries.clone());
    alpha.host(0, &parts[0]).unwrap();
    alpha.host(1, &parts[1]).unwrap();
    let mut beta = ShardServer::new(opts(), boundaries);
    beta.host(2, &parts[2]).unwrap();
    beta.host(3, &parts[3]).unwrap();
    vec![alpha, beta]
}

/// A transport with a kill switch: healthy until flipped, then every attempt
/// reports the server unreachable (the in-process stand-in for a crashed
/// process).
struct KillableTransport {
    inner: InProcessTransport,
    dead: Arc<AtomicBool>,
    calls: Arc<AtomicU64>,
}

impl Transport for KillableTransport {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, request: &Request, timeout: Duration) -> Result<Response, TransportError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if self.dead.load(Ordering::SeqCst) {
            return Err(TransportError::Unavailable {
                detail: "killed".to_string(),
            });
        }
        self.inner.call(request, timeout)
    }
}

#[test]
fn killed_server_yields_typed_error_within_budget_in_process() {
    let data = objects(800, 5);
    let expected = MaxRsEngine::with_options(opts())
        .prepare(&data)
        .unwrap()
        .run(&Query::max_rs(RectSize::square(120.0)))
        .unwrap()
        .answer;

    let mut servers = two_servers(&data).into_iter();
    let alpha = servers.next().unwrap();
    let beta = servers.next().unwrap();
    let dead = Arc::new(AtomicBool::new(false));
    let calls = Arc::new(AtomicU64::new(0));
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(InProcessTransport::new("alpha", Arc::new(alpha))),
        Box::new(KillableTransport {
            inner: InProcessTransport::new("beta", Arc::new(beta)),
            dead: Arc::clone(&dead),
            calls: Arc::clone(&calls),
        }),
    ];
    let config = fast_config();
    let cluster = ClusterCoordinator::connect(opts(), config, transports).unwrap();

    // Healthy cluster answers correctly.
    let query = Query::max_rs(RectSize::square(120.0));
    assert_eq!(cluster.run(&query).unwrap().answer, expected);

    // Kill beta: the next query fails with the typed error naming the
    // server and its shards, after exactly the retry budget, with no hang.
    dead.store(true, Ordering::SeqCst);
    let before_calls = calls.load(Ordering::SeqCst);
    let t = Instant::now();
    let err = cluster.run(&query).unwrap_err();
    let elapsed = t.elapsed();
    match &err {
        ClusterError::ShardUnavailable {
            server,
            shards,
            attempts,
            detail,
        } => {
            assert_eq!(server, "beta");
            assert_eq!(shards, &vec![2, 3]);
            assert_eq!(*attempts, config.retries + 1);
            assert!(detail.contains("killed"), "detail: {detail}");
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "failure took {elapsed:?} — not within the timeout + retry budget"
    );
    // The failing request was attempted exactly retries + 1 times (the
    // fan-out may have been cut short before reaching beta for later
    // passes, so at least one full budget and no unbounded retrying).
    let spent = calls.load(Ordering::SeqCst) - before_calls;
    assert!(
        spent >= u64::from(config.retries + 1) && spent <= 4 * u64::from(config.retries + 1),
        "beta saw {spent} attempts"
    );

    // Two more failing queries cross the failure threshold: beta is dead,
    // and further queries fast-fail without touching the transport.
    for _ in 0..2 {
        assert!(matches!(
            cluster.run(&query),
            Err(ClusterError::ShardUnavailable { .. })
        ));
    }
    assert_eq!(
        cluster.health(),
        vec![
            ("alpha".to_string(), ShardHealth::Healthy),
            ("beta".to_string(), ShardHealth::Dead),
        ]
    );
    let before_calls = calls.load(Ordering::SeqCst);
    match cluster.run(&query).unwrap_err() {
        ClusterError::ShardUnavailable { attempts, .. } => assert_eq!(attempts, 0),
        other => panic!("expected fast-fail, got {other:?}"),
    }
    assert_eq!(
        calls.load(Ordering::SeqCst),
        before_calls,
        "dead server was contacted"
    );

    // Revive after recovery: answers are correct (and identical) again.
    dead.store(false, Ordering::SeqCst);
    assert!(cluster.revive("beta"));
    assert!(!cluster.revive("gamma"));
    assert_eq!(cluster.run(&query).unwrap().answer, expected);
    assert_eq!(
        cluster.health(),
        vec![
            ("alpha".to_string(), ShardHealth::Healthy),
            ("beta".to_string(), ShardHealth::Healthy),
        ]
    );
}

#[test]
fn killed_tcp_server_yields_typed_error_within_budget() {
    let data = objects(600, 9);
    let mut servers = two_servers(&data).into_iter();
    let alpha = servers.next().unwrap();
    let beta = servers.next().unwrap();

    let alpha_handle = serve_tcp(Arc::new(alpha), "127.0.0.1:0").unwrap();
    let beta_handle = serve_tcp(Arc::new(beta), "127.0.0.1:0").unwrap();
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(TcpTransport::new("alpha", alpha_handle.addr())),
        Box::new(TcpTransport::new("beta", beta_handle.addr())),
    ];
    let config = fast_config();
    let cluster = ClusterCoordinator::connect(opts(), config, transports).unwrap();

    let query = Query::max_rs(RectSize::square(120.0));
    let healthy = cluster.run(&query).unwrap();
    assert!(healthy.answer.best_weight() > 0.0);

    // Kill beta's process (drop stops the accept loop and closes the
    // listener): the query must fail typed, promptly.
    drop(beta_handle);
    let t = Instant::now();
    let err = cluster.run(&query).unwrap_err();
    let elapsed = t.elapsed();
    match &err {
        ClusterError::ShardUnavailable { server, shards, .. } => {
            assert_eq!(server, "beta");
            assert_eq!(shards, &vec![2, 3]);
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    // Budget: (retries + 1) connect failures (refused connections fail
    // fast) plus backoffs — generous slack for slow CI machines, but far
    // below anything resembling a hang.
    assert!(
        elapsed < Duration::from_secs(10),
        "TCP failure took {elapsed:?}"
    );
    drop(alpha_handle);
}

#[test]
fn flaky_server_recovers_within_the_retry_budget() {
    let data = objects(700, 13);
    let expected = MaxRsEngine::with_options(opts())
        .prepare(&data)
        .unwrap()
        .run(&Query::max_rs(RectSize::square(150.0)))
        .unwrap()
        .answer;

    let mut servers = two_servers(&data).into_iter();
    let alpha = servers.next().unwrap();
    let beta = servers.next().unwrap();
    // Beta's first two attempts fail; with retries = 2 the Describe
    // handshake still completes within its own budget (two injected
    // failures, then success on the third attempt).
    let flaky = FaultInjectedTransport::failing(
        InProcessTransport::new("beta", Arc::new(beta)),
        2,
        InjectedFault::Unavailable,
    );
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(InProcessTransport::new("alpha", Arc::new(alpha))),
        Box::new(flaky),
    ];
    let cluster = ClusterCoordinator::connect(opts(), fast_config(), transports).unwrap();
    let run = cluster
        .run(&Query::max_rs(RectSize::square(150.0)))
        .unwrap();
    assert_eq!(
        run.answer, expected,
        "flaky-but-recovering cluster must not lose answers"
    );
    assert_eq!(
        cluster.health(),
        vec![
            ("alpha".to_string(), ShardHealth::Healthy),
            ("beta".to_string(), ShardHealth::Healthy),
        ]
    );
}

#[test]
fn injected_timeouts_exhaust_the_budget_with_a_typeful_message() {
    let data = objects(500, 17);
    let mut servers = two_servers(&data).into_iter();
    let alpha = servers.next().unwrap();
    let beta = servers.next().unwrap();
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(InProcessTransport::new("alpha", Arc::new(alpha))),
        Box::new(FaultInjectedTransport::failing_forever(
            InProcessTransport::new("beta", Arc::new(beta)),
            InjectedFault::Timeout,
        )),
    ];
    // Connect already needs beta: the handshake itself fails typed (the
    // shard list is still unknown, but the server is named).
    let err = ClusterCoordinator::connect(opts(), fast_config(), transports).unwrap_err();
    match err {
        ClusterError::ShardUnavailable {
            server,
            attempts,
            detail,
            ..
        } => {
            assert_eq!(server, "beta");
            assert_eq!(attempts, fast_config().retries + 1);
            assert!(detail.contains("timed out"), "detail: {detail}");
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
}

/// A transport whose server "answers" every request with a request-level
/// error: these are deterministic, must surface as [`ClusterError::Remote`],
/// and must not be retried.
struct ErroringTransport {
    calls: Arc<AtomicU64>,
}

impl Transport for ErroringTransport {
    fn name(&self) -> &str {
        "liar"
    }

    fn call(&self, _request: &Request, _timeout: Duration) -> Result<Response, TransportError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        Ok(Response::Error {
            message: "disk on fire".to_string(),
        })
    }
}

#[test]
fn remote_errors_surface_once_and_are_not_retried() {
    let calls = Arc::new(AtomicU64::new(0));
    let transports: Vec<Box<dyn Transport>> = vec![Box::new(ErroringTransport {
        calls: Arc::clone(&calls),
    })];
    let err = ClusterCoordinator::connect(opts(), fast_config(), transports).unwrap_err();
    match err {
        ClusterError::Remote { server, detail } => {
            assert_eq!(server, "liar");
            assert!(detail.contains("disk on fire"));
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "remote errors must not be retried"
    );
}

#[test]
fn topology_violations_are_rejected_at_connect() {
    let data = objects(400, 21);
    let (boundaries, parts) = partition_objects(&data, 2, 8192);

    // A shard hosted nowhere.
    let mut lonely = ShardServer::new(opts(), boundaries.clone());
    lonely.host(0, &parts[0]).unwrap();
    let err = ClusterCoordinator::connect(
        opts(),
        fast_config(),
        vec![Box::new(InProcessTransport::new("lonely", Arc::new(lonely))) as Box<dyn Transport>],
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Topology { ref detail } if detail.contains("shard 1")),
        "got {err:?}"
    );

    // The same shard hosted twice.
    let mut a = ShardServer::new(opts(), boundaries.clone());
    a.host(0, &parts[0]).unwrap();
    a.host(1, &parts[1]).unwrap();
    let mut b = ShardServer::new(opts(), boundaries.clone());
    b.host(1, &parts[1]).unwrap();
    let err = ClusterCoordinator::connect(
        opts(),
        fast_config(),
        vec![
            Box::new(InProcessTransport::new("a", Arc::new(a))) as Box<dyn Transport>,
            Box::new(InProcessTransport::new("b", Arc::new(b))) as Box<dyn Transport>,
        ],
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Topology { ref detail } if detail.contains("hosted by both")),
        "got {err:?}"
    );

    // Disagreeing boundaries.
    let mut c = ShardServer::new(opts(), boundaries.clone());
    c.host(0, &parts[0]).unwrap();
    c.host(1, &parts[1]).unwrap();
    let mut d = ShardServer::new(opts(), vec![boundaries[0] + 1.0]);
    d.host(0, &[]).unwrap();
    let err = ClusterCoordinator::connect(
        opts(),
        fast_config(),
        vec![
            Box::new(InProcessTransport::new("c", Arc::new(c))) as Box<dyn Transport>,
            Box::new(InProcessTransport::new("d", Arc::new(d))) as Box<dyn Transport>,
        ],
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Topology { ref detail } if detail.contains("boundaries")),
        "got {err:?}"
    );
}
