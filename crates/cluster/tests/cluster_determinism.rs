//! Cluster-execution regression tests: a [`ClusterCoordinator`] must answer
//! **bit-identically** to the unsharded [`PreparedDataset`] — all four
//! [`Query`] variants, on the in-process transport and over real TCP
//! loopback, on both storage backends, with rectangles wider than a whole
//! shard (so answers cross server boundaries through the exported-piece and
//! span-event decomposition) and tie-heavy data whose x-coordinates sit
//! exactly on shard boundaries.  Degenerate shapes are pinned too: K = 1
//! equals the single prepared dataset, one server hosting every shard
//! equals the single-machine [`ShardedDataset`], empty datasets and
//! tie-collapsed (empty) shards answer like the unsharded pipeline.  The
//! aggregated `IoSnapshot` of a cluster query is invariant across server
//! topologies, transports and storage backends.

use std::sync::Arc;
use std::time::Duration;

use maxrs_cluster::{
    partition_objects, serve_tcp, ClusterConfig, ClusterCoordinator, InProcessTransport,
    ShardServer, TcpServerHandle, TcpTransport, Transport,
};
use maxrs_core::{
    EngineOptions, ExactMaxRsOptions, MaxRsEngine, PreparedDataset, Query, ShardLayout,
};
use maxrs_em::{EmConfig, IoSnapshot, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// Coordinates snapped to a coarse grid: heavy duplicate mass on x, so shard
/// boundaries (quantiles of those x-values) coincide exactly with object
/// coordinates and rectangle edges.
fn tie_heavy_objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = (next() * 40.0).floor() * 25.0;
            let y = (next() * 40.0).floor() * 25.0;
            let w = if i % 5 == 0 {
                0.0
            } else {
                1.0 + (next() * 3.0).floor()
            };
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

fn options_with(backend: StorageBackend) -> EngineOptions {
    EngineOptions {
        em_config: EmConfig::new(512, 32 * 512).unwrap().with_backend(backend),
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    }
}

/// No backoff sleeps in tests: retries (when a test injects faults) are
/// immediate, and healthy paths never sleep anyway.
fn test_config() -> ClusterConfig {
    ClusterConfig {
        backoff: Duration::ZERO,
        ..Default::default()
    }
}

/// Splits `objects` into `k` shards and hosts them round-robin on
/// `num_servers` servers (capped at the actual shard count).
fn build_servers(
    opts: EngineOptions,
    objects: &[WeightedPoint],
    k: usize,
    num_servers: usize,
) -> Vec<ShardServer> {
    let (boundaries, parts) = partition_objects(objects, k, 8192);
    let num_servers = num_servers.min(parts.len()).max(1);
    let mut servers: Vec<ShardServer> = (0..num_servers)
        .map(|_| ShardServer::new(opts, boundaries.clone()))
        .collect();
    for (i, part) in parts.iter().enumerate() {
        servers[i % num_servers].host(i, part).unwrap();
    }
    servers
}

fn in_process_cluster(
    opts: EngineOptions,
    objects: &[WeightedPoint],
    k: usize,
    num_servers: usize,
) -> ClusterCoordinator {
    let transports: Vec<Box<dyn Transport>> = build_servers(opts, objects, k, num_servers)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            Box::new(InProcessTransport::new(format!("srv{i}"), Arc::new(s))) as Box<dyn Transport>
        })
        .collect();
    ClusterCoordinator::connect(opts, test_config(), transports).unwrap()
}

fn tcp_cluster(
    opts: EngineOptions,
    objects: &[WeightedPoint],
    k: usize,
    num_servers: usize,
) -> (ClusterCoordinator, Vec<TcpServerHandle>) {
    let mut handles = Vec::new();
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    for (i, server) in build_servers(opts, objects, k, num_servers)
        .into_iter()
        .enumerate()
    {
        let handle = serve_tcp(Arc::new(server), "127.0.0.1:0").unwrap();
        transports.push(Box::new(TcpTransport::new(
            format!("srv{i}"),
            handle.addr(),
        )));
        handles.push(handle);
    }
    let cluster = ClusterCoordinator::connect(opts, test_config(), transports).unwrap();
    (cluster, handles)
}

/// All four variants at a size comparable to a shard's width plus a second
/// set at a size **wider than any shard**, so optimal placements straddle
/// boundaries (and servers).
fn variant_queries(extent: f64) -> Vec<Query> {
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    let narrow = Rect::new(0.05 * extent, 0.2 * extent, 0.2 * extent, 0.7 * extent);
    vec![
        Query::max_rs(RectSize::square(0.12 * extent)),
        Query::top_k(RectSize::square(0.12 * extent), 3),
        Query::min_rs(RectSize::square(0.12 * extent), domain),
        Query::approx_max_crs(0.12 * extent),
        Query::max_rs(RectSize::square(0.4 * extent)),
        Query::top_k(RectSize::square(0.4 * extent), 2),
        Query::min_rs(RectSize::square(0.4 * extent), narrow),
        Query::approx_max_crs(0.4 * extent),
    ]
}

fn assert_cluster_matches(
    cluster: &ClusterCoordinator,
    prepared: &PreparedDataset<'_>,
    queries: &[Query],
    tag: &str,
) {
    for query in queries {
        assert_eq!(
            cluster.run(query).unwrap().answer,
            prepared.run(query).unwrap().answer,
            "{tag}: cluster {} diverged from unsharded run",
            query.name()
        );
    }
    let cluster_runs = cluster.run_batch(queries).unwrap();
    let unsharded_runs = prepared.run_batch(queries).unwrap();
    for ((query, c), u) in queries.iter().zip(&cluster_runs).zip(&unsharded_runs) {
        assert_eq!(
            c.answer,
            u.answer,
            "{tag}: cluster {} diverged from unsharded batch",
            query.name()
        );
    }
}

#[test]
fn in_process_cluster_is_bit_identical_on_both_backends() {
    let extent = 1000.0;
    let queries = variant_queries(extent);
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let opts = options_with(backend);
        let objects = pseudo_random_objects(1800, 11, extent);
        let prepared = MaxRsEngine::with_options(opts).prepare(&objects).unwrap();
        assert!(prepared.is_external());
        for (k, servers) in [(1usize, 1usize), (2, 2), (7, 3)] {
            let cluster = in_process_cluster(opts, &objects, k, servers);
            assert_eq!(cluster.num_shards(), k);
            assert_eq!(cluster.len(), prepared.len());
            assert_cluster_matches(
                &cluster,
                &prepared,
                &queries,
                &format!("{} K={k} servers={servers}", backend.name()),
            );
        }
    }
}

#[test]
fn tcp_loopback_cluster_is_bit_identical_on_both_backends() {
    let extent = 1000.0;
    let queries = variant_queries(extent);
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let opts = options_with(backend);
        let objects = pseudo_random_objects(1200, 23, extent);
        let prepared = MaxRsEngine::with_options(opts).prepare(&objects).unwrap();
        let (cluster, _handles) = tcp_cluster(opts, &objects, 5, 3);
        assert_eq!(cluster.num_servers(), 3);
        assert_eq!(cluster.backend_name(), backend.name());
        assert_cluster_matches(
            &cluster,
            &prepared,
            &queries,
            &format!("tcp {} K=5", backend.name()),
        );
    }
}

#[test]
fn cluster_is_bit_identical_on_tie_heavy_data() {
    let objects = tie_heavy_objects(2400, 7);
    let opts = options_with(StorageBackend::Sim);
    let prepared = MaxRsEngine::with_options(opts).prepare(&objects).unwrap();
    let queries = variant_queries(1000.0);
    for (k, servers) in [(2usize, 2usize), (7, 3)] {
        let cluster = in_process_cluster(opts, &objects, k, servers);
        assert_cluster_matches(
            &cluster,
            &prepared,
            &queries,
            &format!("tie-heavy K={k} servers={servers}"),
        );
    }
}

#[test]
fn one_server_hosting_every_shard_matches_the_sharded_dataset() {
    let extent = 1000.0;
    let objects = pseudo_random_objects(1500, 31, extent);
    let opts = options_with(StorageBackend::Sim);
    let engine = MaxRsEngine::with_options(opts);
    let sharded = engine
        .prepare_sharded(&objects, &ShardLayout::new(4))
        .unwrap();
    let cluster = in_process_cluster(opts, &objects, 4, 1);
    assert_eq!(cluster.num_servers(), 1);
    assert_eq!(cluster.num_shards(), sharded.num_shards());
    assert_eq!(cluster.len(), sharded.len());
    for query in variant_queries(extent) {
        assert_eq!(
            cluster.run(&query).unwrap().answer,
            sharded.run(&query).unwrap().answer,
            "single-server cluster {} diverged from ShardedDataset",
            query.name()
        );
        assert_eq!(
            cluster.shards_touched(&query),
            sharded.shards_touched(&query),
            "{}: routing diverged",
            query.name()
        );
    }
}

#[test]
fn k1_cluster_matches_the_single_prepared_dataset() {
    let extent = 1000.0;
    let objects = pseudo_random_objects(900, 41, extent);
    let opts = options_with(StorageBackend::Sim);
    let prepared = MaxRsEngine::with_options(opts).prepare(&objects).unwrap();
    let cluster = in_process_cluster(opts, &objects, 1, 1);
    assert_eq!(cluster.num_shards(), 1);
    assert_cluster_matches(&cluster, &prepared, &variant_queries(extent), "K=1");
}

#[test]
fn empty_datasets_and_tie_collapsed_shards_answer_like_the_unsharded_pipeline() {
    let opts = options_with(StorageBackend::Sim);
    let queries = variant_queries(1000.0);

    // A completely empty cluster.
    let empty = in_process_cluster(opts, &[], 3, 2);
    assert!(empty.is_empty());
    let prepared_empty = MaxRsEngine::with_options(opts).prepare(&[]).unwrap();
    assert_cluster_matches(&empty, &prepared_empty, &queries, "empty");

    // All mass on two x-columns with hand-picked boundaries carving out
    // interior shards that hold **no objects** — the shape quantile
    // selection collapses into when x-ties swallow boundaries.  The
    // cluster must still cover every slab (empty shards included) and
    // answer identically.
    let two_columns: Vec<WeightedPoint> = (0..600)
        .map(|i| {
            let x = if i % 2 == 0 { 100.0 } else { 900.0 };
            WeightedPoint::at(x, (i % 37) as f64 * 27.0, 1.0 + (i % 3) as f64)
        })
        .collect();
    let boundaries = vec![200.0, 500.0, 800.0];
    let mut parts: Vec<Vec<WeightedPoint>> = (0..4).map(|_| Vec::new()).collect();
    for o in &two_columns {
        parts[boundaries.partition_point(|&b| b <= o.point.x)].push(*o);
    }
    assert!(parts[1].is_empty() && parts[2].is_empty());
    let mut alpha = ShardServer::new(opts, boundaries.clone());
    alpha.host(0, &parts[0]).unwrap();
    alpha.host(2, &parts[2]).unwrap();
    let mut beta = ShardServer::new(opts, boundaries);
    beta.host(1, &parts[1]).unwrap();
    beta.host(3, &parts[3]).unwrap();
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(InProcessTransport::new("alpha", Arc::new(alpha))),
        Box::new(InProcessTransport::new("beta", Arc::new(beta))),
    ];
    let cluster = ClusterCoordinator::connect(opts, test_config(), transports).unwrap();
    assert_eq!(cluster.num_shards(), 4);
    assert_eq!(cluster.shard_lens(), vec![300, 0, 0, 300]);
    let prepared = MaxRsEngine::with_options(opts)
        .prepare(&two_columns)
        .unwrap();
    assert_cluster_matches(&cluster, &prepared, &queries, "empty-shards");
}

#[test]
fn io_snapshot_is_invariant_across_topology_transport_and_backend() {
    let extent = 1000.0;
    let objects = pseudo_random_objects(1400, 53, extent);
    let queries = variant_queries(extent);

    let runs = |cluster: &ClusterCoordinator| -> Vec<IoSnapshot> {
        queries.iter().map(|q| cluster.run(q).unwrap().io).collect()
    };

    let opts = options_with(StorageBackend::Sim);
    let reference = runs(&in_process_cluster(opts, &objects, 6, 1));
    assert!(
        reference.iter().any(|io| io.total() > 0),
        "cluster queries must report I/O"
    );

    // Same shards spread over more servers: identical logical transfers.
    for servers in [2usize, 3, 6] {
        let spread = runs(&in_process_cluster(opts, &objects, 6, servers));
        assert_eq!(
            reference, spread,
            "topology changed the I/O ({servers} servers)"
        );
    }

    // Same topology over TCP loopback: the transport moves bytes, not
    // blocks — the snapshot must not change.
    let (tcp, _handles) = tcp_cluster(opts, &objects, 6, 3);
    assert_eq!(reference, runs(&tcp), "TCP changed the I/O");

    // Same cluster on the filesystem backend: logical I/O is
    // backend-invariant.
    let fs = runs(&in_process_cluster(
        options_with(StorageBackend::Fs),
        &objects,
        6,
        3,
    ));
    assert_eq!(reference, fs, "backend changed the I/O");
}
