//! The serving layer's correctness contract: answers returned through the
//! concurrent micro-batching server are **bit-identical** to sequential
//! [`PreparedDataset::run`] calls on the same datasets — under ≥ 8 racing
//! client threads submitting interleaved mixed-variant queries, on both
//! storage backends, over pseudo-random, tie-heavy and all-zero-weight data.
//!
//! Weights are integer-valued throughout, so shared-sweep accumulation is
//! associative and the bit-identical guarantee of [`maxrs_core::batch`]
//! applies regardless of how the scheduler groups strangers' queries.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use maxrs_core::{EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query, QueryAnswer};
use maxrs_em::{EmConfig, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};
use maxrs_serve::{DatasetRegistry, MaxRsServer, OverloadPolicy, ServeConfig};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 12;

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// Coordinates snapped to a coarse grid (heavy x/y ties) with a zero weight
/// every fifth object: the inputs where tie-breaking actually matters.
fn tie_heavy_objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = (next() * 40.0).floor() * 25.0;
            let y = (next() * 40.0).floor() * 25.0;
            let w = if i % 5 == 0 {
                0.0
            } else {
                1.0 + (next() * 3.0).floor()
            };
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

/// A small-buffer engine under which a few thousand objects are genuinely
/// external, on the given backend.
fn external_engine(backend: StorageBackend) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: EmConfig::new(512, 32 * 512).unwrap().with_backend(backend),
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// The mixed-variant query pool every client draws from: all four variants,
/// two rectangle sizes, two MinRS domains sharing an x-slab.
fn query_pool(extent: f64) -> Vec<Query> {
    let size = RectSize::square(0.12 * extent);
    let other = RectSize::square(0.26 * extent);
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    let narrow = Rect::new(0.1 * extent, 0.9 * extent, 0.3 * extent, 0.6 * extent);
    vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::approx_max_crs(size.width),
        Query::min_rs(size, domain),
        Query::max_rs(other),
        Query::min_rs(size, narrow),
        Query::top_k(size, 1),
    ]
}

/// One client's deterministic workload: dataset ids and queries interleaved
/// differently per client, with the expected answer computed sequentially
/// through [`PreparedDataset::run`] before the server ever sees a query.
type Workload = Vec<(String, Query, QueryAnswer)>;

fn build_workloads(registry: &DatasetRegistry, datasets: &[(&str, f64)]) -> Vec<Workload> {
    (0..CLIENTS)
        .map(|client| {
            (0..QUERIES_PER_CLIENT)
                .map(|j| {
                    let (id, extent) = datasets[(client + j) % datasets.len()];
                    let pool = query_pool(extent);
                    let query = pool[(client * 3 + j * 5) % pool.len()];
                    let expected = registry.get(id).unwrap().run(&query).unwrap().answer;
                    (id.to_string(), query, expected)
                })
                .collect()
        })
        .collect()
}

/// Runs the full workload through a server and checks every response against
/// the sequential expectation, bit for bit.
fn assert_concurrent_matches_sequential(
    registry: Arc<DatasetRegistry>,
    workloads: Vec<Workload>,
    config: ServeConfig,
    tag: &str,
) {
    let total: u64 = workloads.iter().map(|w| w.len() as u64).sum();
    let server = Arc::new(MaxRsServer::start(registry, config).unwrap());
    let barrier = Arc::new(Barrier::new(workloads.len()));
    let clients: Vec<_> = workloads
        .into_iter()
        .enumerate()
        .map(|(client, workload)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Submit the whole workload first so queries from different
                // clients genuinely coexist in the batching window, then
                // collect the replies.
                let tickets: Vec<_> = workload
                    .iter()
                    .map(|(id, query, _)| server.submit(id, *query).unwrap())
                    .collect();
                for (ticket, (id, query, expected)) in tickets.into_iter().zip(&workload) {
                    let response = ticket.wait().unwrap();
                    assert_eq!(
                        &response.query, query,
                        "client {client}: response wired to the wrong query"
                    );
                    assert_eq!(
                        &response.run.answer,
                        expected,
                        "client {client}: {} on {id} diverged from sequential run",
                        query.name()
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, total, "{tag}: admissions");
    assert_eq!(stats.completed, total, "{tag}: every query answered");
    assert_eq!(stats.shed, 0, "{tag}: nothing shed at this capacity");
    assert_eq!(
        stats.batched_queries, total,
        "{tag}: every admitted query rode exactly one batch"
    );
    server.shutdown();
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        window: Duration::from_millis(3),
        max_batch: 8,
        workers: 3,
        queue_capacity: CLIENTS * QUERIES_PER_CLIENT,
        overload: OverloadPolicy::Block,
    }
}

#[test]
fn concurrent_answers_are_bit_identical_on_both_backends() {
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let registry = Arc::new(DatasetRegistry::new(external_engine(backend)));
        let datasets: [(&str, f64); 2] = [("random", 1000.0), ("ties", 1000.0)];
        registry
            .insert("random", &pseudo_random_objects(2500, 11, 1000.0))
            .unwrap();
        registry
            .insert("ties", &tie_heavy_objects(2000, 7))
            .unwrap();
        assert!(registry.get("random").unwrap().is_external());

        let workloads = build_workloads(&registry, &datasets);
        assert_concurrent_matches_sequential(registry, workloads, serve_config(), backend.name());
    }
}

#[test]
fn concurrent_answers_are_bit_identical_on_zero_weight_data() {
    // All-zero weights: MaxRS reports a zero-weight cell and top-k cuts off
    // before its first round; the served answers must agree bit for bit.
    let zeros: Vec<WeightedPoint> = pseudo_random_objects(1500, 3, 500.0)
        .into_iter()
        .map(|o| WeightedPoint::at(o.point.x, o.point.y, 0.0))
        .collect();
    let registry = Arc::new(DatasetRegistry::new(external_engine(StorageBackend::Sim)));
    registry.insert("zeros", &zeros).unwrap();

    let workloads = build_workloads(&registry, &[("zeros", 500.0)]);
    let sample = workloads[0][0].2.clone();
    assert_concurrent_matches_sequential(registry, workloads, serve_config(), "zero-weight");
    // Sanity: the expectation itself is the degenerate zero-weight answer,
    // so the equality above was not vacuous about tie handling.
    assert_eq!(sample.best_weight(), 0.0);
}

#[test]
fn concurrent_updates_serve_exactly_one_of_the_legal_snapshots() {
    use maxrs_core::{CompactionPolicy, DeltaDataset, DeltaOptions, Event};

    // Clients race a writer that streams update batches (with background
    // policy-triggered compaction) into the same dataset id.  The update path
    // swaps immutable snapshots, so the only legal replies for a query are
    // its answers on the snapshot sequence S0 (seed), S1, … Sk (after batch
    // k) — computed here by an independent sequential replay.  Every reply
    // must match one of them bit for bit; none may be lost or torn.
    let backend = StorageBackend::Sim;
    let options = DeltaOptions {
        policy: CompactionPolicy::DeltaThreshold { max_delta: 150 },
        window: None,
    };
    let seed_events: Vec<Event> = pseudo_random_objects(1500, 23, 1000.0)
        .iter()
        .enumerate()
        .map(|(i, o)| Event::insert(i as u64, o.point.x, o.point.y, o.weight, i as f64))
        .collect();
    let batches: Vec<Vec<Event>> = (0..6u64)
        .map(|b| {
            let t0 = 10_000.0 + 1000.0 * b as f64;
            let mut batch: Vec<Event> = (0..60)
                .map(|i| Event::delete(b * 60 + i, t0 + i as f64))
                .collect();
            batch.extend(
                pseudo_random_objects(60, 100 + b, 1000.0)
                    .iter()
                    .enumerate()
                    .map(|(i, o)| {
                        let id = 10_000 + b * 60 + i as u64;
                        Event::insert(id, o.point.x, o.point.y, o.weight, t0 + 100.0 + i as f64)
                    }),
            );
            batch
        })
        .collect();

    // The legal answer per query and checkpoint, by sequential replay.
    let pool = [
        Query::max_rs(RectSize::square(120.0)),
        Query::top_k(RectSize::square(120.0), 2),
        Query::min_rs(
            RectSize::square(120.0),
            Rect::new(100.0, 900.0, 100.0, 900.0),
        ),
    ];
    let engine = external_engine(backend);
    let mut replay = DeltaDataset::new(&engine, options).unwrap();
    replay.apply(&seed_events).unwrap();
    let mut legal: Vec<Vec<QueryAnswer>> =
        vec![pool.iter().map(|q| replay.run(q).unwrap().answer).collect()];
    for batch in &batches {
        replay.apply(batch).unwrap();
        legal.push(pool.iter().map(|q| replay.run(q).unwrap().answer).collect());
    }
    // The scenario genuinely exercises background compaction: the registry's
    // delta follows the identical deterministic policy as this replay.
    assert!(replay.compactions() >= 1, "threshold never fired");

    let registry = Arc::new(DatasetRegistry::new(external_engine(backend)));
    registry
        .insert_dynamic("live", &seed_events, options)
        .unwrap();
    let server = Arc::new(MaxRsServer::start(Arc::clone(&registry), serve_config()).unwrap());

    let writer = {
        let registry = Arc::clone(&registry);
        let batches = batches.clone();
        std::thread::spawn(move || {
            for batch in &batches {
                registry.apply("live", batch).unwrap();
            }
        })
    };
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let server = Arc::clone(&server);
            let legal = legal.clone();
            let pool = pool.to_vec();
            std::thread::spawn(move || {
                for j in 0..QUERIES_PER_CLIENT {
                    let qi = (client + j) % pool.len();
                    let response = server.submit("live", pool[qi]).unwrap().wait().unwrap();
                    let matched = legal
                        .iter()
                        .filter(|c| c[qi] == response.run.answer)
                        .count();
                    assert!(
                        matched > 0,
                        "client {client}: {} reply matches no legal snapshot",
                        pool[qi].name()
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    writer.join().unwrap();

    // After the writer finishes, the served snapshot is exactly S_final.
    for (qi, query) in pool.iter().enumerate() {
        let response = server.submit("live", *query).unwrap().wait().unwrap();
        assert_eq!(
            response.run.answer,
            legal.last().unwrap()[qi],
            "quiescent reply must come from the final snapshot"
        );
    }
    let stats = server.stats();
    let total = (CLIENTS * QUERIES_PER_CLIENT + pool.len()) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total, "no reply lost under updates");
    server.shutdown();
}

#[test]
fn pass_through_server_matches_sequential_too() {
    // max_batch = 1 degenerates to per-query execution through the same
    // scheduler machinery: a cheap cross-check that batching itself is the
    // only thing the window/threshold knobs change.
    let registry = Arc::new(DatasetRegistry::new(external_engine(StorageBackend::Sim)));
    registry
        .insert("random", &pseudo_random_objects(2000, 19, 1000.0))
        .unwrap();
    let workloads = build_workloads(&registry, &[("random", 1000.0)]);
    let config = ServeConfig {
        max_batch: 1,
        ..serve_config()
    };
    assert_concurrent_matches_sequential(registry, workloads, config, "pass-through");
}
