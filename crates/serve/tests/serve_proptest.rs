//! Scheduler property tests: across random configurations, submission
//! timings and shutdown points, the serving layer never loses, duplicates or
//! reorders a client's queries, and every admitted query gets **exactly one**
//! reply — also when the server is shut down while busy, and under overload
//! shedding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use maxrs_core::{MaxRsEngine, Query};
use maxrs_geometry::{RectSize, WeightedPoint};
use maxrs_serve::{
    DatasetRegistry, MaxRsServer, MicroBatcher, OverloadPolicy, ServeConfig, ServeError,
};
use proptest::prelude::*;

/// A tiny in-memory dataset (fast per-query execution, so the property loop
/// stays cheap): three unit points, two of them close together.
fn tiny_registry() -> Arc<DatasetRegistry> {
    let registry = Arc::new(DatasetRegistry::new(MaxRsEngine::new()));
    let objects = vec![
        WeightedPoint::unit(1.0, 1.0),
        WeightedPoint::unit(1.4, 1.2),
        WeightedPoint::unit(6.0, 6.0),
    ];
    registry.insert("tiny", &objects).unwrap();
    registry
}

/// A distinct query per (client, sequence-index): the echoed query in the
/// response proves replies are never cross-wired between clients.
fn client_query(client: usize, index: usize) -> Query {
    Query::max_rs(RectSize::square(
        1.0 + client as f64 * 0.01 + index as f64 * 0.001,
    ))
}

proptest! {
    /// Pure batcher: concatenating every flushed batch (submit-triggered,
    /// poll-triggered and the final drain) reproduces the submission sequence
    /// exactly — nothing lost, nothing duplicated, nothing reordered — for
    /// any window, any size threshold, any clock gaps, any poll
    /// interleaving.  Every flushed batch respects the size threshold and is
    /// non-empty.
    #[test]
    fn batcher_flushes_partition_the_submission_sequence(
        window in 0u64..5_000,
        max_batch in 1usize..9,
        ops in prop::collection::vec((0u64..2_000, 0u32..3), 1..80),
    ) {
        let mut batcher = MicroBatcher::new(window, max_batch);
        let mut clock = 0u64;
        let mut submitted = 0u32;
        let mut flushed: Vec<u32> = Vec::new();
        let record = |batch: Vec<u32>, flushed: &mut Vec<u32>| {
            prop_assert!(!batch.is_empty(), "an empty batch must never flush");
            prop_assert!(batch.len() <= max_batch, "size threshold exceeded");
            flushed.extend(batch);
        };
        for (gap, kind) in ops {
            clock += gap;
            if kind == 0 {
                // A flush tick at the current clock.
                if let Some(batch) = batcher.poll(clock) {
                    record(batch, &mut flushed);
                }
            } else {
                // A submission (twice as likely as a poll).
                if let Some(batch) = batcher.submit(submitted, clock) {
                    record(batch, &mut flushed);
                }
                submitted += 1;
            }
        }
        if let Some(batch) = batcher.drain() {
            record(batch, &mut flushed);
        }
        prop_assert!(batcher.is_empty(), "drain left residue behind");
        let expected: Vec<u32> = (0..submitted).collect();
        prop_assert_eq!(
            flushed, expected,
            "flushes must partition the submission sequence in order"
        );
    }

    /// `poll` flushes exactly at `next_deadline`, never one tick before, for
    /// any submission instant and window.
    #[test]
    fn poll_agrees_with_next_deadline(
        window in 0u64..100_000,
        at in 0u64..1_000_000,
    ) {
        let mut batcher = MicroBatcher::new(window, 64);
        match batcher.submit(1u8, at) {
            Some(batch) => {
                // Zero-length window: pass-through, nothing left pending.
                prop_assert_eq!(window, 0);
                prop_assert_eq!(batch, vec![1u8]);
                prop_assert!(batcher.is_empty());
            }
            None => {
                let deadline = batcher.next_deadline().expect("entry pending");
                if deadline > 0 {
                    prop_assert_eq!(batcher.poll(deadline - 1), None);
                }
                prop_assert_eq!(batcher.poll(deadline), Some(vec![1u8]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Threaded scheduler: under a random configuration (pool size,
    /// thresholds, overload policy) with a shutdown racing the submissions,
    /// every submission resolves to exactly one of {admitted, shed,
    /// refused-at-shutdown}, and every *admitted* query receives exactly one
    /// reply carrying its own query back — no reply lost to the shutdown,
    /// none duplicated, and each client sees its replies in submission
    /// order.
    #[test]
    fn exactly_one_reply_per_admitted_query_under_shutdown_and_overload(
        workers in 1usize..4,
        max_batch in 1usize..7,
        window_micros in 0u64..1_500,
        queue_capacity in 1usize..12,
        shed in any::<bool>(),
        shutdown_after_micros in 0u64..2_000,
    ) {
        const CLIENTS: usize = 4;
        const PER_CLIENT: usize = 8;
        let config = ServeConfig {
            window: Duration::from_micros(window_micros),
            max_batch,
            workers,
            queue_capacity,
            overload: if shed { OverloadPolicy::Shed } else { OverloadPolicy::Block },
        };
        let registry = tiny_registry();
        let expected: Vec<Vec<_>> = (0..CLIENTS)
            .map(|c| {
                (0..PER_CLIENT)
                    .map(|i| {
                        let query = client_query(c, i);
                        let handle = registry.get("tiny").unwrap();
                        (query, handle.run(&query).unwrap().answer)
                    })
                    .collect()
            })
            .collect();

        let server = Arc::new(MaxRsServer::start(registry, config).unwrap());
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let admitted_total = Arc::new(AtomicU64::new(0));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                let admitted_total = Arc::clone(&admitted_total);
                let workload = expected[c].clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut tickets = Vec::new();
                    for (query, answer) in workload {
                        match server.submit("tiny", query) {
                            Ok(ticket) => tickets.push((ticket, query, answer)),
                            Err(ServeError::Overloaded | ServeError::ShuttingDown) => {}
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                    }
                    admitted_total.fetch_add(tickets.len() as u64, Ordering::Relaxed);
                    for (ticket, query, answer) in tickets {
                        // Exactly one reply: `wait` consumes the one-shot
                        // channel, and it must carry this client's query.
                        let response = ticket.wait().expect("admitted query must be answered");
                        assert_eq!(response.query, query, "reply cross-wired");
                        assert_eq!(response.run.answer, answer, "answer diverged");
                    }
                })
            })
            .collect();

        // Race a shutdown against the submissions.
        barrier.wait();
        std::thread::sleep(Duration::from_micros(shutdown_after_micros));
        server.shutdown();
        for client in clients {
            client.join().unwrap();
        }

        let stats = server.stats();
        let attempts = (CLIENTS * PER_CLIENT) as u64;
        let admitted = admitted_total.load(Ordering::Relaxed);
        prop_assert_eq!(stats.submitted, admitted, "admission counter drifted");
        prop_assert_eq!(
            stats.completed, admitted,
            "every admitted query must be answered, even across shutdown"
        );
        prop_assert_eq!(
            stats.batched_queries, admitted,
            "every admitted query rides exactly one flushed batch"
        );
        if shed {
            prop_assert!(
                admitted + stats.shed <= attempts,
                "shed + admitted cannot exceed attempts"
            );
        } else {
            prop_assert_eq!(stats.shed, 0, "block policy never sheds");
        }
    }
}
