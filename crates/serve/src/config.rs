//! Server configuration: batching window, thresholds, worker pool and
//! admission control.

use std::time::Duration;

use maxrs_core::CoreError;

use crate::error::{Result, ServeError};

/// What [`MaxRsServer::submit`](crate::MaxRsServer::submit) does when the
/// bounded submission queue is full (the queue has outrun the worker pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the query immediately with [`ServeError::Overloaded`] (load
    /// shedding): latency stays bounded, throughput is capped by the workers.
    Shed,
    /// Block the submitting thread until a slot frees up (backpressure): no
    /// query is lost, the *client* slows down instead.  A blocked submitter
    /// is released with [`ServeError::ShuttingDown`] if the server drains
    /// while it waits.
    Block,
}

/// Configuration of a [`MaxRsServer`](crate::MaxRsServer).
///
/// The two batching knobs implement the dynamic micro-batching rule:
/// a pending micro-batch is flushed to the workers as soon as **either** it
/// holds [`max_batch`](ServeConfig::max_batch) queries **or** its oldest
/// query has waited [`window`](ServeConfig::window) — whichever comes first.
/// A zero window degenerates to pass-through (every submission flushes
/// immediately); a `max_batch` of 1 does the same by the size rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum time a submitted query may wait for strangers to share a sweep
    /// with before its batch is flushed regardless of size.  This bounds the
    /// batching-induced latency: worst-case added latency is one `window`
    /// plus queueing.
    pub window: Duration,
    /// Size threshold: a pending batch of this many queries flushes
    /// immediately.  Must be at least 1.
    pub max_batch: usize,
    /// Worker threads executing flushed batches concurrently.  Must be at
    /// least 1.
    pub workers: usize,
    /// Bound on admitted-but-unanswered queries (pending + executing).  When
    /// reached, [`overload`](ServeConfig::overload) decides between shedding
    /// and blocking.  Must be at least 1.
    pub queue_capacity: usize,
    /// What to do when `queue_capacity` is reached.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    /// A 2 ms window, batches of up to 16, a worker pool bounded by the
    /// available cores (at most 4), room for 1024 in-flight queries, and
    /// load shedding.
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServeConfig {
            window: Duration::from_millis(2),
            max_batch: 16,
            workers: cores.clamp(1, 4),
            queue_capacity: 1024,
            overload: OverloadPolicy::Shed,
        }
    }
}

impl ServeConfig {
    /// Checks the configuration, rejecting zero thresholds that would make
    /// the scheduler degenerate (a batch that can never fill, a pool with no
    /// workers, a queue that admits nothing).
    pub fn validate(&self) -> Result<()> {
        let reject = |what: &str| {
            Err(ServeError::Core(CoreError::InvalidParameter(format!(
                "{what} must be at least 1"
            ))))
        };
        if self.max_batch == 0 {
            return reject("max_batch");
        }
        if self.workers == 0 {
            return reject("workers");
        }
        if self.queue_capacity == 0 {
            return reject("queue_capacity");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let config = ServeConfig::default();
        assert!(config.validate().is_ok());
        assert!(config.workers >= 1);
        assert_eq!(config.overload, OverloadPolicy::Shed);
    }

    #[test]
    fn zero_thresholds_are_rejected() {
        for bad in [
            ServeConfig {
                max_batch: 0,
                ..Default::default()
            },
            ServeConfig {
                workers: 0,
                ..Default::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                bad.validate(),
                Err(ServeError::Core(CoreError::InvalidParameter(_)))
            ));
        }
    }
}
