//! [`DatasetRegistry`]: a cache of [`PreparedDataset`]s keyed by dataset id.
//!
//! A long-lived server answers queries against many datasets, and preparing
//! one (the external x-sort) is exactly the cost
//! [`MaxRsEngine::prepare`] exists to amortize.  The registry caches prepared
//! datasets behind ref-counted handles so concurrent batches share one
//! preparation, and it enforces a configurable memory budget with LRU
//! eviction: when the retained footprint
//! ([`PreparedDataset::resident_bytes`]) of the cached datasets exceeds the
//! budget, the least-recently-used entries are dropped from the cache.
//!
//! Eviction never invalidates in-flight work: a [`DatasetHandle`] is an
//! `Arc`, so a dataset stays alive (and its retained file on disk) until the
//! last handle drops — eviction only stops *new* lookups from finding it.
//! The RAII drop of [`PreparedDataset`] then deletes the retained blocks, so
//! a registry churning through datasets never leaks disk space.

use std::collections::HashMap;
use std::sync::Arc;

use maxrs_core::{MaxRsEngine, PreparedDataset};
use maxrs_geometry::WeightedPoint;
use parking_lot::Mutex;

use crate::error::Result;

/// A ref-counted handle to a cached dataset.  Cloning is cheap; the dataset
/// (and its retained sorted file) lives until the last handle drops.
pub type DatasetHandle = Arc<PreparedDataset<'static>>;

struct Entry {
    data: DatasetHandle,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Logical clock for LRU ordering: bumped on every insert/get.
    tick: u64,
    /// Sum of `bytes` over the cached entries.
    resident: u64,
}

/// A concurrent cache of prepared datasets keyed by dataset id, with
/// ref-counted handles and LRU eviction under a memory budget.
///
/// ```
/// use maxrs_core::{MaxRsEngine, Query};
/// use maxrs_geometry::{RectSize, WeightedPoint};
/// use maxrs_serve::DatasetRegistry;
///
/// let registry = DatasetRegistry::new(MaxRsEngine::new());
/// let cafes = vec![
///     WeightedPoint::unit(1.0, 1.0),
///     WeightedPoint::unit(1.4, 1.2),
///     WeightedPoint::unit(6.0, 6.0),
/// ];
/// registry.insert("cafes", &cafes).unwrap();
///
/// let handle = registry.get("cafes").unwrap();
/// let run = handle.run(&Query::max_rs(RectSize::square(2.0))).unwrap();
/// assert_eq!(run.answer.best_weight(), 2.0);
/// ```
pub struct DatasetRegistry {
    engine: MaxRsEngine,
    budget_bytes: Option<u64>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for DatasetRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DatasetRegistry")
            .field("datasets", &inner.entries.len())
            .field("resident_bytes", &inner.resident)
            .field("budget_bytes", &self.budget_bytes)
            .finish()
    }
}

impl DatasetRegistry {
    /// Creates an unbounded registry preparing datasets with `engine`'s
    /// configuration (memory budget disabled: nothing is ever evicted).
    pub fn new(engine: MaxRsEngine) -> Self {
        DatasetRegistry {
            engine,
            budget_bytes: None,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                resident: 0,
            }),
        }
    }

    /// Creates a registry evicting least-recently-used datasets once the
    /// cached retained footprint exceeds `budget_bytes`.  The most recently
    /// touched dataset is never evicted, so a single dataset larger than the
    /// budget still serves (the budget bounds the *cache*, not one dataset).
    pub fn with_budget(engine: MaxRsEngine, budget_bytes: u64) -> Self {
        DatasetRegistry {
            budget_bytes: Some(budget_bytes),
            ..Self::new(engine)
        }
    }

    /// Prepares `objects` (pays the external x-sort once) and caches the
    /// result under `id`, returning a handle.  Replaces any dataset already
    /// cached under the same id — existing handles to the replaced dataset
    /// stay valid until dropped.  May evict least-recently-used *other*
    /// entries to respect the memory budget.
    ///
    /// Preparation runs outside the registry lock, so concurrent lookups of
    /// other datasets never stall behind a slow external sort.
    pub fn insert(&self, id: &str, objects: &[WeightedPoint]) -> Result<DatasetHandle> {
        let prepared: DatasetHandle = Arc::new(self.engine.prepare(objects)?);
        let bytes = prepared.resident_bytes();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let last_used = inner.tick;
        if let Some(old) = inner.entries.insert(
            id.to_string(),
            Entry {
                data: Arc::clone(&prepared),
                bytes,
                last_used,
            },
        ) {
            inner.resident -= old.bytes;
        }
        inner.resident += bytes;
        self.evict_over_budget(&mut inner);
        Ok(prepared)
    }

    /// Looks up a dataset, refreshing its LRU position.  `None` when the id
    /// was never registered or has been evicted.
    pub fn get(&self, id: &str) -> Option<DatasetHandle> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(id)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.data))
    }

    /// Drops `id` from the cache, returning whether it was present.  Handles
    /// already given out stay valid; the dataset's retained file is deleted
    /// when the last one drops.
    pub fn evict(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(id) {
            Some(entry) => {
                inner.resident -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// `true` when a dataset is cached under `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.inner.lock().entries.contains_key(id)
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// `true` when no datasets are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Estimated retained bytes of the cached datasets (the quantity the
    /// memory budget bounds).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident
    }

    /// The configured memory budget, `None` when unbounded.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Evicts least-recently-used entries until the footprint fits the
    /// budget, always keeping the most recently touched entry.
    fn evict_over_budget(&self, inner: &mut Inner) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while inner.resident > budget && inner.entries.len() > 1 {
            let (victim, newest) = {
                let mut by_use = inner.entries.iter().map(|(id, e)| (e.last_used, id));
                let first = by_use.next().expect("len > 1 checked above");
                let (mut victim, mut newest) = (first, first);
                for candidate in by_use {
                    if candidate.0 < victim.0 {
                        victim = candidate;
                    }
                    if candidate.0 > newest.0 {
                        newest = candidate;
                    }
                }
                (victim.1.clone(), newest.1.clone())
            };
            if victim == newest {
                break;
            }
            let entry = inner.entries.remove(&victim).expect("victim exists");
            inner.resident -= entry.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::{EngineOptions, ExactMaxRsOptions, Query};
    use maxrs_em::EmConfig;
    use maxrs_geometry::RectSize;

    fn objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * 1000.0,
                    next() * 1000.0,
                    1.0 + (next() * 4.0).floor(),
                )
            })
            .collect()
    }

    fn external_engine() -> MaxRsEngine {
        MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 32 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                memory_rects: Some(64),
                parallelism: 1,
                ..Default::default()
            },
            force_strategy: None,
        })
    }

    #[test]
    fn insert_get_evict_roundtrip() {
        let registry = DatasetRegistry::new(MaxRsEngine::new());
        assert!(registry.is_empty());
        assert!(registry.get("missing").is_none());
        registry.insert("a", &objects(50, 3)).unwrap();
        assert!(registry.contains("a"));
        assert_eq!(registry.len(), 1);
        let handle = registry.get("a").unwrap();
        let run = handle.run(&Query::max_rs(RectSize::square(100.0))).unwrap();
        assert!(run.answer.best_weight() >= 1.0);
        assert!(registry.evict("a"));
        assert!(!registry.evict("a"));
        // The outstanding handle still answers after eviction.
        assert!(handle.run(&Query::max_rs(RectSize::square(100.0))).is_ok());
        assert!(registry.is_empty());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let engine = external_engine();
        let probe = Arc::new(engine.prepare(&objects(600, 1)).unwrap());
        let per_dataset = probe.resident_bytes();
        assert!(per_dataset > 0);
        drop(probe);

        // Budget fits two datasets of this size, not three.
        let registry = DatasetRegistry::with_budget(external_engine(), 2 * per_dataset);
        registry.insert("a", &objects(600, 1)).unwrap();
        registry.insert("b", &objects(600, 2)).unwrap();
        assert_eq!(registry.len(), 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert!(registry.get("a").is_some());
        registry.insert("c", &objects(600, 3)).unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("a"), "recently used survives");
        assert!(!registry.contains("b"), "LRU entry evicted");
        assert!(registry.contains("c"), "new entry never self-evicts");
        assert!(registry.resident_bytes() <= 2 * per_dataset);
    }

    #[test]
    fn single_oversized_dataset_is_kept() {
        let registry = DatasetRegistry::with_budget(external_engine(), 1);
        registry.insert("huge", &objects(600, 9)).unwrap();
        assert!(registry.contains("huge"));
        assert!(registry.resident_bytes() > 1);
        // A second insert evicts the older oversized entry.
        registry.insert("huge2", &objects(600, 10)).unwrap();
        assert!(!registry.contains("huge"));
        assert!(registry.contains("huge2"));
    }

    #[test]
    fn replacing_an_id_updates_accounting() {
        let registry = DatasetRegistry::new(external_engine());
        registry.insert("a", &objects(600, 4)).unwrap();
        let before = registry.resident_bytes();
        registry.insert("a", &objects(600, 5)).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.resident_bytes(), before);
    }
}
