//! [`DatasetRegistry`]: a cache of served datasets keyed by dataset id.
//!
//! A long-lived server answers queries against many datasets, and preparing
//! one (the external x-sort) is exactly the cost
//! [`MaxRsEngine::prepare`] exists to amortize.  The registry caches prepared
//! datasets behind ref-counted handles so concurrent batches share one
//! preparation, and it enforces a configurable memory budget with LRU
//! eviction: when the retained footprint
//! ([`PreparedDataset::resident_bytes`]) of the cached datasets exceeds the
//! budget, the least-recently-used entries are dropped from the cache.
//!
//! Eviction never invalidates in-flight work: a [`DatasetHandle`] is an
//! `Arc`, so a dataset stays alive (and its retained file on disk) until the
//! last handle drops — eviction only stops *new* lookups from finding it.
//! The RAII drop of [`PreparedDataset`] then deletes the retained blocks, so
//! a registry churning through datasets never leaks disk space.
//!
//! Entries come in three serving shapes (see [`ServedDataset`]): plain
//! prepared datasets ([`DatasetRegistry::insert`]), sharded ones
//! ([`DatasetRegistry::insert_sharded`]), whose preparation runs
//! shard-parallel and whose shards can live on dedicated
//! directories/devices, and **cluster** entries
//! ([`DatasetRegistry::insert_cluster`]) fronting a
//! [`ClusterCoordinator`] whose shards live on remote servers.  Cluster
//! entries charge nothing against the memory budget — their data is
//! resident on the remote servers, not in this process.
//!
//! # Dynamic datasets
//!
//! An entry registered with [`DatasetRegistry::insert_dynamic`] additionally
//! carries a live [`DeltaDataset`]: [`DatasetRegistry::apply`] routes a batch
//! of [`Event`]s into its delta, takes a fresh immutable snapshot and swaps
//! it in as the entry's served dataset.  Readers are never torn: queries in
//! flight keep their pre-update snapshot handle, queries admitted after the
//! swap see the post-update snapshot, and nothing in between exists.  The
//! delta's own compaction (policy-driven or explicit) happens behind the same
//! per-dataset lock, invisible to readers for the same reason.

use std::collections::HashMap;
use std::sync::Arc;

use maxrs_cluster::ClusterCoordinator;
use maxrs_core::{
    DeltaDataset, DeltaOptions, Event, MaxRsEngine, PreparedDataset, Query, QueryBatch, QueryRun,
    ShardLayout, ShardedDataset,
};
use maxrs_em::IoSnapshot;
use maxrs_geometry::WeightedPoint;
use parking_lot::Mutex;

use crate::error::{Result, ServeError};

/// A ref-counted handle to a cached dataset.  Cloning is cheap; the dataset
/// (and its retained sorted files) lives until the last handle drops.
pub type DatasetHandle = Arc<ServedDataset>;

/// What a registry entry serves: an unsharded [`PreparedDataset`], a
/// [`ShardedDataset`] whose shards were prepared concurrently (and may live
/// on dedicated devices), or a [`ClusterCoordinator`] whose shards live on
/// remote servers behind a transport.  All three answer every [`Query`]
/// variant bit-identically through the same interface, so the batching
/// executor treats them uniformly.
#[derive(Debug)]
pub enum ServedDataset {
    /// A single prepared dataset (one sorted file, one device).
    Prepared(PreparedDataset<'static>),
    /// An x-sharded dataset ([`MaxRsEngine::prepare_sharded`]).
    Sharded(ShardedDataset),
    /// A multi-node cluster of shard servers
    /// ([`maxrs_cluster::ClusterCoordinator`]).
    Cluster(ClusterCoordinator),
}

impl ServedDataset {
    /// Answers one query.
    pub fn run(&self, query: &Query) -> Result<QueryRun> {
        match self {
            ServedDataset::Prepared(d) => Ok(d.run(query)?),
            ServedDataset::Sharded(d) => Ok(d.run(query)?),
            ServedDataset::Cluster(d) => Ok(d.run(query)?),
        }
    }

    /// Plans and answers a batch of queries in shared sweep passes.
    pub fn run_batch(&self, queries: &[Query]) -> Result<Vec<QueryRun>> {
        match self {
            ServedDataset::Prepared(d) => Ok(d.run_batch(queries)?),
            ServedDataset::Sharded(d) => Ok(d.run_batch(queries)?),
            ServedDataset::Cluster(d) => Ok(d.run_batch(queries)?),
        }
    }

    /// Executes an already planned batch.
    pub fn run_planned(&self, batch: &QueryBatch) -> Result<Vec<QueryRun>> {
        match self {
            ServedDataset::Prepared(d) => Ok(d.run_planned(batch)?),
            ServedDataset::Sharded(d) => Ok(d.run_planned(batch)?),
            ServedDataset::Cluster(d) => Ok(d.run_planned(batch)?),
        }
    }

    /// Total number of objects.
    pub fn len(&self) -> u64 {
        match self {
            ServedDataset::Prepared(d) => d.len(),
            ServedDataset::Sharded(d) => d.len(),
            ServedDataset::Cluster(d) => d.len(),
        }
    }

    /// `true` when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated retained bytes **in this process** (summed over shards when
    /// sharded) — the quantity the registry's memory budget bounds.  Cluster
    /// entries report 0: their shard data is resident on the remote servers,
    /// so caching the coordinator costs this process nothing the budget
    /// should account for.
    pub fn resident_bytes(&self) -> u64 {
        match self {
            ServedDataset::Prepared(d) => d.resident_bytes(),
            ServedDataset::Sharded(d) => d.resident_bytes(),
            ServedDataset::Cluster(_) => 0,
        }
    }

    /// Blocks transferred by the one-time preparation (summed over shards
    /// when sharded or clustered).
    pub fn prepare_io(&self) -> IoSnapshot {
        match self {
            ServedDataset::Prepared(d) => d.prepare_io(),
            ServedDataset::Sharded(d) => d.prepare_io(),
            ServedDataset::Cluster(d) => d.prepare_io(),
        }
    }

    /// `true` when the dataset is stored externally (sharded and cluster
    /// datasets always are; a prepared dataset may have stayed in memory).
    pub fn is_external(&self) -> bool {
        match self {
            ServedDataset::Prepared(d) => d.is_external(),
            ServedDataset::Sharded(_) | ServedDataset::Cluster(_) => true,
        }
    }

    /// Storage-backend name of the dataset's context, when it has one
    /// (`None` for a prepared dataset that stayed fully in memory; for
    /// clusters, the backend the remote servers reported at handshake when
    /// it is one of the known names).
    pub fn backend_name(&self) -> Option<&'static str> {
        match self {
            ServedDataset::Prepared(d) => d.backend_name(),
            ServedDataset::Sharded(d) => Some(d.backend_name()),
            ServedDataset::Cluster(d) => match d.backend_name() {
                "sim" => Some("sim"),
                "fs" => Some("fs"),
                _ => None,
            },
        }
    }

    /// Number of shards serving this dataset: 1 unless sharded or clustered.
    pub fn num_shards(&self) -> usize {
        match self {
            ServedDataset::Prepared(_) => 1,
            ServedDataset::Sharded(d) => d.num_shards(),
            ServedDataset::Cluster(d) => d.num_shards(),
        }
    }
}

struct Entry {
    data: DatasetHandle,
    /// The live delta-main dataset behind a dynamic entry; `None` for static
    /// datasets registered with [`DatasetRegistry::insert`].
    dynamic: Option<Arc<Mutex<DeltaDataset>>>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Logical clock for LRU ordering: bumped on every insert/get.
    tick: u64,
    /// Sum of `bytes` over the cached entries.
    resident: u64,
}

/// A concurrent cache of prepared datasets keyed by dataset id, with
/// ref-counted handles and LRU eviction under a memory budget.
///
/// ```
/// use maxrs_core::{MaxRsEngine, Query};
/// use maxrs_geometry::{RectSize, WeightedPoint};
/// use maxrs_serve::DatasetRegistry;
///
/// let registry = DatasetRegistry::new(MaxRsEngine::new());
/// let cafes = vec![
///     WeightedPoint::unit(1.0, 1.0),
///     WeightedPoint::unit(1.4, 1.2),
///     WeightedPoint::unit(6.0, 6.0),
/// ];
/// registry.insert("cafes", &cafes).unwrap();
///
/// let handle = registry.get("cafes").unwrap();
/// let run = handle.run(&Query::max_rs(RectSize::square(2.0))).unwrap();
/// assert_eq!(run.answer.best_weight(), 2.0);
/// ```
pub struct DatasetRegistry {
    engine: MaxRsEngine,
    budget_bytes: Option<u64>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for DatasetRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DatasetRegistry")
            .field("datasets", &inner.entries.len())
            .field("resident_bytes", &inner.resident)
            .field("budget_bytes", &self.budget_bytes)
            .finish()
    }
}

impl DatasetRegistry {
    /// Creates an unbounded registry preparing datasets with `engine`'s
    /// configuration (memory budget disabled: nothing is ever evicted).
    pub fn new(engine: MaxRsEngine) -> Self {
        DatasetRegistry {
            engine,
            budget_bytes: None,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                resident: 0,
            }),
        }
    }

    /// Creates a registry evicting least-recently-used datasets once the
    /// cached retained footprint exceeds `budget_bytes`.  The most recently
    /// touched dataset is never evicted, so a single dataset larger than the
    /// budget still serves (the budget bounds the *cache*, not one dataset).
    pub fn with_budget(engine: MaxRsEngine, budget_bytes: u64) -> Self {
        DatasetRegistry {
            budget_bytes: Some(budget_bytes),
            ..Self::new(engine)
        }
    }

    /// Prepares `objects` (pays the external x-sort once) and caches the
    /// result under `id`, returning a handle.  Replaces any dataset already
    /// cached under the same id — existing handles to the replaced dataset
    /// stay valid until dropped.  May evict least-recently-used *other*
    /// entries to respect the memory budget.
    ///
    /// Preparation runs outside the registry lock, so concurrent lookups of
    /// other datasets never stall behind a slow external sort.
    pub fn insert(&self, id: &str, objects: &[WeightedPoint]) -> Result<DatasetHandle> {
        let prepared: DatasetHandle =
            Arc::new(ServedDataset::Prepared(self.engine.prepare(objects)?));
        self.install(id, prepared, None)
    }

    /// Prepares `objects` as a [`ShardedDataset`] under `layout` — the
    /// external x-sort runs `layout.shards`-way parallel, and the shards can
    /// live on dedicated directories — and caches it under `id`, exactly like
    /// [`insert`](DatasetRegistry::insert) otherwise.  Sharded entries answer
    /// bit-identically to unsharded ones, so callers cannot tell them apart
    /// through the query path.
    pub fn insert_sharded(
        &self,
        id: &str,
        objects: &[WeightedPoint],
        layout: &ShardLayout,
    ) -> Result<DatasetHandle> {
        let sharded: DatasetHandle = Arc::new(ServedDataset::Sharded(
            self.engine.prepare_sharded(objects, layout)?,
        ));
        self.install(id, sharded, None)
    }

    /// Caches an already-connected [`ClusterCoordinator`] under `id`, so a
    /// multi-node cluster serves behind the same [`DatasetHandle`] interface
    /// (and through [`MaxRsServer`](crate::MaxRsServer)'s batching executor)
    /// as local datasets.  Cluster entries charge **0 bytes** against the
    /// registry's memory budget: the shard data is resident on the remote
    /// servers, not in this process, so a cluster entry is never the reason
    /// an LRU eviction fires — and is itself evicted only by replacement or
    /// [`evict`](DatasetRegistry::evict).
    pub fn insert_cluster(&self, id: &str, cluster: ClusterCoordinator) -> Result<DatasetHandle> {
        let served: DatasetHandle = Arc::new(ServedDataset::Cluster(cluster));
        self.install(id, served, None)
    }

    /// Registers a **dynamic** dataset under `id`: a [`DeltaDataset`] seeded
    /// by replaying `events`, whose current snapshot is cached and served
    /// exactly like a static dataset.  Later [`apply`](DatasetRegistry::apply)
    /// calls route further events into the delta and swap in fresh snapshots.
    /// Replaces any dataset (static or dynamic) already cached under the id.
    pub fn insert_dynamic(
        &self,
        id: &str,
        events: &[Event],
        options: DeltaOptions,
    ) -> Result<DatasetHandle> {
        let mut delta = DeltaDataset::new(&self.engine, options)?;
        delta.apply(events)?;
        let prepared: DatasetHandle = Arc::new(ServedDataset::Prepared(delta.snapshot()?));
        self.install(id, prepared, Some(Arc::new(Mutex::new(delta))))
    }

    /// Applies a batch of events to the dynamic dataset under `id` and swaps
    /// a fresh snapshot in as the served dataset, returning a handle to it.
    ///
    /// The delta update, any policy-triggered compaction and the snapshot all
    /// run under a **per-dataset** lock, outside the registry lock: lookups
    /// and queries against other datasets never stall, and queries against
    /// this one keep answering from the pre-update snapshot until the swap.
    /// Every concurrent reader therefore sees exactly one of the two legal
    /// snapshots — pre-batch or post-batch — never a torn intermediate.
    ///
    /// Errors with [`ServeError::UnknownDataset`] for unregistered/evicted
    /// ids and [`ServeError::StaticDataset`] for datasets registered with
    /// [`insert`](DatasetRegistry::insert).
    pub fn apply(&self, id: &str, events: &[Event]) -> Result<DatasetHandle> {
        let dynamic = {
            let inner = self.inner.lock();
            let entry = inner
                .entries
                .get(id)
                .ok_or_else(|| ServeError::UnknownDataset(id.to_string()))?;
            entry
                .dynamic
                .clone()
                .ok_or_else(|| ServeError::StaticDataset(id.to_string()))?
        };
        let prepared: DatasetHandle = {
            let mut delta = dynamic.lock();
            delta.apply(events)?;
            Arc::new(ServedDataset::Prepared(delta.snapshot()?))
        };
        let bytes = prepared.resident_bytes();
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(id) {
            Some(entry)
                if entry
                    .dynamic
                    .as_ref()
                    .is_some_and(|d| Arc::ptr_eq(d, &dynamic)) =>
            {
                inner.resident = inner.resident - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.data = Arc::clone(&prepared);
                entry.last_used = tick;
            }
            // The entry was evicted or replaced while the update ran: the
            // events are safely in the delta we hold, but the cache has moved
            // on — don't resurrect the entry behind its replacement's back.
            _ => {}
        }
        self.evict_over_budget(inner);
        Ok(prepared)
    }

    /// `true` when `id` is cached and carries an update path.
    pub fn is_dynamic(&self, id: &str) -> bool {
        self.inner
            .lock()
            .entries
            .get(id)
            .is_some_and(|e| e.dynamic.is_some())
    }

    /// Caches `prepared` under `id`, replacing and re-accounting any previous
    /// entry and evicting over budget.
    fn install(
        &self,
        id: &str,
        prepared: DatasetHandle,
        dynamic: Option<Arc<Mutex<DeltaDataset>>>,
    ) -> Result<DatasetHandle> {
        let bytes = prepared.resident_bytes();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let last_used = inner.tick;
        if let Some(old) = inner.entries.insert(
            id.to_string(),
            Entry {
                data: Arc::clone(&prepared),
                dynamic,
                bytes,
                last_used,
            },
        ) {
            inner.resident -= old.bytes;
        }
        inner.resident += bytes;
        self.evict_over_budget(&mut inner);
        Ok(prepared)
    }

    /// Looks up a dataset, refreshing its LRU position.  `None` when the id
    /// was never registered or has been evicted.
    pub fn get(&self, id: &str) -> Option<DatasetHandle> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(id)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.data))
    }

    /// Drops `id` from the cache, returning whether it was present.  Handles
    /// already given out stay valid; the dataset's retained file is deleted
    /// when the last one drops.
    pub fn evict(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(id) {
            Some(entry) => {
                inner.resident -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// `true` when a dataset is cached under `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.inner.lock().entries.contains_key(id)
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// `true` when no datasets are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Estimated retained bytes of the cached datasets (the quantity the
    /// memory budget bounds).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident
    }

    /// The configured memory budget, `None` when unbounded.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Evicts least-recently-used entries until the footprint fits the
    /// budget, always keeping the most recently touched entry.
    fn evict_over_budget(&self, inner: &mut Inner) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while inner.resident > budget && inner.entries.len() > 1 {
            let (victim, newest) = {
                let mut by_use = inner.entries.iter().map(|(id, e)| (e.last_used, id));
                let first = by_use.next().expect("len > 1 checked above");
                let (mut victim, mut newest) = (first, first);
                for candidate in by_use {
                    if candidate.0 < victim.0 {
                        victim = candidate;
                    }
                    if candidate.0 > newest.0 {
                        newest = candidate;
                    }
                }
                (victim.1.clone(), newest.1.clone())
            };
            if victim == newest {
                break;
            }
            let entry = inner.entries.remove(&victim).expect("victim exists");
            inner.resident -= entry.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::{EngineOptions, ExactMaxRsOptions, Query};
    use maxrs_em::EmConfig;
    use maxrs_geometry::RectSize;

    fn objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * 1000.0,
                    next() * 1000.0,
                    1.0 + (next() * 4.0).floor(),
                )
            })
            .collect()
    }

    fn external_engine() -> MaxRsEngine {
        MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 32 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                memory_rects: Some(64),
                parallelism: 1,
                ..Default::default()
            },
            force_strategy: None,
        })
    }

    #[test]
    fn insert_get_evict_roundtrip() {
        let registry = DatasetRegistry::new(MaxRsEngine::new());
        assert!(registry.is_empty());
        assert!(registry.get("missing").is_none());
        registry.insert("a", &objects(50, 3)).unwrap();
        assert!(registry.contains("a"));
        assert_eq!(registry.len(), 1);
        let handle = registry.get("a").unwrap();
        let run = handle.run(&Query::max_rs(RectSize::square(100.0))).unwrap();
        assert!(run.answer.best_weight() >= 1.0);
        assert!(registry.evict("a"));
        assert!(!registry.evict("a"));
        // The outstanding handle still answers after eviction.
        assert!(handle.run(&Query::max_rs(RectSize::square(100.0))).is_ok());
        assert!(registry.is_empty());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let engine = external_engine();
        let probe = Arc::new(engine.prepare(&objects(600, 1)).unwrap());
        let per_dataset = probe.resident_bytes();
        assert!(per_dataset > 0);
        drop(probe);

        // Budget fits two datasets of this size, not three.
        let registry = DatasetRegistry::with_budget(external_engine(), 2 * per_dataset);
        registry.insert("a", &objects(600, 1)).unwrap();
        registry.insert("b", &objects(600, 2)).unwrap();
        assert_eq!(registry.len(), 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert!(registry.get("a").is_some());
        registry.insert("c", &objects(600, 3)).unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("a"), "recently used survives");
        assert!(!registry.contains("b"), "LRU entry evicted");
        assert!(registry.contains("c"), "new entry never self-evicts");
        assert!(registry.resident_bytes() <= 2 * per_dataset);
    }

    #[test]
    fn sharded_entries_serve_bit_identically_to_unsharded_ones() {
        let registry = DatasetRegistry::new(external_engine());
        let data = objects(1200, 7);
        registry.insert("flat", &data).unwrap();
        registry
            .insert_sharded("sharded", &data, &maxrs_core::ShardLayout::new(3))
            .unwrap();
        let flat = registry.get("flat").unwrap();
        let sharded = registry.get("sharded").unwrap();
        assert_eq!(flat.num_shards(), 1);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(flat.len(), sharded.len());
        assert!(sharded.resident_bytes() > 0);
        assert!(sharded.prepare_io().total() > 0);
        let queries = vec![
            Query::max_rs(RectSize::square(120.0)),
            Query::top_k(RectSize::square(120.0), 2),
            Query::approx_max_crs(120.0),
        ];
        let flat_runs = flat.run_batch(&queries).unwrap();
        let sharded_runs = sharded.run_batch(&queries).unwrap();
        for ((q, f), s) in queries.iter().zip(&flat_runs).zip(&sharded_runs) {
            assert_eq!(f.answer, s.answer, "{} diverged", q.name());
        }
        // Sharded entries are static: no update path.
        assert!(!registry.is_dynamic("sharded"));
    }

    #[test]
    fn sharded_entries_are_accounted_as_the_sum_of_their_shards() {
        let engine = external_engine();
        let data = objects(1200, 11);
        let sharded = engine
            .prepare_sharded(&data, &maxrs_core::ShardLayout::new(4))
            .unwrap();
        let per_shard = sharded.resident_bytes_per_shard();
        assert_eq!(per_shard.len(), 4);
        assert!(per_shard.iter().all(|&b| b > 0), "every shard retains data");
        let expected: u64 = per_shard.iter().sum();
        assert_eq!(sharded.resident_bytes(), expected);

        // The registry charges exactly that sum against its budget…
        let registry = DatasetRegistry::new(external_engine());
        registry
            .insert_sharded("s", &data, &maxrs_core::ShardLayout::new(4))
            .unwrap();
        assert_eq!(registry.resident_bytes(), expected);
        // …and releases exactly it on eviction.
        assert!(registry.evict("s"));
        assert_eq!(registry.resident_bytes(), 0);

        // A budget below the summed footprint treats the sharded entry as
        // oversized (kept while newest, evicted by the next insert), proving
        // eviction decisions see the whole dataset, not one shard.
        let registry = DatasetRegistry::with_budget(external_engine(), expected - 1);
        registry
            .insert_sharded("s", &data, &maxrs_core::ShardLayout::new(4))
            .unwrap();
        assert!(registry.contains("s"));
        registry.insert("tiny", &objects(50, 12)).unwrap();
        assert!(!registry.contains("s"), "oversized sharded entry evicted");
        assert!(registry.contains("tiny"));
    }

    #[test]
    fn single_oversized_dataset_is_kept() {
        let registry = DatasetRegistry::with_budget(external_engine(), 1);
        registry.insert("huge", &objects(600, 9)).unwrap();
        assert!(registry.contains("huge"));
        assert!(registry.resident_bytes() > 1);
        // A second insert evicts the older oversized entry.
        registry.insert("huge2", &objects(600, 10)).unwrap();
        assert!(!registry.contains("huge"));
        assert!(registry.contains("huge2"));
    }

    #[test]
    fn dynamic_datasets_apply_events_and_swap_snapshots() {
        use maxrs_core::{CompactionPolicy, Event};

        let registry = DatasetRegistry::new(external_engine());
        let seed: Vec<Event> = objects(600, 21)
            .iter()
            .enumerate()
            .map(|(i, o)| Event::insert(i as u64, o.point.x, o.point.y, o.weight, i as f64))
            .collect();
        let options = maxrs_core::DeltaOptions {
            policy: CompactionPolicy::DeltaThreshold { max_delta: 200 },
            window: None,
        };
        let before = registry.insert_dynamic("live", &seed, options).unwrap();
        assert!(registry.is_dynamic("live"));
        assert!(!registry.is_dynamic("missing"));

        // Updates swap the served snapshot; the old handle keeps answering.
        let events: Vec<Event> = (0..100)
            .map(|i| Event::delete(i as u64, 1000.0 + i as f64))
            .collect();
        let after = registry.apply("live", &events).unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.len(), before.len() - 100);
        let current = registry.get("live").unwrap();
        assert!(Arc::ptr_eq(&current, &after));
        let query = Query::max_rs(RectSize::square(150.0));
        assert!(before.run(&query).is_ok());
        assert_eq!(
            after.run(&query).unwrap().answer,
            current.run(&query).unwrap().answer
        );

        // Static entries refuse updates; unknown ids fail lookup.
        registry.insert("static", &objects(50, 5)).unwrap();
        assert!(!registry.is_dynamic("static"));
        assert!(matches!(
            registry.apply("static", &events),
            Err(crate::ServeError::StaticDataset(id)) if id == "static"
        ));
        assert!(matches!(
            registry.apply("nope", &events),
            Err(crate::ServeError::UnknownDataset(id)) if id == "nope"
        ));
    }

    #[test]
    fn applying_after_eviction_still_returns_a_valid_handle() {
        use maxrs_core::{DeltaOptions, Event};

        let registry = DatasetRegistry::new(external_engine());
        let seed: Vec<Event> = (0..50)
            .map(|i| Event::insert(i, i as f64, i as f64, 1.0, i as f64))
            .collect();
        registry
            .insert_dynamic("live", &seed, DeltaOptions::default())
            .unwrap();
        let dynamic_handle = registry.get("live").unwrap();
        assert!(registry.evict("live"));
        drop(dynamic_handle);
        // The id is gone; apply reports it rather than resurrecting it.
        assert!(matches!(
            registry.apply("live", &[Event::delete(0, 100.0)]),
            Err(crate::ServeError::UnknownDataset(_))
        ));
    }

    #[test]
    fn replacing_an_id_updates_accounting() {
        let registry = DatasetRegistry::new(external_engine());
        registry.insert("a", &objects(600, 4)).unwrap();
        let before = registry.resident_bytes();
        registry.insert("a", &objects(600, 5)).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.resident_bytes(), before);
    }
}
