//! Serving counters: throughput, shedding, and the batch-size histogram that
//! shows whether strangers' queries are actually sharing sweeps.

/// Mutable counters kept behind the server mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
    pub(crate) shed: u64,
    pub(crate) sweep_groups: u64,
    batches: u64,
    batched_queries: u64,
    /// `size_counts[s]` counts flushed batches of exactly `s` queries
    /// (index 0 is unused — an empty flush never leaves the batcher).
    size_counts: Vec<u64>,
}

impl StatsInner {
    /// Records one flushed micro-batch of `len` queries.
    pub(crate) fn record_flush(&mut self, len: usize) {
        self.batches += 1;
        self.batched_queries += len as u64;
        if self.size_counts.len() <= len {
            self.size_counts.resize(len + 1, 0);
        }
        self.size_counts[len] += 1;
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted,
            completed: self.completed,
            shed: self.shed,
            sweep_groups: self.sweep_groups,
            batches: self.batches,
            batched_queries: self.batched_queries,
            size_counts: self.size_counts.clone(),
        }
    }
}

/// A point-in-time snapshot of a server's counters
/// (see [`MaxRsServer::stats`](crate::MaxRsServer::stats)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Queries admitted past admission control.
    pub submitted: u64,
    /// Queries answered (replies sent).
    pub completed: u64,
    /// Queries rejected with `Overloaded` under the shed policy.
    pub shed: u64,
    /// Sweep groups executed across all batches — strictly less than
    /// `completed` exactly when batching shared sweeps between queries.
    pub sweep_groups: u64,
    /// Micro-batches flushed to the workers.
    pub batches: u64,
    /// Total queries across those batches (equals the sum over the
    /// histogram of `size × count`).
    pub batched_queries: u64,
    size_counts: Vec<u64>,
}

impl ServerStats {
    /// Mean flushed batch size; `0.0` before the first flush.  Under
    /// concurrent load this exceeding 1 is the whole point of micro-batching.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }

    /// Largest batch flushed so far (0 before the first flush).
    pub fn max_batch_size(&self) -> usize {
        self.size_counts
            .iter()
            .rposition(|&count| count > 0)
            .unwrap_or(0)
    }

    /// The batch-size histogram as `(size, batches_of_that_size)` pairs,
    /// ascending by size, zero-count sizes omitted.
    pub fn batch_size_histogram(&self) -> Vec<(usize, u64)> {
        self.size_counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(size, &count)| (size, count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_mean_track_flushes() {
        let mut inner = StatsInner::default();
        let empty = inner.snapshot();
        assert_eq!(empty.mean_batch_size(), 0.0);
        assert_eq!(empty.max_batch_size(), 0);
        assert!(empty.batch_size_histogram().is_empty());

        inner.record_flush(1);
        inner.record_flush(3);
        inner.record_flush(3);
        inner.record_flush(5);
        let stats = inner.snapshot();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.batched_queries, 12);
        assert!((stats.mean_batch_size() - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_batch_size(), 5);
        assert_eq!(stats.batch_size_histogram(), vec![(1, 1), (3, 2), (5, 1)]);
    }
}
