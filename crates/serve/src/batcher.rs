//! [`MicroBatcher`]: the deterministic core of dynamic micro-batching.
//!
//! Concurrently submitted queries accumulate in a pending micro-batch that is
//! flushed as soon as **either** it reaches the size threshold **or** its
//! *oldest* entry has waited one full window — whichever comes first.  The
//! size rule keeps batches bounded under load; the window rule bounds the
//! latency a lone query pays waiting for strangers to share a sweep with.
//!
//! The batcher is a pure state machine over an explicit clock (monotonic
//! nanoseconds supplied by the caller): no threads, no sleeping, no
//! `Instant::now()` inside.  The threaded front-end
//! ([`MaxRsServer`](crate::MaxRsServer)) drives it with the real clock and a
//! condition variable armed from [`next_deadline`](MicroBatcher::next_deadline);
//! the unit tests below drive it with a fake clock, so every timing edge case
//! (empty flush tick, burst exactly at threshold, single straggler,
//! zero-length window) is tested deterministically, without sleeps.
//!
//! Ordering contract: entries leave in exactly the order they were submitted
//! — concatenating the flushed batches reproduces the submission sequence,
//! with nothing lost, duplicated or reordered (the scheduler property tests
//! assert this over random submission timings and configurations).

/// Accumulates submitted entries into micro-batches under a
/// time-or-size flush rule.  See the module docs for the contract.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    window_nanos: u64,
    max_batch: usize,
    pending: Vec<T>,
    /// Clock reading at the submission of the oldest pending entry; `None`
    /// when `pending` is empty.
    oldest_at: Option<u64>,
}

impl<T> MicroBatcher<T> {
    /// Creates a batcher flushing at `max_batch` entries or `window_nanos`
    /// nanoseconds after the oldest pending submission, whichever comes
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (a batch that can never fill).
    pub fn new(window_nanos: u64, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        MicroBatcher {
            window_nanos,
            max_batch,
            pending: Vec::new(),
            oldest_at: None,
        }
    }

    /// Number of entries waiting for a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Submits one entry at clock reading `now`, returning the full batch if
    /// this submission triggered a flush (size threshold reached, or a
    /// zero-length window making the batcher pass-through).
    pub fn submit(&mut self, entry: T, now: u64) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            self.oldest_at = Some(now);
        }
        self.pending.push(entry);
        if self.pending.len() >= self.max_batch || self.window_nanos == 0 {
            return self.take();
        }
        None
    }

    /// Flush tick: returns the pending batch if the oldest entry has waited
    /// at least one window by clock reading `now`, `None` otherwise (nothing
    /// pending, or the window has not elapsed yet).  The flush instant is
    /// exactly [`next_deadline`](MicroBatcher::next_deadline) — including its
    /// saturation at `u64::MAX` for windows that would overflow the clock.
    pub fn poll(&mut self, now: u64) -> Option<Vec<T>> {
        match self.oldest_at {
            Some(oldest) if now >= oldest.saturating_add(self.window_nanos) => self.take(),
            _ => None,
        }
    }

    /// The clock reading at which [`poll`](MicroBatcher::poll) will flush the
    /// current pending batch, or `None` when nothing is pending.  The
    /// threaded driver arms its wait-with-timeout from this.
    pub fn next_deadline(&self) -> Option<u64> {
        self.oldest_at
            .map(|oldest| oldest.saturating_add(self.window_nanos))
    }

    /// Unconditionally flushes whatever is pending (graceful drain on
    /// shutdown).  Returns `None` when nothing was pending.
    pub fn drain(&mut self) -> Option<Vec<T>> {
        self.take()
    }

    fn take(&mut self) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest_at = None;
        Some(std::mem::take(&mut self.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An empty flush tick is a no-op: polling with nothing pending returns
    /// `None` at any clock reading and arms no deadline.
    #[test]
    fn empty_flush_tick_is_a_no_op() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(1_000, 4);
        assert!(b.is_empty());
        assert_eq!(b.poll(0), None);
        assert_eq!(b.poll(u64::MAX), None);
        assert_eq!(b.next_deadline(), None);
        assert_eq!(b.drain(), None);
    }

    /// A burst of exactly `max_batch` submissions flushes exactly once, on
    /// the last submission, with every entry in submission order — and the
    /// batcher is clean afterwards (no residue, no stale deadline).
    #[test]
    fn burst_exactly_at_threshold_flushes_once() {
        let mut b = MicroBatcher::new(1_000, 4);
        assert_eq!(b.submit(0, 10), None);
        assert_eq!(b.submit(1, 11), None);
        assert_eq!(b.submit(2, 12), None);
        assert_eq!(b.submit(3, 13), Some(vec![0, 1, 2, 3]));
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
        // The *next* submission starts a fresh batch with a fresh deadline.
        assert_eq!(b.submit(4, 20), None);
        assert_eq!(b.next_deadline(), Some(1_020));
    }

    /// A single straggler query flushes alone once its window elapses — not
    /// one tick earlier — and the deadline is measured from the *oldest*
    /// entry, not refreshed by later arrivals.
    #[test]
    fn single_straggler_flushes_at_its_window() {
        let mut b = MicroBatcher::new(1_000, 16);
        assert_eq!(b.submit(7, 100), None);
        assert_eq!(b.next_deadline(), Some(1_100));
        assert_eq!(b.poll(1_099), None, "window not elapsed yet");
        assert_eq!(b.poll(1_100), Some(vec![7]));
        assert!(b.is_empty());

        // Later arrivals do not push the deadline out.
        assert_eq!(b.submit(8, 2_000), None);
        assert_eq!(b.submit(9, 2_900), None);
        assert_eq!(b.next_deadline(), Some(3_000));
        assert_eq!(b.poll(3_000), Some(vec![8, 9]));
    }

    /// A zero-length window makes the batcher pass-through: every submission
    /// flushes immediately (batch of one when nothing else is pending).
    #[test]
    fn zero_length_window_is_pass_through() {
        let mut b = MicroBatcher::new(0, 16);
        assert_eq!(b.submit(1, 5), Some(vec![1]));
        assert_eq!(b.submit(2, 5), Some(vec![2]));
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    /// Drain flushes whatever is pending regardless of clock or thresholds
    /// (the graceful-shutdown path).
    #[test]
    fn drain_flushes_pending_unconditionally() {
        let mut b = MicroBatcher::new(1_000_000, 16);
        b.submit('a', 1);
        b.submit('b', 2);
        assert_eq!(b.drain(), Some(vec!['a', 'b']));
        assert_eq!(b.drain(), None);
    }

    /// Oversized bursts split into `max_batch`-sized flushes with order
    /// preserved across the batch boundary.
    #[test]
    fn bursts_split_in_submission_order() {
        let mut b = MicroBatcher::new(1_000, 2);
        let mut out = Vec::new();
        for i in 0..5 {
            if let Some(batch) = b.submit(i, i as u64) {
                assert_eq!(batch.len(), 2);
                out.extend(batch);
            }
        }
        out.extend(b.drain().unwrap());
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    /// A clock that jumps far past the deadline (or saturates) still flushes
    /// exactly the pending entries.
    #[test]
    fn late_and_saturating_clocks_flush() {
        let mut b = MicroBatcher::new(1_000, 16);
        b.submit(1, u64::MAX - 10);
        // The deadline saturates instead of wrapping.
        assert_eq!(b.next_deadline(), Some(u64::MAX));
        assert_eq!(b.poll(u64::MAX - 11), None);
        assert_eq!(b.poll(u64::MAX), Some(vec![1]));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = MicroBatcher::<u32>::new(1_000, 0);
    }
}
