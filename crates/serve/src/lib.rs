//! # maxrs-serve — the concurrent MaxRS serving layer
//!
//! Turns the batched single-process engine of `maxrs-core` into a long-lived
//! concurrent service.  Three pieces:
//!
//! * [`DatasetRegistry`] — caches [`PreparedDataset`](maxrs_core::PreparedDataset)s
//!   keyed by dataset id behind ref-counted [`DatasetHandle`]s, with LRU
//!   eviction under a configurable memory budget.  The one-time external
//!   x-sort is paid at [`insert`](DatasetRegistry::insert); every query after
//!   that is sort-free.
//! * [`MaxRsServer`] — dynamic micro-batching: queries submitted concurrently
//!   by independent clients accumulate for a short window
//!   ([`ServeConfig::window`], or until [`ServeConfig::max_batch`] of them are
//!   pending — whichever comes first) and are planned through one
//!   [`QueryBatch`](maxrs_core::QueryBatch), so strangers' queries share sweep
//!   passes.  Flushed batches execute on a bounded worker pool.
//! * Admission control — a bounded in-flight queue that either sheds
//!   ([`ServeError::Overloaded`]) or blocks, per [`OverloadPolicy`]; shutdown
//!   drains gracefully, answering every admitted query.
//!
//! Serving never changes answers: execution is
//! [`PreparedDataset::run_batch`](maxrs_core::PreparedDataset::run_batch), so
//! responses are bit-identical to sequential per-query runs (for
//! integer-valued weights; see [`maxrs_core::batch`] for the float
//! association caveat).  `tests/serve_determinism.rs` proves this under ≥ 8
//! racing client threads on both storage backends.
//!
//! ## Cookbook: stand up a server, query it from two threads
//!
//! ```
//! use maxrs_core::{MaxRsEngine, Query};
//! use maxrs_geometry::{RectSize, WeightedPoint};
//! use maxrs_serve::{DatasetRegistry, MaxRsServer, ServeConfig};
//! use std::sync::Arc;
//!
//! // 1. Register datasets: the external x-sort happens once, here.
//! let registry = Arc::new(DatasetRegistry::new(MaxRsEngine::new()));
//! let cafes = vec![
//!     WeightedPoint::unit(1.0, 1.0),
//!     WeightedPoint::unit(1.4, 1.2),
//!     WeightedPoint::unit(6.0, 6.0),
//! ];
//! registry.insert("cafes", &cafes).unwrap();
//!
//! // 2. Start the server (2 ms batching window by default).
//! let server = Arc::new(MaxRsServer::start(registry, ServeConfig::default()).unwrap());
//!
//! // 3. Query it concurrently; answers match sequential runs bit for bit.
//! let clients: Vec<_> = (0..2)
//!     .map(|_| {
//!         let server = Arc::clone(&server);
//!         std::thread::spawn(move || {
//!             server.query("cafes", Query::max_rs(RectSize::square(2.0))).unwrap()
//!         })
//!     })
//!     .collect();
//! for client in clients {
//!     let response = client.join().unwrap();
//!     assert_eq!(response.run.answer.best_weight(), 2.0);
//! }
//!
//! // 4. Drain: refuses new queries, answers everything already admitted.
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod config;
mod error;
mod registry;
mod server;
mod stats;

pub use batcher::MicroBatcher;
pub use config::{OverloadPolicy, ServeConfig};
pub use error::{Result, ServeError};
pub use registry::{DatasetHandle, DatasetRegistry, ServedDataset};
pub use server::{MaxRsServer, QueryResponse, Ticket};
pub use stats::ServerStats;
