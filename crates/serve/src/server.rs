//! [`MaxRsServer`]: the concurrent serving front-end.
//!
//! Clients submit single queries from many threads; the server accumulates
//! them in a [`MicroBatcher`] window so *strangers'* queries get planned
//! through one [`QueryBatch`] and share sweep passes, executes flushed
//! batches on a bounded worker pool, and applies admission control when the
//! submission queue outruns the workers.  The pipeline:
//!
//! ```text
//! submit()  ──admission──▶  MicroBatcher  ──flush──▶  ready queue  ──▶  workers
//!   │            (bounded: shed/block)    (time|size)                    │
//!   ╰──────────────────── Ticket ◀─── exactly one reply per query ◀──────╯
//! ```
//!
//! Answers are **bit-identical** to sequential
//! [`PreparedDataset::run`](maxrs_core::PreparedDataset::run) calls on the
//! same dataset (for integer-valued weights; see [`maxrs_core::batch`] for
//! the float association caveat), because execution *is*
//! [`run_batch`](maxrs_core::PreparedDataset::run_batch) — the serving layer
//! adds scheduling, never arithmetic.  `tests/serve_determinism.rs` proves
//! this under ≥ 8 racing clients on both storage backends.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use maxrs_core::{Query, QueryBatch, QueryRun};

use crate::batcher::MicroBatcher;
use crate::config::{OverloadPolicy, ServeConfig};
use crate::error::{Result, ServeError};
use crate::registry::{DatasetHandle, DatasetRegistry};
use crate::stats::{ServerStats, StatsInner};

/// One admitted query on its way through the scheduler.
struct Request {
    dataset: DatasetHandle,
    query: Query,
    reply: mpsc::SyncSender<Result<QueryResponse>>,
}

/// The answer to one served query: the [`QueryRun`] plus an echo of the query
/// it answers (lets clients — and the property tests — verify responses were
/// never cross-wired between racing submissions).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The query this response answers, echoed back verbatim.
    pub query: Query,
    /// The execution outcome, bit-identical to a sequential
    /// [`PreparedDataset::run`](maxrs_core::PreparedDataset::run) of
    /// [`query`](QueryResponse::query).
    pub run: QueryRun,
}

/// A pending reply for one submitted query.  Every *admitted* query resolves
/// to exactly one reply — also during graceful shutdown.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse>>,
}

impl Ticket {
    /// Blocks until the reply arrives.
    pub fn wait(self) -> Result<QueryResponse> {
        self.rx.recv().map_err(|_| ServeError::ChannelClosed)?
    }

    /// Non-blocking probe: `Some` once the reply has arrived.
    pub fn try_wait(&self) -> Option<Result<QueryResponse>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ChannelClosed)),
        }
    }
}

/// Scheduler state behind the one server mutex.
struct State {
    batcher: MicroBatcher<Request>,
    ready: VecDeque<Vec<Request>>,
    /// Admitted queries not yet replied to (pending + executing); the
    /// quantity `queue_capacity` bounds.
    in_flight: usize,
    shutting_down: bool,
    /// Set by the batcher thread after its final drain: workers may exit once
    /// this is up and `ready` is empty.
    batcher_done: bool,
    stats: StatsInner,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the batcher thread (new submission re-arms the flush deadline).
    batcher_wake: Condvar,
    /// Wakes worker threads (a batch is ready).
    worker_wake: Condvar,
    /// Wakes submitters blocked by [`OverloadPolicy::Block`].
    space_wake: Condvar,
    config: ServeConfig,
    epoch: Instant,
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The concurrent serving layer: dynamic micro-batching over a
/// [`DatasetRegistry`], executed on a bounded worker pool with admission
/// control.  See the crate docs for a complete example.
#[derive(Debug)]
pub struct MaxRsServer {
    shared: Arc<Shared>,
    registry: Arc<DatasetRegistry>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish()
    }
}

impl MaxRsServer {
    /// Starts the server: one batcher thread plus `config.workers` worker
    /// threads, serving the datasets registered in `registry`.
    pub fn start(registry: Arc<DatasetRegistry>, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batcher: MicroBatcher::new(
                    u64::try_from(config.window.as_nanos()).unwrap_or(u64::MAX),
                    config.max_batch,
                ),
                ready: VecDeque::new(),
                in_flight: 0,
                shutting_down: false,
                batcher_done: false,
                stats: StatsInner::default(),
            }),
            batcher_wake: Condvar::new(),
            worker_wake: Condvar::new(),
            space_wake: Condvar::new(),
            config,
            epoch: Instant::now(),
        });

        let mut threads = Vec::with_capacity(config.workers + 1);
        let batcher_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("maxrs-serve-batcher".into())
                .spawn(move || batcher_loop(&batcher_shared))
                .expect("spawn batcher thread"),
        );
        for i in 0..config.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("maxrs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .expect("spawn worker thread"),
            );
        }
        Ok(MaxRsServer {
            shared,
            registry,
            threads: Mutex::new(threads),
        })
    }

    /// The registry this server answers from.
    pub fn registry(&self) -> &Arc<DatasetRegistry> {
        &self.registry
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Submits one query against a registered dataset, returning a [`Ticket`]
    /// for its reply.  Validation and dataset lookup happen here, before
    /// admission; admission applies the configured overload policy (shed with
    /// [`ServeError::Overloaded`], or block until a slot frees).  An admitted
    /// query is guaranteed exactly one reply, also across a shutdown.
    pub fn submit(&self, dataset_id: &str, query: Query) -> Result<Ticket> {
        query.validate()?;
        let dataset = self
            .registry
            .get(dataset_id)
            .ok_or_else(|| ServeError::UnknownDataset(dataset_id.to_string()))?;

        let mut state = lock(&self.shared.state);
        // Admission control: the bound counts admitted-but-unanswered
        // queries, so it throttles exactly when the queue outruns the pool.
        while state.in_flight >= self.shared.config.queue_capacity {
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            match self.shared.config.overload {
                OverloadPolicy::Shed => {
                    state.stats.shed += 1;
                    return Err(ServeError::Overloaded);
                }
                OverloadPolicy::Block => {
                    state = self
                        .shared
                        .space_wake
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        state.in_flight += 1;
        state.stats.submitted += 1;

        let (tx, rx) = mpsc::sync_channel(1);
        let request = Request {
            dataset,
            query,
            reply: tx,
        };
        let now = self.shared.now_nanos();
        let was_empty = state.batcher.is_empty();
        if let Some(batch) = state.batcher.submit(request, now) {
            state.ready.push_back(batch);
            self.shared.worker_wake.notify_one();
        } else if was_empty {
            // First entry of a fresh batch: the batcher thread must re-arm
            // its flush deadline.
            self.shared.batcher_wake.notify_one();
        }
        Ok(Ticket { rx })
    }

    /// Blocking convenience: [`submit`](MaxRsServer::submit) then wait.
    pub fn query(&self, dataset_id: &str, query: Query) -> Result<QueryResponse> {
        self.submit(dataset_id, query)?.wait()
    }

    /// A snapshot of the serving counters (batch-size histogram, shed count,
    /// sweep groups executed, …).
    pub fn stats(&self) -> ServerStats {
        lock(&self.shared.state).stats.snapshot()
    }

    /// Graceful drain: refuses new submissions, flushes the pending
    /// micro-batch, lets the workers answer everything already admitted, then
    /// joins all threads.  Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutting_down = true;
            self.shared.batcher_wake.notify_all();
            self.shared.worker_wake.notify_all();
            self.shared.space_wake.notify_all();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.threads));
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for MaxRsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Locks a mutex ignoring poison: a panicking worker must not wedge the
/// scheduler for everyone else (same semantics as the parking_lot locks used
/// elsewhere in the workspace).
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The batcher thread: sleeps until the pending batch's flush deadline (or a
/// submission re-arms it), flushes on expiry, and drains on shutdown.
fn batcher_loop(shared: &Shared) {
    let mut state = lock(&shared.state);
    loop {
        if state.shutting_down {
            break;
        }
        match state.batcher.next_deadline() {
            None => {
                state = shared
                    .batcher_wake
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            Some(deadline) => {
                let now = shared.now_nanos();
                if now >= deadline {
                    if let Some(batch) = state.batcher.poll(now) {
                        state.ready.push_back(batch);
                        shared.worker_wake.notify_one();
                    }
                } else {
                    let (guard, _) = shared
                        .batcher_wake
                        .wait_timeout(state, Duration::from_nanos(deadline - now))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = guard;
                }
            }
        }
    }
    // Graceful drain: everything admitted still gets executed and replied to.
    if let Some(batch) = state.batcher.drain() {
        state.ready.push_back(batch);
    }
    state.batcher_done = true;
    shared.worker_wake.notify_all();
}

/// A worker thread: pops ready batches and executes them until the server
/// drains.  Exits only once shutdown is flagged, the batcher has drained,
/// and no batch is left — so every admitted query is answered.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(batch) = state.ready.pop_front() {
                    state.stats.record_flush(batch.len());
                    break batch;
                }
                if state.shutting_down && state.batcher_done {
                    return;
                }
                state = shared
                    .worker_wake
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let answered = batch.len();
        let (replies, groups) = execute_batch(batch);
        // Count completions *before* dispatching replies, so a client that
        // has its answer can rely on the counters already reflecting it.
        let mut state = lock(&shared.state);
        state.in_flight -= answered;
        state.stats.completed += answered as u64;
        state.stats.sweep_groups += groups;
        drop(state);
        // Capacity freed: admit blocked submitters.
        shared.space_wake.notify_all();
        for (tx, reply) in replies {
            // A client that dropped its ticket forfeits the reply.
            let _ = tx.send(reply);
        }
    }
}

type Reply = (
    mpsc::SyncSender<Result<QueryResponse>>,
    Result<QueryResponse>,
);

/// Executes one flushed micro-batch: partitions it by dataset handle
/// (strangers' queries against the *same* dataset share a [`QueryBatch`] and
/// therefore sweep passes) and runs each planned batch.  Returns one reply
/// per member plus the number of sweep groups executed.
fn execute_batch(batch: Vec<Request>) -> (Vec<Reply>, u64) {
    // Partition by dataset identity, preserving submission order within each
    // partition (`QueryBatch` planning and its leader attribution are
    // order-dependent; determinism requires a stable order).
    let mut partitions: Vec<(DatasetHandle, Vec<Request>)> = Vec::new();
    for request in batch {
        match partitions
            .iter_mut()
            .find(|(dataset, _)| Arc::ptr_eq(dataset, &request.dataset))
        {
            Some((_, members)) => members.push(request),
            None => {
                let dataset = Arc::clone(&request.dataset);
                partitions.push((dataset, vec![request]));
            }
        }
    }

    let mut groups = 0u64;
    let mut replies = Vec::new();
    for (dataset, members) in partitions {
        let queries: Vec<Query> = members.iter().map(|m| m.query).collect();
        // Queries were validated at submission, so planning cannot fail on
        // them; treat a failure as an execution error for the whole partition.
        let outcome = match QueryBatch::new(&queries) {
            Ok(planned) => {
                groups += planned.num_groups() as u64;
                dataset.run_planned(&planned)
            }
            Err(e) => Err(e.into()),
        };
        match outcome {
            Ok(runs) => {
                for (member, run) in members.into_iter().zip(runs) {
                    let response = QueryResponse {
                        query: member.query,
                        run,
                    };
                    replies.push((member.reply, Ok(response)));
                }
            }
            Err(e) => {
                let message = e.to_string();
                for member in members {
                    replies.push((member.reply, Err(ServeError::Execution(message.clone()))));
                }
            }
        }
    }
    (replies, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_core::MaxRsEngine;
    use maxrs_geometry::{RectSize, WeightedPoint};

    fn registry_with(id: &str, objects: &[WeightedPoint]) -> Arc<DatasetRegistry> {
        let registry = Arc::new(DatasetRegistry::new(MaxRsEngine::new()));
        registry.insert(id, objects).unwrap();
        registry
    }

    fn cafes() -> Vec<WeightedPoint> {
        vec![
            WeightedPoint::unit(1.0, 1.0),
            WeightedPoint::unit(1.4, 1.2),
            WeightedPoint::unit(6.0, 6.0),
        ]
    }

    #[test]
    fn serves_a_query_end_to_end() {
        let registry = registry_with("cafes", &cafes());
        let server = MaxRsServer::start(registry, ServeConfig::default()).unwrap();
        let response = server
            .query("cafes", Query::max_rs(RectSize::square(2.0)))
            .unwrap();
        assert_eq!(response.run.answer.best_weight(), 2.0);
        assert_eq!(response.query, Query::max_rs(RectSize::square(2.0)));
        let stats = server.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_dataset_and_invalid_query_are_rejected_at_the_door() {
        let registry = registry_with("cafes", &cafes());
        let server = MaxRsServer::start(registry, ServeConfig::default()).unwrap();
        assert!(matches!(
            server.submit("nope", Query::max_rs(RectSize::square(1.0))),
            Err(ServeError::UnknownDataset(_))
        ));
        assert!(matches!(
            server.submit(
                "cafes",
                Query::MaxRs {
                    size: RectSize {
                        width: -1.0,
                        height: 1.0
                    }
                }
            ),
            Err(ServeError::Core(_))
        ));
        // Rejections are not admissions: nothing in flight, nothing lost.
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let registry = registry_with("cafes", &cafes());
        let server = MaxRsServer::start(registry, ServeConfig::default()).unwrap();
        server.shutdown();
        assert!(matches!(
            server.submit("cafes", Query::max_rs(RectSize::square(1.0))),
            Err(ServeError::ShuttingDown)
        ));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn shed_policy_returns_overloaded_when_queue_is_full() {
        let registry = registry_with("cafes", &cafes());
        // One slot, one worker, long window: the first submission occupies
        // the queue until its window flushes, so the second must shed.
        let server = MaxRsServer::start(
            registry,
            ServeConfig {
                window: Duration::from_secs(5),
                max_batch: 64,
                workers: 1,
                queue_capacity: 1,
                overload: OverloadPolicy::Shed,
            },
        )
        .unwrap();
        let ticket = server
            .submit("cafes", Query::max_rs(RectSize::square(2.0)))
            .unwrap();
        assert!(matches!(
            server.submit("cafes", Query::max_rs(RectSize::square(2.0))),
            Err(ServeError::Overloaded)
        ));
        assert_eq!(server.stats().shed, 1);
        // The admitted query still completes on shutdown (graceful drain).
        server.shutdown();
        let response = ticket.wait().unwrap();
        assert_eq!(response.run.answer.best_weight(), 2.0);
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn zero_window_is_pass_through() {
        let registry = registry_with("cafes", &cafes());
        let server = MaxRsServer::start(
            registry,
            ServeConfig {
                window: Duration::ZERO,
                ..Default::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            let response = server
                .query("cafes", Query::max_rs(RectSize::square(2.0)))
                .unwrap();
            assert_eq!(response.run.answer.best_weight(), 2.0);
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 3, "pass-through: one batch per query");
        assert!((stats.mean_batch_size() - 1.0).abs() < 1e-12);
        server.shutdown();
    }
}
