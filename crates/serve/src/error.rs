//! Error type of the serving layer.

use maxrs_cluster::ClusterError;
use maxrs_core::CoreError;

/// Errors raised by the serving layer — admission control, dataset lookup and
/// query execution, as distinct from the algorithm-layer [`CoreError`]s they
/// may wrap.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission queue is full and the server's overload policy is
    /// [`OverloadPolicy::Shed`](crate::OverloadPolicy::Shed): the query was
    /// rejected at the door (load shedding).  The client may retry later.
    Overloaded,
    /// The server is draining: new submissions are refused, but every query
    /// admitted before shutdown still receives its reply.
    ShuttingDown,
    /// No dataset with this id is currently registered (never registered, or
    /// evicted by the registry's LRU policy).
    UnknownDataset(String),
    /// An update was routed to a dataset registered as static — only
    /// datasets registered with
    /// [`DatasetRegistry::insert_dynamic`](crate::DatasetRegistry::insert_dynamic)
    /// carry a delta and accept [`apply`](crate::DatasetRegistry::apply).
    StaticDataset(String),
    /// A query against a cluster entry (registered via
    /// [`DatasetRegistry::insert_cluster`](crate::DatasetRegistry::insert_cluster))
    /// failed in the cluster layer —
    /// an unreachable shard server, a protocol violation, or a remote
    /// execution failure.  The typed [`ClusterError`] names the server (and
    /// its shards) so operators can tell a dead node from a bad query.
    Cluster(ClusterError),
    /// The query (or the server/registry configuration) was rejected before
    /// admission — typically a [`CoreError::InvalidParameter`] from
    /// [`Query::validate`](maxrs_core::Query::validate), or a preparation
    /// failure inside [`DatasetRegistry::insert`](crate::DatasetRegistry).
    Core(CoreError),
    /// The shared batch this query rode in failed during execution.  The
    /// underlying [`CoreError`] is stringified because one failure fans out
    /// to every member of the batch.
    Execution(String),
    /// The response channel closed without a reply — a worker panicked while
    /// executing the batch.  Defensive: the scheduler's contract (and its
    /// property tests) say every admitted query gets exactly one reply.
    ChannelClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => {
                write!(f, "server overloaded: submission queue full, query shed")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down: submission refused"),
            ServeError::UnknownDataset(id) => write!(f, "unknown dataset id: {id:?}"),
            ServeError::StaticDataset(id) => write!(
                f,
                "dataset {id:?} is static: register it with insert_dynamic to apply events"
            ),
            ServeError::Cluster(e) => write!(f, "cluster error: {e}"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
            ServeError::Execution(msg) => write!(f, "batch execution failed: {msg}"),
            ServeError::ChannelClosed => {
                write!(f, "response channel closed without a reply (worker died)")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<ClusterError> for ServeError {
    fn from(e: ClusterError) -> Self {
        ServeError::Cluster(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(ServeError::Overloaded.to_string().contains("shed"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServeError::UnknownDataset("ds".into())
            .to_string()
            .contains("ds"));
        assert!(ServeError::StaticDataset("ds".into())
            .to_string()
            .contains("insert_dynamic"));
        let e: ServeError = CoreError::InvalidParameter("bad width".into()).into();
        assert!(e.to_string().contains("bad width"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(ServeError::Overloaded.source().is_none());
        assert!(ServeError::Execution("io".into())
            .to_string()
            .contains("io"));
        assert!(ServeError::ChannelClosed.to_string().contains("reply"));
    }
}
