//! Dataset generators for the MaxRS experiments.
//!
//! The paper evaluates on
//!
//! * synthetic datasets under **uniform** and **Gaussian** distributions with
//!   cardinalities 100,000–500,000 in a `1M × 1M` space (Table 3), and
//! * two real datasets from the (now defunct) R-tree portal: **UX** (United
//!   States + Mexico, 19,499 points, sparse) and **NE** (North-East USA,
//!   123,593 points, dense), both normalized to the same `1M × 1M` space
//!   (Table 2).
//!
//! The synthetic generators reproduce the former exactly.  For the real
//! datasets — which are no longer downloadable — this crate provides
//! deterministic *surrogates* with the same cardinalities, the same normalized
//! space and the qualitative spatial character the figures depend on (UX:
//! sparse, strongly clustered point chains; NE: dense multi-cluster with
//! uniform background).  See `DESIGN.md` §5 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod real;
mod synthetic;

pub use dataset::{Dataset, DatasetKind, WeightMode};
pub use real::{ne_surrogate, ux_surrogate, NE_CARDINALITY, UX_CARDINALITY};
pub use synthetic::{
    clustered, event_stream, gaussian, uniform, zipf_x, EventStreamConfig, SPACE_EXTENT,
};
