//! Dataset descriptors and persistence into the EM substrate.

use maxrs_core::{load_objects, ObjectRecord};
use maxrs_em::{EmContext, TupleFile};
use maxrs_geometry::{Rect, WeightedPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::real::{ne_surrogate, ux_surrogate, NE_CARDINALITY, UX_CARDINALITY};
use crate::synthetic::{gaussian, uniform, SPACE_EXTENT};

/// The four dataset families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Uniformly distributed synthetic points.
    Uniform,
    /// Gaussian-distributed synthetic points.
    Gaussian,
    /// Surrogate of the UX real dataset (USA + Mexico).
    Ux,
    /// Surrogate of the NE real dataset (North-East USA).
    Ne,
}

impl DatasetKind {
    /// All four dataset kinds, in the order the paper lists them.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Uniform,
        DatasetKind::Gaussian,
        DatasetKind::Ux,
        DatasetKind::Ne,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Uniform => "Uniform",
            DatasetKind::Gaussian => "Gaussian",
            DatasetKind::Ux => "UX",
            DatasetKind::Ne => "NE",
        }
    }

    /// The cardinality the paper uses for this dataset (Table 2 / Table 3
    /// defaults).
    pub fn paper_cardinality(&self) -> usize {
        match self {
            DatasetKind::Uniform | DatasetKind::Gaussian => 250_000,
            DatasetKind::Ux => UX_CARDINALITY,
            DatasetKind::Ne => NE_CARDINALITY,
        }
    }

    /// `true` for the two real-data surrogates.
    pub fn is_real(&self) -> bool {
        matches!(self, DatasetKind::Ux | DatasetKind::Ne)
    }
}

/// How object weights are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WeightMode {
    /// Every object has weight 1 (the COUNT setting used by the paper's
    /// experiments).
    #[default]
    Unit,
    /// Weights drawn uniformly from `[1, max]` (exercises the weighted SUM
    /// code paths).
    UniformRandom {
        /// Largest possible weight.
        max: f64,
    },
}

/// A fully generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which family the dataset belongs to.
    pub kind: DatasetKind,
    /// Seed used for generation (datasets are deterministic given kind, size,
    /// seed and weight mode).
    pub seed: u64,
    /// The objects.
    pub objects: Vec<WeightedPoint>,
}

impl Dataset {
    /// Generates a dataset of `n` objects of the given kind.
    pub fn generate(kind: DatasetKind, n: usize, seed: u64) -> Self {
        Dataset::generate_weighted(kind, n, seed, WeightMode::Unit)
    }

    /// Generates a dataset with an explicit weight mode.
    pub fn generate_weighted(kind: DatasetKind, n: usize, seed: u64, weights: WeightMode) -> Self {
        let mut objects = match kind {
            DatasetKind::Uniform => uniform(n, SPACE_EXTENT, seed),
            DatasetKind::Gaussian => gaussian(n, SPACE_EXTENT, seed),
            DatasetKind::Ux => ux_surrogate(n, seed),
            DatasetKind::Ne => ne_surrogate(n, seed),
        };
        if let WeightMode::UniformRandom { max } = weights {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
            for o in &mut objects {
                o.weight = rng.gen_range(1.0..=max.max(1.0));
            }
        }
        Dataset {
            kind,
            seed,
            objects,
        }
    }

    /// Generates the dataset at the exact size used by the paper.
    pub fn paper_scale(kind: DatasetKind, seed: u64) -> Self {
        Dataset::generate(kind, kind.paper_cardinality(), seed)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the dataset has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Sum of all object weights.
    pub fn total_weight(&self) -> f64 {
        self.objects.iter().map(|o| o.weight).sum()
    }

    /// Bounding box of the objects (`None` for an empty dataset).
    pub fn bounding_box(&self) -> Option<Rect> {
        if self.objects.is_empty() {
            return None;
        }
        let mut x_lo = f64::INFINITY;
        let mut x_hi = f64::NEG_INFINITY;
        let mut y_lo = f64::INFINITY;
        let mut y_hi = f64::NEG_INFINITY;
        for o in &self.objects {
            x_lo = x_lo.min(o.point.x);
            x_hi = x_hi.max(o.point.x);
            y_lo = y_lo.min(o.point.y);
            y_hi = y_hi.max(o.point.y);
        }
        Some(Rect::new(x_lo, x_hi, y_lo, y_hi))
    }

    /// Writes the dataset into an EM context, returning the object file the
    /// algorithms operate on.
    pub fn to_em_file(&self, ctx: &EmContext) -> maxrs_core::Result<TupleFile<ObjectRecord>> {
        load_objects(ctx, &self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_em::EmConfig;

    #[test]
    fn kind_metadata() {
        assert_eq!(DatasetKind::Uniform.name(), "Uniform");
        assert_eq!(DatasetKind::Ux.paper_cardinality(), 19_499);
        assert_eq!(DatasetKind::Ne.paper_cardinality(), 123_593);
        assert_eq!(DatasetKind::Gaussian.paper_cardinality(), 250_000);
        assert!(DatasetKind::Ux.is_real());
        assert!(!DatasetKind::Uniform.is_real());
        assert_eq!(DatasetKind::ALL.len(), 4);
    }

    #[test]
    fn generation_and_statistics() {
        let ds = Dataset::generate(DatasetKind::Uniform, 500, 9);
        assert_eq!(ds.len(), 500);
        assert!(!ds.is_empty());
        assert_eq!(ds.total_weight(), 500.0);
        let bb = ds.bounding_box().unwrap();
        assert!(bb.x_lo >= 0.0 && bb.x_hi <= SPACE_EXTENT);
        assert!(bb.width() > 0.0 && bb.height() > 0.0);
    }

    #[test]
    fn weighted_generation() {
        let ds = Dataset::generate_weighted(
            DatasetKind::Gaussian,
            300,
            9,
            WeightMode::UniformRandom { max: 5.0 },
        );
        assert!(ds.objects.iter().all(|o| (1.0..=5.0).contains(&o.weight)));
        assert!(ds.total_weight() > 300.0);
        assert_eq!(WeightMode::default(), WeightMode::Unit);
    }

    #[test]
    fn all_kinds_generate_deterministically() {
        for kind in DatasetKind::ALL {
            let a = Dataset::generate(kind, 200, 5);
            let b = Dataset::generate(kind, 200, 5);
            assert_eq!(a.objects, b.objects, "{kind:?}");
            assert_eq!(a.len(), 200);
        }
    }

    #[test]
    fn round_trip_through_em_context() {
        let ctx = EmContext::new(EmConfig::new(4096, 64 * 1024).unwrap());
        let ds = Dataset::generate(DatasetKind::Ne, 300, 5);
        let file = ds.to_em_file(&ctx).unwrap();
        assert_eq!(file.len(), 300);
        let back = ctx.read_all(&file).unwrap();
        assert_eq!(back.len(), 300);
        assert_eq!(back[0].0, ds.objects[0]);
    }

    #[test]
    fn empty_dataset_bounding_box() {
        let ds = Dataset {
            kind: DatasetKind::Uniform,
            seed: 0,
            objects: vec![],
        };
        assert!(ds.bounding_box().is_none());
        assert!(ds.is_empty());
        assert_eq!(ds.total_weight(), 0.0);
    }
}
