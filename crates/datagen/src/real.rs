//! Deterministic surrogates for the paper's real datasets (Table 2).
//!
//! The originals were distributed by the R-tree portal (rtreeportal.org),
//! which is no longer online:
//!
//! * **UX** — points of the USA and Mexico, 19,499 objects.  Sparse; the
//!   points follow coast lines, borders and population corridors, leaving most
//!   of the space empty.
//! * **NE** — points of the North-East USA, 123,593 objects.  Much denser,
//!   dominated by a handful of metropolitan clusters over a diffuse
//!   background.
//!
//! The surrogates below reproduce the three properties the experiments of
//! Figures 15–17 actually depend on: the exact cardinality, the normalized
//! `[0, 10^6]²` space, and the skewed (clustered / chain-like) spatial
//! distribution that distinguishes them from the synthetic workloads.

use maxrs_geometry::WeightedPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::synthetic::SPACE_EXTENT;

/// Cardinality of the UX dataset (Table 2).
pub const UX_CARDINALITY: usize = 19_499;
/// Cardinality of the NE dataset (Table 2).
pub const NE_CARDINALITY: usize = 123_593;

/// Surrogate of the UX dataset: `n` points (use [`UX_CARDINALITY`] for the
/// paper's size) arranged along a few long, thin chains plus small clusters,
/// normalized to `[0, 10^6]²`.
pub fn ux_surrogate(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5558_0001);
    let extent = SPACE_EXTENT;
    // Chains emulating coastlines / borders: quadratic arcs across the space.
    let chains: Vec<(f64, f64, f64, f64, f64)> = vec![
        // (x0, y0, x1, y1, bulge)
        (0.05, 0.2, 0.45, 0.9, 0.25),
        (0.2, 0.05, 0.95, 0.35, -0.15),
        (0.5, 0.5, 0.9, 0.95, 0.1),
        (0.1, 0.6, 0.4, 0.2, 0.2),
    ];
    let clusters: Vec<(f64, f64, f64)> = vec![
        (0.25, 0.75, 0.02),
        (0.8, 0.3, 0.03),
        (0.6, 0.7, 0.015),
        (0.45, 0.25, 0.02),
        (0.9, 0.85, 0.01),
    ];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r: f64 = rng.gen();
        let (x, y) = if r < 0.6 {
            // On a chain.
            let (x0, y0, x1, y1, bulge) = chains[rng.gen_range(0..chains.len())];
            let t: f64 = rng.gen();
            let nx = x0 + (x1 - x0) * t + bulge * (4.0 * t * (1.0 - t));
            let ny = y0 + (y1 - y0) * t + bulge * (4.0 * t * (1.0 - t)) * 0.5;
            let jitter = 0.004;
            (
                nx + rng.gen_range(-jitter..jitter),
                ny + rng.gen_range(-jitter..jitter),
            )
        } else if r < 0.9 {
            // In a cluster.
            let (cx, cy, sigma) = clusters[rng.gen_range(0..clusters.len())];
            let normal = Normal::new(0.0, sigma).expect("valid normal");
            (cx + normal.sample(&mut rng), cy + normal.sample(&mut rng))
        } else {
            // Sparse background.
            (rng.gen(), rng.gen())
        };
        if (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y) {
            out.push(WeightedPoint::unit(x * extent, y * extent));
        }
    }
    out
}

/// Surrogate of the NE dataset: `n` points (use [`NE_CARDINALITY`] for the
/// paper's size) drawn from a dense mixture of metropolitan clusters over a
/// diffuse background, normalized to `[0, 10^6]²`.
pub fn ne_surrogate(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_0002);
    let extent = SPACE_EXTENT;
    // Cluster centers loosely following an arc (the I-95 corridor).
    let clusters: Vec<(f64, f64, f64, f64)> = vec![
        // (cx, cy, sigma, relative mass)
        (0.15, 0.15, 0.03, 0.18),
        (0.3, 0.3, 0.04, 0.22),
        (0.45, 0.45, 0.03, 0.15),
        (0.55, 0.6, 0.05, 0.12),
        (0.7, 0.7, 0.04, 0.13),
        (0.85, 0.85, 0.03, 0.08),
        (0.25, 0.6, 0.06, 0.06),
        (0.65, 0.35, 0.06, 0.06),
    ];
    let total_mass: f64 = clusters.iter().map(|c| c.3).sum();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r: f64 = rng.gen();
        let (x, y) = if r < 0.85 {
            // Pick a cluster proportionally to its mass.
            let mut pick = rng.gen_range(0.0..total_mass);
            let mut chosen = clusters[0];
            for c in &clusters {
                if pick < c.3 {
                    chosen = *c;
                    break;
                }
                pick -= c.3;
            }
            let normal = Normal::new(0.0, chosen.2).expect("valid normal");
            (
                chosen.0 + normal.sample(&mut rng),
                chosen.1 + normal.sample(&mut rng),
            )
        } else {
            (rng.gen(), rng.gen())
        };
        if (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y) {
            out.push(WeightedPoint::unit(x * extent, y * extent));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_table2() {
        assert_eq!(UX_CARDINALITY, 19_499);
        assert_eq!(NE_CARDINALITY, 123_593);
    }

    #[test]
    fn surrogates_have_requested_size_and_extent() {
        let ux = ux_surrogate(5000, 1);
        let ne = ne_surrogate(5000, 1);
        assert_eq!(ux.len(), 5000);
        assert_eq!(ne.len(), 5000);
        for p in ux.iter().chain(ne.iter()) {
            assert!((0.0..=SPACE_EXTENT).contains(&p.point.x));
            assert!((0.0..=SPACE_EXTENT).contains(&p.point.y));
            assert_eq!(p.weight, 1.0);
        }
    }

    #[test]
    fn surrogates_are_deterministic() {
        assert_eq!(ux_surrogate(1000, 3), ux_surrogate(1000, 3));
        assert_eq!(ne_surrogate(1000, 3), ne_surrogate(1000, 3));
        assert_ne!(ux_surrogate(1000, 3), ux_surrogate(1000, 4));
    }

    #[test]
    fn surrogates_are_skewed_not_uniform() {
        // Measure skew by counting occupied cells of a coarse grid: clustered
        // data occupies far fewer cells than uniform data of the same size.
        fn occupied_cells(points: &[WeightedPoint]) -> usize {
            use std::collections::HashSet;
            let mut cells = HashSet::new();
            for p in points {
                cells.insert((
                    (p.point.x / (SPACE_EXTENT / 32.0)) as i64,
                    (p.point.y / (SPACE_EXTENT / 32.0)) as i64,
                ));
            }
            cells.len()
        }
        let n = 8000;
        let ux = occupied_cells(&ux_surrogate(n, 5));
        let ne = occupied_cells(&ne_surrogate(n, 5));
        let uni = occupied_cells(&crate::synthetic::uniform(n, SPACE_EXTENT, 5));
        assert!(
            ux < uni,
            "UX must be more clustered than uniform ({ux} vs {uni})"
        );
        assert!(
            ne < uni,
            "NE must be more clustered than uniform ({ne} vs {uni})"
        );
    }
}
