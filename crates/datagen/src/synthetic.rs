//! Synthetic datasets: uniform and Gaussian distributions (Table 3).

use maxrs_geometry::WeightedPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Side length of the default data space (`1M × 1M` in the paper).
pub const SPACE_EXTENT: f64 = 1_000_000.0;

/// `n` points uniformly distributed over `[0, extent]²`, all of weight 1.
pub fn uniform(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| WeightedPoint::unit(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect()
}

/// `n` points following a 2-D Gaussian centered in the space (σ = extent / 8),
/// clamped to `[0, extent]²`, all of weight 1.
///
/// The paper's "Gaussian distribution" datasets concentrate the objects around
/// the center of the space, which makes the rectangle-overlap probability (and
/// therefore the baselines' interval insertions) noticeably higher than in the
/// uniform case — the effect visible when comparing Figures 12(a) and 12(b).
pub fn gaussian(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = Normal::new(extent / 2.0, extent / 8.0).expect("valid normal");
    (0..n)
        .map(|_| {
            let x: f64 = normal.sample(&mut rng).clamp(0.0, extent);
            let y: f64 = normal.sample(&mut rng).clamp(0.0, extent);
            WeightedPoint::unit(x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_properties() {
        let pts = uniform(2000, 1000.0, 7);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|p| p.weight == 1.0));
        assert!(pts
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.point.x) && (0.0..=1000.0).contains(&p.point.y)));
        // Roughly balanced across the two halves of the space.
        let left = pts.iter().filter(|p| p.point.x < 500.0).count();
        assert!((800..1200).contains(&left), "left half has {left} points");
    }

    #[test]
    fn gaussian_concentrates_at_the_center() {
        let pts = gaussian(2000, 1000.0, 7);
        assert_eq!(pts.len(), 2000);
        let central = pts
            .iter()
            .filter(|p| (p.point.x - 500.0).abs() < 250.0 && (p.point.y - 500.0).abs() < 250.0)
            .count();
        // ~95% of a Gaussian with sigma=125 lies within +-250 of the mean.
        assert!(central > 1700, "only {central} of 2000 points are central");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(uniform(100, 1000.0, 42), uniform(100, 1000.0, 42));
        assert_eq!(gaussian(100, 1000.0, 42), gaussian(100, 1000.0, 42));
        assert_ne!(uniform(100, 1000.0, 1), uniform(100, 1000.0, 2));
    }
}
