//! Synthetic datasets: uniform and Gaussian distributions (Table 3), plus
//! reproducible insert/delete event streams for the streaming subsystem.

use maxrs_geometry::WeightedPoint;
use maxrs_stream::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Side length of the default data space (`1M × 1M` in the paper).
pub const SPACE_EXTENT: f64 = 1_000_000.0;

/// `n` points uniformly distributed over `[0, extent]²`, all of weight 1.
pub fn uniform(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| WeightedPoint::unit(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect()
}

/// `n` points following a 2-D Gaussian centered in the space (σ = extent / 8),
/// clamped to `[0, extent]²`, all of weight 1.
///
/// The paper's "Gaussian distribution" datasets concentrate the objects around
/// the center of the space, which makes the rectangle-overlap probability (and
/// therefore the baselines' interval insertions) noticeably higher than in the
/// uniform case — the effect visible when comparing Figures 12(a) and 12(b).
pub fn gaussian(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = Normal::new(extent / 2.0, extent / 8.0).expect("valid normal");
    (0..n)
        .map(|_| {
            let x: f64 = normal.sample(&mut rng).clamp(0.0, extent);
            let y: f64 = normal.sample(&mut rng).clamp(0.0, extent);
            WeightedPoint::unit(x, y)
        })
        .collect()
}

/// `n` points in three x-clusters of very unequal mass (60% / 30% / 10%),
/// each a tight Gaussian (σ = extent / 80) around centers at 15%, 50% and 85%
/// of the space, y uniform, all of weight 1.
///
/// Equal-*width* x-splits starve two of three partitions on this input;
/// quantile-based boundary selection (used by sharded datasets and the slab
/// partitioner) keeps per-partition counts balanced — which is exactly what
/// the balanced-split tests assert.
pub fn clustered(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = [0.15 * extent, 0.50 * extent, 0.85 * extent];
    let normal = Normal::new(0.0, extent / 80.0).expect("valid normal");
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen();
            let center = if roll < 0.6 {
                centers[0]
            } else if roll < 0.9 {
                centers[1]
            } else {
                centers[2]
            };
            let x = (center + normal.sample(&mut rng)).clamp(0.0, extent);
            WeightedPoint::unit(x, rng.gen_range(0.0..extent))
        })
        .collect()
}

/// `n` points whose x follows a Zipf law with exponent `s` over 256 discrete
/// x-values spread across `[0, extent]`, y uniform, all of weight 1.
///
/// The hot ranks concentrate a large fraction of the points on a handful of
/// *exact* x-values — heavy duplicate mass, the worst case for quantile
/// boundary selection, since everything sharing an x must share a partition.
pub fn zipf_x(n: usize, extent: f64, s: f64, seed: u64) -> Vec<WeightedPoint> {
    assert!(extent > 0.0, "extent must be positive");
    assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    const RANKS: usize = 256;
    // Inverse-CDF sampling over the (finite) rank distribution.
    let mut cdf = Vec::with_capacity(RANKS);
    let mut total = 0.0;
    for k in 1..=RANKS {
        total += 1.0 / (k as f64).powf(s);
        cdf.push(total);
    }
    let pitch = extent / RANKS as f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            let rank = cdf.partition_point(|&c| c <= u);
            // Rank r sits at a fixed grid x; hot ranks repeat their x exactly.
            let x = (rank as f64 + 0.5) * pitch;
            WeightedPoint::unit(x, rng.gen_range(0.0..extent))
        })
        .collect()
}

/// Shape of a generated event stream (see [`event_stream`]).
///
/// Defaults: 10k events over the paper's `1M × 1M` space, one time unit per
/// event, a quarter of the events deleting a live object, ticks sprinkled in,
/// victims drawn uniformly (no skew), integer weights `0..=3` (zeros
/// included) and one-in-four coordinates snapped to a coarse grid so the
/// stream exercises tie-heavy sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventStreamConfig {
    /// Total number of events to generate.
    pub events: usize,
    /// Side length of the coordinate space.
    pub extent: f64,
    /// Fraction of events that delete a live object (when one exists).
    pub delete_fraction: f64,
    /// Fraction of events that are pure clock ticks.
    pub tick_fraction: f64,
    /// How strongly deletes prefer the *oldest* live object: `0.0` picks
    /// victims uniformly, `1.0` always removes the oldest — emulating the
    /// FIFO churn a sliding window produces, without requiring one.
    pub window_skew: f64,
    /// Probability that a coordinate pair is snapped to a grid of pitch
    /// `extent / 100` (producing exact coordinate ties).
    pub snap_fraction: f64,
    /// Weights are drawn uniformly from the integers `0..=max_weight`
    /// (exactly representable, so incremental-vs-batch comparisons can be
    /// bit-for-bit; zero-weight objects are part of the mix).
    pub max_weight: u32,
    /// Mean time advance per event (timestamps are non-decreasing).
    pub mean_dt: f64,
}

impl Default for EventStreamConfig {
    fn default() -> Self {
        EventStreamConfig {
            events: 10_000,
            extent: SPACE_EXTENT,
            delete_fraction: 0.25,
            tick_fraction: 0.05,
            window_skew: 0.0,
            snap_fraction: 0.25,
            max_weight: 3,
            mean_dt: 1.0,
        }
    }
}

/// A reproducible insert/delete/tick sequence for the streaming engine,
/// shared by the incremental-correctness tests and the `stream` experiment
/// harness (same seed ⇒ same events, byte for byte).
///
/// Inserts carry fresh ids (the event index), deletes target live ids with
/// the configured [`window_skew`](EventStreamConfig::window_skew), and
/// timestamps advance by `mean_dt` scaled by a uniform factor in `[0, 2)`.
pub fn event_stream(cfg: &EventStreamConfig, seed: u64) -> Vec<Event> {
    assert!(cfg.extent > 0.0, "extent must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.delete_fraction)
            && (0.0..=1.0).contains(&cfg.tick_fraction)
            && (0.0..=1.0).contains(&cfg.window_skew)
            && (0.0..=1.0).contains(&cfg.snap_fraction),
        "fractions must lie in [0, 1]"
    );
    assert!(cfg.mean_dt >= 0.0, "mean_dt must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let snap_pitch = cfg.extent / 100.0;
    let mut events = Vec::with_capacity(cfg.events);
    let mut live: Vec<u64> = Vec::new(); // insertion order: index 0 is oldest
    let mut now = 0.0;
    for i in 0..cfg.events {
        now += cfg.mean_dt * rng.gen_range(0.0..2.0);
        let roll: f64 = rng.gen();
        if roll < cfg.tick_fraction {
            events.push(Event::tick(now));
        } else if roll < cfg.tick_fraction + cfg.delete_fraction && !live.is_empty() {
            // Oldest-first with probability `window_skew`, else uniform.
            let idx = if rng.gen_bool(cfg.window_skew) {
                0
            } else {
                rng.gen_range(0..live.len())
            };
            let victim = live.remove(idx);
            events.push(Event::delete(victim, now));
        } else {
            let (x, y) = if rng.gen_bool(cfg.snap_fraction) {
                let gx: u32 = rng.gen_range(0..=100);
                let gy: u32 = rng.gen_range(0..=100);
                (f64::from(gx) * snap_pitch, f64::from(gy) * snap_pitch)
            } else {
                (
                    rng.gen_range(0.0..cfg.extent),
                    rng.gen_range(0.0..cfg.extent),
                )
            };
            let weight = f64::from(rng.gen_range(0..=cfg.max_weight));
            let id = i as u64;
            events.push(Event::insert(id, x, y, weight, now));
            live.push(id);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_properties() {
        let pts = uniform(2000, 1000.0, 7);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|p| p.weight == 1.0));
        assert!(pts
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.point.x) && (0.0..=1000.0).contains(&p.point.y)));
        // Roughly balanced across the two halves of the space.
        let left = pts.iter().filter(|p| p.point.x < 500.0).count();
        assert!((800..1200).contains(&left), "left half has {left} points");
    }

    #[test]
    fn gaussian_concentrates_at_the_center() {
        let pts = gaussian(2000, 1000.0, 7);
        assert_eq!(pts.len(), 2000);
        let central = pts
            .iter()
            .filter(|p| (p.point.x - 500.0).abs() < 250.0 && (p.point.y - 500.0).abs() < 250.0)
            .count();
        // ~95% of a Gaussian with sigma=125 lies within +-250 of the mean.
        assert!(central > 1700, "only {central} of 2000 points are central");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(uniform(100, 1000.0, 42), uniform(100, 1000.0, 42));
        assert_eq!(gaussian(100, 1000.0, 42), gaussian(100, 1000.0, 42));
        assert_ne!(uniform(100, 1000.0, 1), uniform(100, 1000.0, 2));
        assert_eq!(clustered(100, 1000.0, 42), clustered(100, 1000.0, 42));
        assert_eq!(zipf_x(100, 1000.0, 1.1, 42), zipf_x(100, 1000.0, 1.1, 42));
        assert_ne!(zipf_x(100, 1000.0, 1.1, 1), zipf_x(100, 1000.0, 1.1, 2));
    }

    #[test]
    fn clustered_is_x_skewed() {
        let pts = clustered(4000, 1000.0, 3);
        assert_eq!(pts.len(), 4000);
        // The heavy cluster sits at 15% of the space and holds ~60% of the
        // mass; an equal-width quarter of the space captures it whole.
        let heavy = pts.iter().filter(|p| p.point.x < 250.0).count();
        assert!(heavy > 2000, "heavy cluster holds only {heavy} of 4000");
        assert!(pts.iter().all(|p| (0.0..=1000.0).contains(&p.point.x)));
    }

    #[test]
    fn zipf_x_has_heavy_duplicate_mass() {
        let pts = zipf_x(4000, 1000.0, 1.2, 3);
        assert_eq!(pts.len(), 4000);
        let mut counts = std::collections::HashMap::new();
        for p in &pts {
            *counts.entry(p.point.x.to_bits()).or_insert(0usize) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        assert!(
            hottest > 400,
            "hot rank repeats only {hottest} times — not zipfian"
        );
        assert!(counts.len() > 20, "only {} distinct x-values", counts.len());
    }

    #[test]
    fn event_stream_is_reproducible_and_well_formed() {
        let cfg = EventStreamConfig {
            events: 2_000,
            ..Default::default()
        };
        let a = event_stream(&cfg, 9);
        let b = event_stream(&cfg, 9);
        assert_eq!(a, b, "same seed must reproduce the same stream");
        assert_ne!(a, event_stream(&cfg, 10));
        assert_eq!(a.len(), 2_000);

        // Timestamps never decrease; every delete targets a then-live id.
        let mut live = std::collections::HashSet::new();
        let mut last = f64::NEG_INFINITY;
        let (mut inserts, mut deletes, mut ticks, mut zero_weights, mut snapped) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        for event in &a {
            assert!(event.at() >= last);
            last = event.at();
            match *event {
                Event::Insert { id, object, .. } => {
                    assert!(live.insert(id), "insert reused a live id");
                    assert!(object.weight >= 0.0 && object.weight <= 3.0);
                    assert!(object.weight.fract() == 0.0, "weights are integers");
                    if object.weight == 0.0 {
                        zero_weights += 1;
                    }
                    let pitch = cfg.extent / 100.0;
                    if object.point.x % pitch == 0.0 && object.point.y % pitch == 0.0 {
                        snapped += 1;
                    }
                    inserts += 1;
                }
                Event::Delete { id, .. } => {
                    assert!(live.remove(&id), "delete of a dead id");
                    deletes += 1;
                }
                Event::Tick { .. } => ticks += 1,
            }
        }
        assert!(inserts > deletes && deletes > 0 && ticks > 0);
        assert!(zero_weights > 0, "zero-weight objects are part of the mix");
        assert!(snapped > inserts / 10, "tie-heavy snapping is exercised");
    }

    #[test]
    fn window_skew_prefers_the_oldest_victims() {
        let base = EventStreamConfig {
            events: 3_000,
            tick_fraction: 0.0,
            ..Default::default()
        };
        // With full skew every delete removes the oldest live id: victims
        // appear in strictly increasing id order.
        let skewed = event_stream(
            &EventStreamConfig {
                window_skew: 1.0,
                ..base
            },
            5,
        );
        let victims: Vec<u64> = skewed
            .iter()
            .filter_map(|e| match *e {
                Event::Delete { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert!(victims.len() > 100);
        assert!(victims.windows(2).all(|w| w[0] < w[1]), "FIFO victim order");

        // Without skew some delete must hit a non-oldest object.
        let uniform_victims: Vec<u64> = event_stream(&base, 5)
            .iter()
            .filter_map(|e| match *e {
                Event::Delete { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert!(uniform_victims.windows(2).any(|w| w[0] > w[1]));
    }
}
