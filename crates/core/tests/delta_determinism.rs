//! The delta-main contract, differentially: replaying generated event
//! sequences (≥10k events; coordinate ties, zero weights, window-style churn)
//! into a [`DeltaDataset`] and asserting at every checkpoint that all four
//! [`Query`] variants answer **bit-identically** to a from-scratch
//! [`MaxRsEngine::prepare`] over the net survivor set — on both storage
//! backends, before and after [`DeltaDataset::compact`].
//!
//! The sequences come from the shared generator
//! [`maxrs_datagen::event_stream`] — the same streams the stream-incremental
//! suite and the experiment harness replay — plus hand-built edge cases the
//! generator never produces (unknown deletes, duplicate inserts).
//!
//! A cross-engine section replays one windowed stream into the in-memory
//! `StreamEngine` and the external-memory `DeltaDataset` side by side: both
//! route events through the shared `maxrs_core::LiveSet`, so survivors,
//! clocks, error positions and answers must all agree.

use maxrs_core::{
    CompactionPolicy, CoreError, DeltaDataset, DeltaOptions, EngineOptions, Event, EventError,
    ExactMaxRsOptions, MaxRsEngine, Query,
};
use maxrs_datagen::{event_stream, EventStreamConfig};
use maxrs_em::{EmConfig, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};
use maxrs_stream::{StreamConfig, StreamEngine, StreamError};

/// A small-buffer engine under which a few thousand objects are genuinely
/// external, on the given backend.
fn external_engine(backend: StorageBackend) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: EmConfig::new(512, 32 * 512).unwrap().with_backend(backend),
        exact: ExactMaxRsOptions {
            memory_rects: Some(64),
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// All four query variants at sizes proportional to the space extent.
fn query_pool(extent: f64) -> Vec<Query> {
    let size = RectSize::square(0.04 * extent);
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::min_rs(size, domain),
        Query::approx_max_crs(size.width),
    ]
}

/// Replays `events` into a `DeltaDataset`, checking at every
/// `checkpoint_every` events (and once at the end) that survivors match an
/// independent replay and that every query variant answers bit-identically
/// to a from-scratch prepare — then compacts at every `compact_every`-th
/// checkpoint and re-checks, proving compaction is answer-invariant.
fn assert_replay_matches_prepare(
    events: &[Event],
    engine: &MaxRsEngine,
    queries: &[Query],
    checkpoint_every: usize,
    compact_every: usize,
) {
    let mut delta = DeltaDataset::new(engine, DeltaOptions::default()).unwrap();
    let mut reference: Vec<(u64, WeightedPoint)> = Vec::new();
    let mut checkpoints = 0usize;
    let mut compactions = 0usize;
    for (i, event) in events.iter().enumerate() {
        delta.apply(std::slice::from_ref(event)).unwrap();
        match *event {
            Event::Insert { id, object, .. } => reference.push((id, object)),
            Event::Delete { id, .. } => reference.retain(|&(rid, _)| rid != id),
            Event::Tick { .. } => {}
        }
        if (i + 1).is_multiple_of(checkpoint_every) || i + 1 == events.len() {
            let survivors: Vec<WeightedPoint> = reference.iter().map(|&(_, o)| o).collect();
            assert_eq!(
                delta.survivors(),
                survivors,
                "survivor bookkeeping diverged after {} events",
                i + 1
            );
            let prepared = engine.prepare(&survivors).unwrap();
            let expected: Vec<_> = queries
                .iter()
                .map(|q| prepared.run(q).unwrap().answer)
                .collect();
            let got = delta.run_batch(queries).unwrap();
            for ((query, want), run) in queries.iter().zip(&expected).zip(&got) {
                assert_eq!(
                    &run.answer,
                    want,
                    "{} diverged from from-scratch prepare after {} events \
                     ({} survivors, delta {})",
                    query.name(),
                    i + 1,
                    survivors.len(),
                    delta.delta_len()
                );
            }
            checkpoints += 1;
            if checkpoints.is_multiple_of(compact_every) {
                let report = delta.compact().unwrap();
                assert_eq!(delta.delta_len(), 0, "compaction must drain the delta");
                assert_eq!(report.base_after, survivors.len() as u64);
                for (query, want) in queries.iter().zip(&expected) {
                    assert_eq!(
                        &delta.run(query).unwrap().answer,
                        want,
                        "{} changed across the compact() boundary after {} events",
                        query.name(),
                        i + 1
                    );
                }
                compactions += 1;
            }
        }
    }
    assert!(checkpoints >= 4, "too few checkpoints to mean anything");
    assert!(compactions >= 1, "the replay never exercised compaction");
}

/// The acceptance-criteria run: one ≥10k-event stream with ties and
/// zero-weight objects, all four variants, both backends, bit-identical
/// across compact() boundaries.
#[test]
fn ten_thousand_event_replay_matches_prepare_on_both_backends() {
    let cfg = EventStreamConfig {
        events: 10_500,
        ..Default::default()
    };
    let events = event_stream(&cfg, 42);
    assert!(events.len() >= 10_000);
    let queries = query_pool(cfg.extent);
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let engine = external_engine(backend);
        assert_replay_matches_prepare(&events, &engine, &queries, 1_500, 3);
    }
}

/// Heavier churn plus window-skewed (FIFO-like) deletes: the delta spends
/// most of its life with tombstones pending against the base.
#[test]
fn tombstone_heavy_replay_matches_prepare() {
    let cfg = EventStreamConfig {
        events: 4_000,
        delete_fraction: 0.45,
        window_skew: 0.9,
        snap_fraction: 0.5,
        ..Default::default()
    };
    let events = event_stream(&cfg, 7);
    let queries = query_pool(cfg.extent);
    let engine = external_engine(StorageBackend::Sim);
    assert_replay_matches_prepare(&events, &engine, &queries, 800, 2);
}

/// Edge cases the generator never emits: deletes of unknown ids are no-ops
/// (reported, not errored), duplicate inserts are checked errors that leave
/// the dataset consistent and queryable.
#[test]
fn unknown_deletes_and_duplicate_inserts_stay_consistent() {
    let engine = external_engine(StorageBackend::Sim);
    let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
    let cfg = EventStreamConfig {
        events: 600,
        ..Default::default()
    };
    let events = event_stream(&cfg, 11);
    delta.apply(&events).unwrap();
    let survivors = delta.survivors();
    assert!(!survivors.is_empty());

    // Unknown delete: applied = false, nothing changes.
    let outcome = delta.apply(&[Event::delete(9_999_999, 1e6)]).unwrap();
    assert!(!outcome.applied);
    assert_eq!(delta.survivors(), survivors);

    // Duplicate insert: a checked error; the batch stops there, earlier
    // events applied, the dataset still answers correctly.
    let live_id = (0..events.len() as u64)
        .find(|&id| delta.contains(id))
        .expect("some generated id survives");
    let err = delta
        .apply(&[Event::insert(live_id, 1.0, 1.0, 1.0, 2e6)])
        .unwrap_err();
    assert!(matches!(
        err,
        CoreError::Event(EventError::DuplicateId(id)) if id == live_id
    ));
    assert_eq!(delta.survivors(), survivors);
    let query = Query::max_rs(RectSize::square(0.04 * cfg.extent));
    let expected = engine.prepare(&survivors).unwrap().run(&query).unwrap();
    assert_eq!(delta.run(&query).unwrap().answer, expected.answer);

    // And the same holds after compacting the post-error state.
    delta.compact().unwrap();
    assert_eq!(delta.run(&query).unwrap().answer, expected.answer);
}

/// Cross-engine equivalence (the shared-`LiveSet` guarantee): one windowed
/// event stream replayed into the in-memory `StreamEngine` and the
/// external-memory `DeltaDataset` must agree on survivors, clock and answers
/// at every checkpoint — and reject the same invalid events at the same
/// positions.
#[test]
fn stream_engine_and_delta_dataset_share_event_semantics() {
    let cfg = EventStreamConfig {
        events: 3_000,
        tick_fraction: 0.15,
        ..Default::default()
    };
    let events = event_stream(&cfg, 23);
    let window = 400.0; // mean_dt 1.0 → plenty of expiry traffic
    let size = RectSize::square(0.04 * cfg.extent);
    let query = Query::max_rs(size);

    let mut stream = StreamEngine::new(StreamConfig::max_rs(size).with_window(window)).unwrap();
    let engine = external_engine(StorageBackend::Sim);
    let mut delta = DeltaDataset::new(
        &engine,
        DeltaOptions {
            policy: CompactionPolicy::DeltaThreshold { max_delta: 150 },
            window: Some(window),
        },
    )
    .unwrap();

    let mut expired_stream = 0usize;
    let mut expired_delta = 0usize;
    for (i, event) in events.iter().enumerate() {
        let s = stream.apply(event).unwrap();
        let d = delta.apply(std::slice::from_ref(event)).unwrap();
        assert_eq!(s.applied, d.applied, "event {i} applied-flag diverged");
        expired_stream += s.expired;
        expired_delta += d.expired;
        if (i + 1).is_multiple_of(500) || i + 1 == events.len() {
            assert_eq!(stream.now(), delta.now(), "clock diverged at event {i}");
            assert_eq!(expired_stream, expired_delta, "expiry count diverged");
            assert_eq!(
                stream.survivors(),
                delta.survivors(),
                "survivors diverged at event {i}"
            );
            assert_eq!(
                stream.answer().run.answer,
                delta.run(&query).unwrap().answer,
                "answers diverged at event {i} ({} live)",
                stream.len()
            );
        }
    }
    assert!(expired_stream > 0, "the window never expired anything");
    assert!(
        delta.compactions() > 0,
        "expiry churn never tripped the policy"
    );

    // Same rejections, same positions: a duplicate id and a non-finite
    // timestamp produce matching errors in both engines, and the clock
    // behaves identically around them.
    let live_id = (0..events.len() as u64)
        .find(|&id| stream.contains(id))
        .expect("something is live");
    let dup = Event::insert(live_id, 1.0, 1.0, 1.0, delta.now() + 1.0);
    assert_eq!(
        stream.apply(&dup).unwrap_err(),
        StreamError::DuplicateId(live_id)
    );
    assert!(matches!(
        delta.apply(std::slice::from_ref(&dup)).unwrap_err(),
        CoreError::Event(EventError::DuplicateId(id)) if id == live_id
    ));
    assert_eq!(
        stream.now(),
        delta.now(),
        "failed events advance both clocks identically"
    );
    let bad = Event::tick(f64::NAN);
    assert!(matches!(
        stream.apply(&bad).unwrap_err(),
        StreamError::InvalidParameter(_)
    ));
    assert!(matches!(
        delta.apply(std::slice::from_ref(&bad)).unwrap_err(),
        CoreError::Event(EventError::InvalidParameter(_))
    ));
    assert_eq!(stream.survivors(), delta.survivors());
}
