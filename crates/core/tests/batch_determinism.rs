//! Batched-execution regression tests: [`PreparedDataset::run_batch`] must
//! answer **bit-identically** to per-query [`PreparedDataset::run`] calls —
//! all four [`Query`] variants, both storage backends, tie-heavy and
//! zero-weight data, mixed rectangle sizes, sequential and parallel group
//! execution — while performing strictly fewer logical block reads than the
//! same queries run independently (the shared-sweep amortization the batch
//! layer exists for, proven with `IoSnapshot` arithmetic).

use maxrs_core::{
    load_objects, EngineOptions, ExactMaxRsOptions, MaxRsEngine, PreparedDataset, Query, QueryBatch,
};
use maxrs_em::{EmConfig, EmContext, IoSnapshot, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// Coordinates snapped to a coarse grid (heavy ties on x and y) with a zero
/// weight every fifth object: the inputs where tie-breaking and the
/// `total_weight <= 0` top-k cutoff actually matter.
fn tie_heavy_objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = (next() * 40.0).floor() * 25.0;
            let y = (next() * 40.0).floor() * 25.0;
            let w = if i % 5 == 0 {
                0.0
            } else {
                1.0 + (next() * 3.0).floor()
            };
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

/// A small-buffer configuration under which a few thousand objects genuinely
/// exceed the memory budget.
fn tiny_config() -> EmConfig {
    EmConfig::new(512, 32 * 512).unwrap()
}

fn engine_with(config: EmConfig, parallelism: usize) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// A mixed batch over two rectangle sizes: four variants share the `size`
/// sweep, one MaxRS runs at a second size, two MinRS share a domain x-slab.
fn mixed_queries(size: RectSize, other: RectSize, extent: f64) -> Vec<Query> {
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    let narrow = Rect::new(0.1 * extent, 0.9 * extent, 0.3 * extent, 0.6 * extent);
    vec![
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::approx_max_crs(size.width),
        Query::min_rs(size, domain),
        Query::max_rs(other),
        Query::min_rs(size, narrow), // same x-slab as `domain`, different y
        Query::top_k(size, 1),
    ]
}

fn assert_batch_matches_per_query(prepared: &PreparedDataset<'_>, queries: &[Query], tag: &str) {
    let runs = prepared.run_batch(queries).unwrap();
    assert_eq!(runs.len(), queries.len(), "{tag}");
    for (query, batched) in queries.iter().zip(&runs) {
        let single = prepared.run(query).unwrap();
        assert_eq!(
            batched.answer,
            single.answer,
            "{tag}: batched {} diverged from per-query run",
            query.name()
        );
    }
}

#[test]
fn run_batch_is_bit_identical_on_both_backends() {
    let size = RectSize::square(120.0);
    let other = RectSize::square(260.0);
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let config = tiny_config().with_backend(backend);
        let objects = pseudo_random_objects(2500, 11, 1000.0);
        let engine = engine_with(config, 1);
        let prepared = engine.prepare(&objects).unwrap();
        assert!(prepared.is_external());
        assert_batch_matches_per_query(
            &prepared,
            &mixed_queries(size, other, 1000.0),
            backend.name(),
        );
    }
}

#[test]
fn run_batch_is_bit_identical_on_tie_heavy_and_zero_weight_data() {
    let objects = tie_heavy_objects(3000, 7);
    let prepared = engine_with(tiny_config(), 1).prepare(&objects).unwrap();
    assert!(prepared.is_external());
    let size = RectSize::square(60.0);
    let other = RectSize::square(140.0);
    assert_batch_matches_per_query(&prepared, &mixed_queries(size, other, 1000.0), "tie-heavy");

    // All-zero weights: MaxRS reports a zero-weight cell, top-k cuts off
    // before its first round, and the batch must agree with both.
    let zeros: Vec<WeightedPoint> = pseudo_random_objects(1500, 3, 500.0)
        .into_iter()
        .map(|o| WeightedPoint::at(o.point.x, o.point.y, 0.0))
        .collect();
    let prepared = engine_with(tiny_config(), 1).prepare(&zeros).unwrap();
    let queries = [
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(60.0),
    ];
    assert_batch_matches_per_query(&prepared, &queries, "zero-weight");
    let runs = prepared.run_batch(&queries).unwrap();
    assert!(runs[1].answer.placements().unwrap().is_empty());
}

#[test]
fn parallel_group_execution_answers_identically() {
    // 64 pool blocks -> up to 8 effective workers, and the mixed batch has
    // several independent groups: the parallel_map path actually runs.
    let config = EmConfig::new(512, 64 * 512).unwrap();
    let objects = pseudo_random_objects(4000, 23, 2000.0);
    let size = RectSize::square(180.0);
    let other = RectSize::square(420.0);
    let queries = mixed_queries(size, other, 2000.0);

    let sequential = engine_with(config, 1).prepare(&objects).unwrap();
    let parallel = engine_with(config, 4).prepare(&objects).unwrap();
    let seq_runs = sequential.run_batch(&queries).unwrap();
    let par_runs = parallel.run_batch(&queries).unwrap();
    for ((query, seq), par) in queries.iter().zip(&seq_runs).zip(&par_runs) {
        assert_eq!(
            seq.answer,
            par.answer,
            "{}: parallel groups diverged from sequential groups",
            query.name()
        );
        // Parallel groups must also match the per-query path.
        let single = parallel.run(query).unwrap();
        assert_eq!(par.answer, single.answer, "{}", query.name());
    }
}

#[test]
fn batched_execution_reads_strictly_fewer_blocks_than_independent_runs() {
    // The acceptance criterion: M >= 4 mixed queries in one batch must move
    // strictly fewer logical blocks than the same M queries run one by one,
    // while answering bit-identically.  Three of the four queries share one
    // sweep group, so the batch pays 2 kernel passes instead of 4.
    let config = tiny_config();
    let objects = pseudo_random_objects(6000, 17, 100_000.0);
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &objects).unwrap();
    let engine = engine_with(config, 1);
    let prepared = engine.prepare_file(&ctx, &file).unwrap();

    let size = RectSize::square(8_000.0);
    let domain = Rect::new(10_000.0, 90_000.0, 10_000.0, 90_000.0);
    let queries = vec![
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(8_000.0),
        Query::min_rs(size, domain),
    ];
    let batch = QueryBatch::new(&queries).unwrap();
    assert_eq!(batch.len(), 4);
    assert_eq!(batch.num_groups(), 2, "three variants share one sweep");

    // Batch first: any buffer-pool warmth then favors the *independent*
    // runs, making the strict inequality below conservative.
    let before = ctx.stats();
    let batched = prepared.run_planned(&batch).unwrap();
    let batch_io = ctx.stats().delta(&before);

    // Leader attribution: the per-run I/O sums to the measured batch total.
    let attributed: IoSnapshot = batched
        .iter()
        .fold(IoSnapshot::default(), |acc, run| acc + run.io);
    assert_eq!(
        attributed, batch_io,
        "per-query attribution must neither drop nor double-count I/O"
    );

    let before = ctx.stats();
    let independent: Vec<_> = queries.iter().map(|q| prepared.run(q).unwrap()).collect();
    let independent_io = ctx.stats().delta(&before);

    for ((query, batched), single) in queries.iter().zip(&batched).zip(&independent) {
        assert_eq!(batched.answer, single.answer, "{}", query.name());
    }
    assert!(
        batch_io.reads < independent_io.reads,
        "batch ({batch_io}) must read strictly fewer blocks than independent \
         runs ({independent_io})"
    );
    assert!(
        batch_io.total() < independent_io.total(),
        "batch ({batch_io}) must move strictly fewer blocks than independent \
         runs ({independent_io})"
    );

    ctx.delete_file(file).unwrap();
}

#[test]
fn identical_queries_in_a_batch_cost_nothing_extra() {
    let config = tiny_config();
    let objects = pseudo_random_objects(3000, 29, 50_000.0);
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &objects).unwrap();
    let engine = engine_with(config, 1);
    let prepared = engine.prepare_file(&ctx, &file).unwrap();
    let q = Query::max_rs(RectSize::square(5_000.0));

    let before = ctx.stats();
    let one = prepared.run_batch(std::slice::from_ref(&q)).unwrap();
    let one_io = ctx.stats().delta(&before);

    let before = ctx.stats();
    let five = prepared.run_batch(&[q, q, q, q, q]).unwrap();
    let five_io = ctx.stats().delta(&before);

    for run in &five {
        assert_eq!(run.answer, one[0].answer);
    }
    // Duplicates ride the shared pass: the batch of five costs what the
    // batch of one does (pool warmth can only shave it further).
    assert!(
        five_io.total() <= one_io.total(),
        "five identical queries ({five_io}) cost more than one ({one_io})"
    );
    // Non-leader duplicates report zero marginal I/O.
    assert!(five[1].io.total() == 0 && five[4].io.total() == 0);

    ctx.delete_file(file).unwrap();
}

#[test]
fn in_memory_and_trivial_batches_match_per_query_runs() {
    // Memory-source prepared dataset: the batch is a plain per-query loop.
    let objects = pseudo_random_objects(60, 5, 100.0);
    let prepared = MaxRsEngine::new().prepare(&objects).unwrap();
    assert!(!prepared.is_external());
    let size = RectSize::square(20.0);
    let queries = [
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::min_rs(size, Rect::new(10.0, 90.0, 10.0, 90.0)),
        Query::min_rs(size, Rect::new(50.0, 50.0, 0.0, 100.0)), // degenerate
        Query::approx_max_crs(20.0),
    ];
    assert_batch_matches_per_query(&prepared, &queries, "in-memory");

    // Trivial batches.
    assert!(prepared.run_batch(&[]).unwrap().is_empty());
    let external = engine_with(tiny_config(), 1)
        .prepare(&pseudo_random_objects(2000, 9, 1000.0))
        .unwrap();
    assert!(external.run_batch(&[]).unwrap().is_empty());
    // A batch of only k = 0 top-k queries needs no sweep at all.
    let runs = external
        .run_batch(&[Query::top_k(size, 0), Query::top_k(size, 0)])
        .unwrap();
    for run in &runs {
        assert!(run.answer.placements().unwrap().is_empty());
        assert_eq!(run.io.total(), 0);
    }

    // Degenerate MinRS domains flow through the batch path externally too.
    let deg = [
        Query::min_rs(size, Rect::new(500.0, 500.0, 0.0, 1000.0)),
        Query::min_rs(size, Rect::new(0.0, 1000.0, 500.0, 500.0)),
    ];
    assert_batch_matches_per_query(&external, &deg, "degenerate-external");
}

#[test]
fn engine_run_batch_matches_engine_run() {
    let objects = pseudo_random_objects(2500, 31, 10_000.0);
    let engine = engine_with(tiny_config(), 1);
    let size = RectSize::square(900.0);
    let queries = [
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::approx_max_crs(900.0),
        Query::min_rs(size, Rect::new(1000.0, 9000.0, 1000.0, 9000.0)),
    ];
    let batched = engine.run_batch(&objects, &queries).unwrap();
    assert_eq!(batched.len(), queries.len());
    for (query, run) in queries.iter().zip(&batched) {
        let single = engine.run(&objects, query).unwrap();
        assert_eq!(run.answer, single.answer, "{}", query.name());
    }
    // The first run carries the one-time preparation (the external x-sort).
    assert!(batched[0].io.total() > 0);

    // An empty batch is answered without touching the dataset at all.
    assert!(engine.run_batch(&objects, &[]).unwrap().is_empty());

    // Invalid queries fail the whole batch up front.
    assert!(engine
        .run_batch(
            &objects,
            &[
                Query::max_rs(size),
                Query::MaxRs {
                    size: RectSize {
                        width: -1.0,
                        height: 1.0,
                    },
                },
            ],
        )
        .is_err());
}
