//! Backend-parity property test: for random datasets, the filesystem-backed
//! device ([`FsDisk`] via [`StorageBackend::Fs`]) and the RAM simulation
//! produce **bit-identical answers and identical logical block-I/O counts**
//! for all four [`Query`] variants.
//!
//! This is the contract that keeps the paper's Table-style I/O measurements
//! meaningful when the storage backend changes: the EM cost model counts
//! logical block transfers, and nothing below the [`BlockDevice`] trait may
//! influence them.

use maxrs_core::{load_objects, EngineOptions, ExactMaxRsOptions, MaxRsEngine, Query};
use maxrs_em::{EmConfig, EmContext, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// A tie-heavy grid: coordinates and weights collide massively, the worst
/// case for any order- or tie-dependent divergence between backends.
fn grid_objects(n: usize) -> Vec<WeightedPoint> {
    (0..n)
        .map(|i| {
            let x = ((i * 37) % 40) as f64 * 100.0;
            let y = ((i * 61) % 40) as f64 * 100.0;
            WeightedPoint::at(x, y, 1.0 + (i % 3) as f64)
        })
        .collect()
}

fn engine(config: EmConfig) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// Runs every query variant over `objects` on both backends and asserts the
/// answers and the logical I/O snapshots match exactly.
fn assert_backend_parity(objects: &[WeightedPoint], size: RectSize, domain: Rect, label: &str) {
    let base = EmConfig::new(512, 16 * 512).unwrap();
    let queries = [
        Query::max_rs(size),
        Query::top_k(size, 3),
        Query::min_rs(size, domain),
        Query::approx_max_crs(size.width),
    ];
    for query in &queries {
        let mut outcomes = Vec::new();
        for backend in [StorageBackend::Sim, StorageBackend::Fs] {
            let config = base.with_backend(backend);
            let ctx = EmContext::new(config);
            assert_eq!(ctx.backend_name(), backend.name());
            let file = load_objects(&ctx, objects).unwrap();
            let run = engine(config).run_file(&ctx, &file, query).unwrap();
            // Prepared reuse must be backend-invariant too.
            let prepared = engine(config).prepare_file(&ctx, &file).unwrap();
            let warm = prepared.run(query).unwrap();
            assert_eq!(warm.answer, run.answer, "{label}/{}", query.name());
            drop(prepared);
            ctx.delete_file(file).unwrap();
            outcomes.push((run, warm.io));
        }
        let (sim, sim_warm) = &outcomes[0];
        let (fs, fs_warm) = &outcomes[1];
        assert_eq!(
            sim.answer,
            fs.answer,
            "{label}/{}: answers diverge across backends",
            query.name()
        );
        assert_eq!(sim.strategy, fs.strategy, "{label}/{}", query.name());
        assert_eq!(
            sim.io,
            fs.io,
            "{label}/{}: logical I/O counts diverge across backends",
            query.name()
        );
        assert_eq!(
            sim_warm,
            fs_warm,
            "{label}/{}: prepared-run I/O diverges across backends",
            query.name()
        );
    }
}

#[test]
fn random_datasets_are_backend_invariant() {
    for (seed, n) in [(11u64, 900), (29, 1500)] {
        let objects = pseudo_random_objects(n, seed, 50_000.0);
        assert_backend_parity(
            &objects,
            RectSize::square(4_000.0),
            Rect::new(5_000.0, 45_000.0, 5_000.0, 45_000.0),
            &format!("seed{seed}"),
        );
    }
}

#[test]
fn tie_heavy_grid_is_backend_invariant() {
    let objects = grid_objects(1200);
    assert_backend_parity(
        &objects,
        RectSize::square(450.0),
        Rect::new(0.0, 4_000.0, 0.0, 4_000.0),
        "grid",
    );
}

#[test]
fn rectangular_queries_and_small_files_are_backend_invariant() {
    // Non-square extents plus a dataset small enough that the in-memory
    // strategy triggers: its scan I/O must match across backends too.
    let objects = pseudo_random_objects(300, 5, 10_000.0);
    let base = EmConfig::new(4096, 16 * 4096).unwrap();
    let query = Query::max_rs(RectSize::new(1_500.0, 600.0));
    let mut runs = Vec::new();
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let config = base.with_backend(backend);
        let ctx = EmContext::new(config);
        let file = load_objects(&ctx, &objects).unwrap();
        let run = engine(config).run_file(&ctx, &file, &query).unwrap();
        ctx.delete_file(file).unwrap();
        runs.push(run);
    }
    assert_eq!(runs[0].answer, runs[1].answer);
    assert_eq!(runs[0].io, runs[1].io);
}
