//! Regression tests for the parallel slab stage: `parallelism = 1` (the
//! paper's sequential distribution sweep) and `parallelism = N` (parallel
//! children + pairwise tree reduction) must return the **identical**
//! [`MaxRsResult`] — location, weight and max-region — on synthetic datasets.
//!
//! The datasets use integer-valued weights, for which the tree reduction is
//! bit-for-bit equivalent to the flat sweep (floating-point sums of integers
//! in this range are exact regardless of association).

use maxrs_core::{exact_max_rs_from_objects, max_rs_in_memory, ExactMaxRsOptions, MaxRsResult};
use maxrs_em::{EmConfig, EmContext};
use maxrs_geometry::{RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let x = next() * extent;
            let y = next() * extent;
            let w = 1.0 + (next() * 4.0).floor(); // integer weights 1..=5
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

/// A context whose buffer is large enough that `effective_parallelism` does
/// not cap the worker count back to 1 (64 pool blocks -> up to 8 workers).
fn parallel_ctx() -> EmContext {
    EmContext::new(EmConfig::new(256, 64 * 256).unwrap())
}

fn run(objects: &[WeightedPoint], size: RectSize, opts: &ExactMaxRsOptions) -> MaxRsResult {
    let ctx = parallel_ctx();
    exact_max_rs_from_objects(&ctx, objects, size, opts).unwrap()
}

#[test]
fn parallel_and_sequential_results_are_identical() {
    for (n, seed, extent, side) in [
        (300usize, 7u64, 1000.0, 90.0),
        (500, 42, 2500.0, 200.0),
        (800, 1234, 800.0, 35.0),
    ] {
        let objects = pseudo_random_objects(n, seed, extent);
        let size = RectSize::square(side);
        // Force several recursion levels regardless of the roomy pool.
        let base = ExactMaxRsOptions {
            memory_rects: Some(48),
            fanout: Some(4),
            ..Default::default()
        };
        let sequential = run(
            &objects,
            size,
            &ExactMaxRsOptions {
                parallelism: 1,
                ..base
            },
        );
        for workers in [2usize, 3, 8] {
            let parallel = run(
                &objects,
                size,
                &ExactMaxRsOptions {
                    parallelism: workers,
                    ..base
                },
            );
            assert_eq!(
                parallel, sequential,
                "n={n} seed={seed} workers={workers}: parallel result diverged"
            );
        }
        // Both agree with the in-memory reference on the achieved weight.
        let reference = max_rs_in_memory(&objects, size);
        assert_eq!(sequential.total_weight, reference.total_weight);
    }
}

#[test]
fn parallel_results_are_stable_across_repeated_runs() {
    // Thread scheduling varies between runs; the answer must not.
    let objects = pseudo_random_objects(600, 99, 1500.0);
    let size = RectSize::square(120.0);
    let opts = ExactMaxRsOptions {
        memory_rects: Some(32),
        fanout: Some(6),
        parallelism: 8,
        ..Default::default()
    };
    let first = run(&objects, size, &opts);
    for round in 0..5 {
        assert_eq!(run(&objects, size, &opts), first, "round {round} diverged");
    }
}

#[test]
fn parallel_path_handles_duplicate_x_coordinates() {
    // Heavy ties on x collapse slab boundaries; the parallel path must take
    // the same fallback as the sequential one.
    let mut objects = Vec::new();
    for i in 0..200 {
        let x = [10.0, 20.0, 30.0][i % 3];
        objects.push(WeightedPoint::at(x, i as f64, 1.0));
    }
    let size = RectSize::new(5.0, 400.0);
    let base = ExactMaxRsOptions {
        memory_rects: Some(20),
        fanout: Some(4),
        ..Default::default()
    };
    let sequential = run(
        &objects,
        size,
        &ExactMaxRsOptions {
            parallelism: 1,
            ..base
        },
    );
    let parallel = run(
        &objects,
        size,
        &ExactMaxRsOptions {
            parallelism: 4,
            ..base
        },
    );
    assert_eq!(parallel, sequential);
}

#[test]
fn parallel_path_cleans_up_temporaries() {
    let ctx = parallel_ctx();
    let objects = pseudo_random_objects(500, 11, 900.0);
    let opts = ExactMaxRsOptions {
        memory_rects: Some(40),
        fanout: Some(5),
        parallelism: 4,
        ..Default::default()
    };
    let before_files = ctx.num_files();
    let _ = exact_max_rs_from_objects(&ctx, &objects, RectSize::square(60.0), &opts).unwrap();
    assert_eq!(
        ctx.num_files(),
        before_files,
        "parallel run must delete every temporary file"
    );
    assert_eq!(ctx.disk_blocks(), 0);
}
