//! Sharded-execution regression tests: a [`ShardedDataset`] must answer
//! **bit-identically** to the unsharded [`PreparedDataset`] — all four
//! [`Query`] variants, shard counts K ∈ {1, 2, 7}, both storage backends,
//! rectangles wider than a whole shard (so every answer crosses shard
//! boundaries through the span-event decomposition) and tie-heavy data with
//! object x-coordinates sitting exactly on shard boundaries.  Also proves
//! with `IoSnapshot` arithmetic that the K-way parallel prepare moves no
//! more logical I/O than the single unsharded external sort.

use maxrs_core::{
    EngineOptions, ExactMaxRsOptions, MaxRsEngine, PreparedDataset, Query, ShardLayout,
    ShardedDataset,
};
use maxrs_em::{EmConfig, StorageBackend};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// Coordinates snapped to a coarse grid: heavy duplicate mass on x, so shard
/// boundaries (which are quantiles of those x-values) coincide exactly with
/// object coordinates and rectangle edges — the tie cases the boundary
/// routing must get right.
fn tie_heavy_objects(n: usize, seed: u64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = (next() * 40.0).floor() * 25.0;
            let y = (next() * 40.0).floor() * 25.0;
            let w = if i % 5 == 0 {
                0.0
            } else {
                1.0 + (next() * 3.0).floor()
            };
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

fn tiny_config() -> EmConfig {
    EmConfig::new(512, 32 * 512).unwrap()
}

fn engine_with(config: EmConfig, parallelism: usize) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: config,
        exact: ExactMaxRsOptions {
            parallelism,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// All four variants at a size comparable to a shard's width plus a second
/// set at a size **wider than any shard** (extent 1000, K=7 ⇒ shards ≈ 140
/// wide), so optimal placements necessarily straddle boundaries.
fn variant_queries(extent: f64) -> Vec<Query> {
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    let narrow = Rect::new(0.05 * extent, 0.2 * extent, 0.2 * extent, 0.7 * extent);
    vec![
        Query::max_rs(RectSize::square(0.12 * extent)),
        Query::top_k(RectSize::square(0.12 * extent), 3),
        Query::min_rs(RectSize::square(0.12 * extent), domain),
        Query::approx_max_crs(0.12 * extent),
        // Wider than a whole shard at K = 7.
        Query::max_rs(RectSize::square(0.4 * extent)),
        Query::top_k(RectSize::square(0.4 * extent), 2),
        Query::min_rs(RectSize::square(0.4 * extent), narrow),
        Query::approx_max_crs(0.4 * extent),
    ]
}

fn assert_sharded_matches(
    sharded: &ShardedDataset,
    prepared: &PreparedDataset<'_>,
    queries: &[Query],
    tag: &str,
) {
    // Batched against batched (same grouping on both sides) ...
    let sharded_runs = sharded.run_batch(queries).unwrap();
    let unsharded_runs = prepared.run_batch(queries).unwrap();
    for ((query, s), u) in queries.iter().zip(&sharded_runs).zip(&unsharded_runs) {
        assert_eq!(
            s.answer,
            u.answer,
            "{tag}: sharded {} diverged from unsharded batch",
            query.name()
        );
    }
    // ... and one-at-a-time against one-at-a-time.
    for query in queries {
        assert_eq!(
            sharded.run(query).unwrap().answer,
            prepared.run(query).unwrap().answer,
            "{tag}: sharded {} diverged from unsharded run",
            query.name()
        );
    }
}

#[test]
fn sharded_answers_are_bit_identical_on_both_backends() {
    let extent = 1000.0;
    let queries = variant_queries(extent);
    for backend in [StorageBackend::Sim, StorageBackend::Fs] {
        let config = tiny_config().with_backend(backend);
        let objects = pseudo_random_objects(2500, 11, extent);
        let engine = engine_with(config, 2);
        let prepared = engine.prepare(&objects).unwrap();
        assert!(prepared.is_external());
        for k in [1usize, 2, 7] {
            let sharded = engine
                .prepare_sharded(&objects, &ShardLayout::new(k))
                .unwrap();
            assert_eq!(sharded.num_shards(), k, "{}: K={k}", backend.name());
            assert_eq!(sharded.len(), prepared.len());
            assert_sharded_matches(
                &sharded,
                &prepared,
                &queries,
                &format!("{} K={k}", backend.name()),
            );
        }
    }
}

#[test]
fn sharded_answers_are_bit_identical_on_tie_heavy_data() {
    // Grid-snapped x: shard boundaries land exactly on object coordinates
    // and rectangle edges, exercising the objects-at-a-boundary-go-right
    // routing and the degenerately-touching rectangle crops.
    let objects = tie_heavy_objects(3000, 7);
    let engine = engine_with(tiny_config(), 2);
    let prepared = engine.prepare(&objects).unwrap();
    assert!(prepared.is_external());
    let queries = variant_queries(1000.0);
    for k in [2usize, 7] {
        let sharded = engine
            .prepare_sharded(&objects, &ShardLayout::new(k))
            .unwrap();
        assert_sharded_matches(&sharded, &prepared, &queries, &format!("tie-heavy K={k}"));
    }
}

#[test]
fn sharded_prepare_io_is_bounded_by_the_unsharded_sort() {
    // K shards each external-sort ~N/K records: the same record volume in
    // no more merge passes than the single big sort, so the *logical* I/O
    // must not exceed ~1x the unsharded prepare (small slack for per-shard
    // partial-block rounding).
    let objects = pseudo_random_objects(6000, 17, 10_000.0);
    let engine = engine_with(tiny_config(), 4);
    let prepared = engine.prepare(&objects).unwrap();
    assert!(prepared.is_external());
    let unsharded_io = prepared.prepare_io().total();
    assert!(unsharded_io > 0);

    let sharded = engine
        .prepare_sharded(&objects, &ShardLayout::new(4))
        .unwrap();
    assert_eq!(sharded.num_shards(), 4);
    let sharded_io = sharded.prepare_io().total();
    assert!(sharded_io > 0);
    assert!(
        sharded_io <= unsharded_io + unsharded_io / 10 + 8,
        "4-way sharded prepare moved {sharded_io} blocks vs {unsharded_io} unsharded"
    );

    // Per-shard attribution adds up to the total.
    let per_shard: u64 = sharded
        .prepare_io_per_shard()
        .iter()
        .map(|io| io.total())
        .sum();
    assert_eq!(per_shard, sharded_io);
}
