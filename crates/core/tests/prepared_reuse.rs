//! Regression tests for [`PreparedDataset`]: the one-time external x-sort is
//! genuinely amortized (later queries do **zero** external-sort I/O, proven
//! with [`IoSnapshot::total_delta`](maxrs_em::IoSnapshot::total_delta)
//! arithmetic against a sort lower bound), answers stay bit-identical to
//! single-shot engine
//! calls, and the retained sorted file is RAII-cleaned so `disk_blocks()`
//! returns to its baseline.

use maxrs_core::{
    load_objects, EngineOptions, ExactMaxRsOptions, MaxRsEngine, ObjectRecord, Query,
};
use maxrs_em::{EmConfig, EmContext, Record};
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// A small-buffer configuration under which a few thousand objects need a
/// genuinely multi-pass external sort (16 pool blocks, 341 objects in
/// memory, fan-out 14).
fn tiny_config() -> EmConfig {
    EmConfig::new(512, 16 * 512).unwrap()
}

fn engine() -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: tiny_config(),
        exact: ExactMaxRsOptions {
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// Blocks one scan of the object file occupies: the unit of the sort's cost.
fn object_blocks(config: EmConfig, n: u64) -> u64 {
    n.div_ceil((config.block_size / ObjectRecord::SIZE) as u64)
}

#[test]
fn second_run_performs_zero_external_sort_io() {
    let config = tiny_config();
    let objects = pseudo_random_objects(6000, 17, 100_000.0);
    let ctx = EmContext::new(config);
    let file = load_objects(&ctx, &objects).unwrap();
    let engine = engine();
    let query = Query::max_rs(RectSize::square(8_000.0));

    // Cold single-shot run: pays transform + external sort + sweep.
    let cold = engine.run_file(&ctx, &file, &query).unwrap();

    // Prepared: the sort is paid once, here, and never again.
    let prepared = engine.prepare_file(&ctx, &file).unwrap();
    assert!(prepared.is_external());
    let first = prepared.run(&query).unwrap();
    let second = prepared.run(&query).unwrap();

    assert_eq!(first.answer, cold.answer, "prepared answers are identical");
    assert_eq!(second.answer, cold.answer);

    // The sort's run-formation pass alone reads and writes every object
    // block once, so any run that sorts costs at least `2 * N/B` more than
    // one that does not.  The IoSnapshot counters must show the prepared
    // runs below the cold run by at least that much: zero sort I/O.
    let sort_floor = 2 * object_blocks(config, file.len());
    assert!(
        prepared.prepare_io().total() >= sort_floor,
        "prepare pays the sort: {} < {sort_floor}",
        prepared.prepare_io()
    );
    for (name, run) in [("first", &first), ("second", &second)] {
        assert!(run.io.total() > 0, "{name} run does the sweep's I/O");
        assert!(
            cold.io.total_delta(&run.io) >= sort_floor,
            "{name} prepared run ({}) must undercut the cold run ({}) by \
             the sort floor ({sort_floor}): it re-sorted",
            run.io,
            cold.io
        );
    }
    // Pool warmth can only help the second run, never hurt it.
    assert!(second.io.total() <= first.io.total());

    ctx.delete_file(file).unwrap();
}

#[test]
fn every_variant_reuses_the_prepared_sort() {
    let config = tiny_config();
    let objects = pseudo_random_objects(3000, 41, 50_000.0);
    let engine = engine();
    let prepared = engine.prepare(&objects).unwrap();
    let size = RectSize::square(4_000.0);
    let domain = Rect::new(5_000.0, 45_000.0, 5_000.0, 45_000.0);
    let sort_floor = 2 * object_blocks(config, objects.len() as u64);

    for query in [
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::min_rs(size, domain),
        Query::approx_max_crs(4_000.0),
    ] {
        let warm = prepared.run(&query).unwrap();
        let cold = engine.run(&objects, &query).unwrap();
        assert_eq!(warm.answer, cold.answer, "{}", query.name());
        assert!(
            cold.io.total_delta(&warm.io) >= sort_floor,
            "{}: warm {} vs cold {} (sort floor {sort_floor})",
            query.name(),
            warm.io,
            cold.io
        );
    }
}

#[test]
fn dropping_a_prepared_dataset_returns_disk_blocks_to_baseline() {
    let objects = pseudo_random_objects(4000, 7, 10_000.0);
    let ctx = EmContext::new(tiny_config());
    let file = load_objects(&ctx, &objects).unwrap();
    ctx.flush_all().unwrap();
    let baseline_blocks = ctx.disk_blocks();
    let baseline_files = ctx.num_files();

    let engine = engine();
    {
        let prepared = engine.prepare_file(&ctx, &file).unwrap();
        assert!(
            ctx.disk_blocks() > baseline_blocks,
            "the retained sorted file occupies blocks"
        );
        assert_eq!(ctx.num_files(), baseline_files + 1);
        // Queries allocate and free their own temporaries.
        let _ = prepared
            .run(&Query::max_rs(RectSize::square(500.0)))
            .unwrap();
        let _ = prepared
            .run(&Query::top_k(RectSize::square(500.0), 2))
            .unwrap();
    }
    // RAII: dropping the dataset deleted the sorted file's blocks.
    assert_eq!(
        ctx.disk_blocks(),
        baseline_blocks,
        "prepared dataset leaked blocks"
    );
    assert_eq!(
        ctx.num_files(),
        baseline_files,
        "prepared dataset leaked files"
    );

    ctx.delete_file(file).unwrap();
    assert_eq!(ctx.num_files(), 0);
}

#[test]
fn repeated_prepares_on_one_context_do_not_accumulate_blocks() {
    // A long-running engine preparing the same context many times must end
    // at its baseline: the leak regression this PR's RAII guard prevents.
    let objects = pseudo_random_objects(2000, 3, 1_000.0);
    let ctx = EmContext::new(tiny_config());
    let file = load_objects(&ctx, &objects).unwrap();
    ctx.flush_all().unwrap();
    let baseline = ctx.disk_blocks();
    let engine = engine();
    for round in 0..5 {
        let prepared = engine.prepare_file(&ctx, &file).unwrap();
        let run = prepared
            .run(&Query::max_rs(RectSize::square(100.0)))
            .unwrap();
        assert!(run.io.total() > 0, "round {round}");
        drop(prepared);
        assert_eq!(ctx.disk_blocks(), baseline, "round {round} leaked");
    }
    ctx.delete_file(file).unwrap();
}
