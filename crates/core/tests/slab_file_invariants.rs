//! Integration tests of the internal data-structure invariants of the
//! distribution sweep: slab-files, distribution, MergeSweep and the recursion,
//! checked against each other on generated inputs.

use maxrs_core::{
    compute_partition, distribute, exact_max_rs, load_objects, max_rs_in_memory, merge_sweep,
    plane_sweep_slab, transform_objects, transform_to_rect_file, BoundarySource, ExactMaxRsOptions,
    RectRecord, SlabTuple, SpanEvent,
};
use maxrs_em::{EmConfig, EmContext};
use maxrs_geometry::{Interval, RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 2.0).floor(),
            )
        })
        .collect()
}

fn ctx() -> EmContext {
    EmContext::new(EmConfig::new(512, 8 * 512).unwrap())
}

/// Lemma 2: a slab-file has at most two tuples per rectangle, tuples are
/// strictly increasing in y, and the final tuple reports weight 0.
#[test]
fn slab_file_structural_invariants() {
    let objects = pseudo_random_objects(500, 3, 5000.0);
    let rects = transform_objects(&objects, RectSize::square(300.0));
    for slab in [
        Interval::UNBOUNDED,
        Interval::new(0.0, 2500.0),
        Interval::new(2500.0, 5000.0),
    ] {
        let tuples = plane_sweep_slab(&rects, slab);
        let in_slab = rects
            .iter()
            .filter(|r| r.rect.x_lo <= slab.hi && r.rect.x_hi >= slab.lo)
            .count();
        assert!(tuples.len() <= 2 * in_slab, "Lemma 2 violated");
        assert!(
            tuples.windows(2).all(|w| w[0].y < w[1].y),
            "tuples must be strictly y-sorted (one per h-line)"
        );
        assert!(tuples.iter().all(|t| t.sum >= 0.0));
        assert_eq!(
            tuples.last().unwrap().sum,
            0.0,
            "above all rectangles the weight is 0"
        );
        // Every max-interval stays within the slab.
        assert!(tuples
            .iter()
            .all(|t| t.x_lo >= slab.lo && t.x_hi <= slab.hi));
    }
}

/// Distribution: pieces are confined to their slabs, spanning events pair up,
/// and the total "mass" (weight x y-extent x coverage) is preserved.
#[test]
fn distribution_preserves_coverage() {
    let ctx = ctx();
    let objects = pseudo_random_objects(400, 9, 10_000.0);
    let size = RectSize::square(800.0);
    let obj_file = load_objects(&ctx, &objects).unwrap();
    let rect_file = transform_to_rect_file(&ctx, &obj_file, size).unwrap();
    let partition = compute_partition(
        &ctx,
        &rect_file,
        Interval::UNBOUNDED,
        6,
        BoundarySource::Sampled(1024),
    )
    .unwrap();
    let dist = distribute(&ctx, &rect_file, &partition).unwrap();

    // Piece confinement.
    for (i, f) in dist.slab_inputs.iter().enumerate() {
        let slab = dist.partition.slab(i);
        for r in ctx.read_all(f).unwrap() {
            assert!(
                r.rect.x_lo >= slab.lo && r.rect.x_hi <= slab.hi,
                "piece escapes slab {i}"
            );
        }
    }

    // Span events: sorted by y, start/end counts balance per slab range.
    let spans: Vec<SpanEvent> = ctx.read_all(&dist.span_events).unwrap();
    assert!(spans.windows(2).all(|w| w[0].y <= w[1].y));
    let starts = spans.iter().filter(|e| e.is_start).count();
    assert_eq!(
        starts * 2,
        spans.len(),
        "every spanning rectangle has two events"
    );

    // Mass conservation: sum of weight * width * height over the original
    // rectangles equals pieces + spanned slabs.
    let mass = |r: &RectRecord| r.weight * r.rect.width() * r.rect.height();
    let original: f64 = ctx.read_all(&rect_file).unwrap().iter().map(mass).sum();
    let mut pieces: f64 = 0.0;
    for f in &dist.slab_inputs {
        pieces += ctx.read_all(f).unwrap().iter().map(mass).sum::<f64>();
    }
    // Spanned mass without pairing events explicitly: each spanning rectangle
    // contributes weight * width * (y_end - y_start), which telescopes to
    // sum over end events minus sum over start events of weight * width * y.
    let mut spanned = 0.0;
    for e in &spans {
        let width: f64 = (e.slab_lo..=e.slab_hi)
            .map(|i| dist.partition.slab(i as usize).length())
            .sum();
        let signed = if e.is_start { -1.0 } else { 1.0 };
        spanned += signed * e.weight * width * e.y;
    }
    let relative = ((pieces + spanned) - original).abs() / original.max(1.0);
    assert!(relative < 1e-6, "coverage mass changed by {relative}");
}

/// MergeSweep output is itself a well-formed slab-file and its maximum equals
/// the maximum of a flat sweep.
#[test]
fn merge_sweep_output_is_a_valid_slab_file() {
    let ctx = ctx();
    let objects = pseudo_random_objects(300, 17, 4000.0);
    let size = RectSize::square(250.0);
    let rects = transform_objects(&objects, size);

    let boundary = 2000.0;
    let slabs = [
        Interval::new(f64::NEG_INFINITY, boundary),
        Interval::new(boundary, f64::INFINITY),
    ];
    let files = [
        ctx.write_all(&plane_sweep_slab(&rects, slabs[0])).unwrap(),
        ctx.write_all(&plane_sweep_slab(&rects, slabs[1])).unwrap(),
    ];
    let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
    let merged = merge_sweep(&ctx, &files, &slabs, &spans).unwrap();
    let tuples: Vec<SlabTuple> = ctx.read_all(&merged).unwrap();

    assert!(tuples.windows(2).all(|w| w[0].y < w[1].y));
    let merged_max = tuples
        .iter()
        .map(|t| t.sum)
        .fold(f64::NEG_INFINITY, f64::max);
    let flat = max_rs_in_memory(&objects, size);
    assert_eq!(merged_max, flat.total_weight);
}

/// The recursion depth (via tiny memory thresholds) does not change the answer
/// and intermediate storage is bounded.
#[test]
fn deep_recursion_is_consistent_and_bounded() {
    let objects = pseudo_random_objects(800, 23, 20_000.0);
    let size = RectSize::square(900.0);
    let reference = max_rs_in_memory(&objects, size);
    for mem in [16usize, 64, 256] {
        let ctx = ctx();
        let file = load_objects(&ctx, &objects).unwrap();
        let opts = ExactMaxRsOptions {
            memory_rects: Some(mem),
            fanout: Some(3),
            ..Default::default()
        };
        let result = exact_max_rs(&ctx, &file, size, &opts).unwrap();
        assert_eq!(result.total_weight, reference.total_weight, "mem={mem}");
        // All temporaries cleaned up: only the object file can remain on disk.
        assert!(
            ctx.disk_blocks()
                <= ctx
                    .config()
                    .blocks_for::<maxrs_core::ObjectRecord>(file.len()),
            "mem={mem}: {} blocks left on disk",
            ctx.disk_blocks()
        );
    }
}
