//! Property tests for delta-main compaction, over randomized event sequences
//! with compaction triggered at arbitrary points:
//!
//! (a) compaction is **answer-invariant** — every query variant answers
//!     bit-identically just before and just after `compact()`, wherever it
//!     lands in the stream;
//! (b) after compaction the delta is empty and the context's disk blocks
//!     return to the single-sorted-run baseline (no temporaries, no stale
//!     base run survive);
//! (c) compaction's I/O stays within a constant factor of the `2·N/B` merge
//!     floor (one sequential read of the old base + one sequential write of
//!     the new run), proven with [`IoSnapshot`](maxrs_em::IoSnapshot)
//!     arithmetic — the analogue of `prepared_reuse.rs`'s sort-floor math.

use maxrs_core::{
    DeltaDataset, DeltaOptions, EngineOptions, ExactMaxRsOptions, MaxRsEngine, ObjectRecord, Query,
};
use maxrs_datagen::{event_stream, EventStreamConfig};
use maxrs_em::{EmConfig, Record};
use maxrs_geometry::{Rect, RectSize};
use proptest::prelude::*;

fn tiny_config() -> EmConfig {
    EmConfig::new(512, 32 * 512).unwrap()
}

fn engine() -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: tiny_config(),
        exact: ExactMaxRsOptions {
            memory_rects: Some(64),
            parallelism: 1,
            ..Default::default()
        },
        force_strategy: None,
    })
}

/// Blocks one scan of `n` object records occupies — the `N/B` unit of the
/// merge floor.
fn object_blocks(config: EmConfig, n: u64) -> u64 {
    n.div_ceil((config.block_size / ObjectRecord::SIZE) as u64)
}

fn query_pool(extent: f64) -> Vec<Query> {
    let size = RectSize::square(0.05 * extent);
    let domain = Rect::new(0.1 * extent, 0.9 * extent, 0.1 * extent, 0.9 * extent);
    vec![
        Query::max_rs(size),
        Query::top_k(size, 2),
        Query::min_rs(size, domain),
        Query::approx_max_crs(size.width),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn compaction_at_an_arbitrary_point_is_answer_invariant_and_bounded(
        params in (1u64..1_000_000, 500usize..1_200, 0.15f64..0.85, 0.05f64..0.45)
    ) {
        let (seed, events, cut, delete_fraction) = params;
        let cfg = EventStreamConfig {
            events,
            delete_fraction,
            ..Default::default()
        };
        let stream = event_stream(&cfg, seed);
        let split = ((stream.len() as f64) * cut) as usize;
        let engine = engine();
        let queries = query_pool(cfg.extent);
        let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();

        // Phase 1: build up a base (compact once mid-build so the base run
        // is non-trivial), then stream the tail to refill the delta.
        delta.apply(&stream[..split]).unwrap();
        delta.compact().unwrap();
        delta.apply(&stream[split..]).unwrap();

        let before: Vec<_> = queries
            .iter()
            .map(|q| delta.run(q).unwrap().answer)
            .collect();
        let pending = delta.delta_len();
        let base_before = delta.base_len();

        let report = delta.compact().unwrap();

        // (a) Answer invariance, wherever the cut fell.
        for (query, want) in queries.iter().zip(&before) {
            let after = delta.run(query).unwrap().answer;
            prop_assert_eq!(
                &after, want,
                "{} changed across compact() at cut {} of {}",
                query.name(), split, stream.len()
            );
        }

        // (b) The delta drains and the disk returns to exactly one sorted
        // run of the net dataset — no temporaries, no stale base.
        prop_assert_eq!(delta.delta_len(), 0);
        prop_assert_eq!(report.delta_records, pending);
        prop_assert_eq!(report.base_after, delta.len());
        delta.context().flush_all().unwrap();
        prop_assert_eq!(delta.context().num_files(), 1);
        prop_assert_eq!(
            delta.context().disk_blocks(),
            object_blocks(tiny_config(), delta.len()),
            "disk must hold the single merged run and nothing else"
        );

        // (c) I/O within a constant factor of the 2·N/B merge floor: one
        // sequential read of the old base plus one sequential write (and
        // flush) of the new run.  Buffer-pool hits can push reads *below*
        // the raw block count, so only the upper bound is asserted.
        let floor = object_blocks(tiny_config(), base_before)
            + object_blocks(tiny_config(), report.base_after);
        prop_assert!(
            report.io.total() <= 2 * floor + 8,
            "compaction I/O {} exceeds 2×floor {} (+8 slack): not a single \
             sequential merge pass",
            report.io,
            floor
        );

        // A follow-up compaction with nothing pending is free.
        let noop = delta.compact().unwrap();
        prop_assert_eq!(noop.io.total(), 0);
        prop_assert_eq!(noop.base_after, noop.base_before);
    }

    #[test]
    fn repeated_threshold_compactions_never_leak_blocks(
        params in (1u64..1_000_000, 60u64..240)
    ) {
        use maxrs_core::CompactionPolicy;
        let (seed, max_delta) = params;

        let cfg = EventStreamConfig {
            events: 1_500,
            delete_fraction: 0.35,
            ..Default::default()
        };
        let stream = event_stream(&cfg, seed);
        let engine = engine();
        let mut delta = DeltaDataset::new(
            &engine,
            DeltaOptions {
                policy: CompactionPolicy::DeltaThreshold { max_delta },
                window: None,
            },
        )
        .unwrap();
        for chunk in stream.chunks(100) {
            delta.apply(chunk).unwrap();
        }
        prop_assert!(delta.compactions() >= 1, "threshold never fired");

        // However many compactions ran, the disk holds one base run plus
        // the still-pending delta's nothing: base blocks only.
        delta.context().flush_all().unwrap();
        prop_assert_eq!(delta.context().num_files(), 1);
        prop_assert_eq!(
            delta.context().disk_blocks(),
            object_blocks(tiny_config(), delta.base_len())
        );

        // And the final state still answers like a from-scratch prepare.
        let query = Query::max_rs(RectSize::square(0.05 * cfg.extent));
        let expected = engine
            .prepare(&delta.survivors())
            .unwrap()
            .run(&query)
            .unwrap();
        prop_assert_eq!(delta.run(&query).unwrap().answer, expected.answer);
    }
}
