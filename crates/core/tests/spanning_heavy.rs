//! Stress tests for the spanning-rectangle path of the distribution sweep.
//!
//! When the query rectangle is wide relative to the slab width, most
//! transformed rectangles span several slabs, so the correctness of
//! `upSum` bookkeeping in MergeSweep dominates the answer.  These tests build
//! workloads where nearly every rectangle spans nearly every slab and check
//! the external pipeline against the in-memory sweep and brute force.

use maxrs_core::{
    brute_force_max_rs, exact_max_rs_from_objects, max_rs_in_memory, rect_objective,
    ExactMaxRsOptions,
};
use maxrs_em::{EmConfig, EmContext};
use maxrs_geometry::{RectSize, WeightedPoint};

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            WeightedPoint::at(
                next() * extent,
                next() * extent,
                1.0 + (next() * 4.0).floor(),
            )
        })
        .collect()
}

/// Query rectangles wider than the whole data extent: every transformed
/// rectangle spans every interior slab.
#[test]
fn query_wider_than_the_data_space() {
    let objects = pseudo_random_objects(400, 5, 100.0);
    // 100-unit data extent, 500-unit wide and 30-unit tall query.
    let size = RectSize::new(500.0, 30.0);
    let reference = max_rs_in_memory(&objects, size);
    let ctx = EmContext::new(EmConfig::new(512, 4 * 512).unwrap());
    let opts = ExactMaxRsOptions {
        memory_rects: Some(32),
        fanout: Some(4),
        ..Default::default()
    };
    let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
    assert_eq!(external.total_weight, reference.total_weight);
    assert_eq!(
        rect_objective(&objects, external.center, size),
        external.total_weight
    );
    // A 30-unit tall window over 100 units of y cannot usually cover everything.
    let total: f64 = objects.iter().map(|o| o.weight).sum();
    assert!(external.total_weight <= total);
}

/// Mixed aspect ratios, including extremely tall and extremely wide queries.
#[test]
fn extreme_aspect_ratios_match_brute_force() {
    let objects = pseudo_random_objects(50, 77, 60.0);
    for (w, h) in [(1.0, 200.0), (200.0, 1.0), (80.0, 3.0), (3.0, 80.0)] {
        let size = RectSize::new(w, h);
        let brute = brute_force_max_rs(&objects, size);
        let ctx = EmContext::new(EmConfig::new(512, 4 * 512).unwrap());
        let opts = ExactMaxRsOptions {
            memory_rects: Some(16),
            fanout: Some(3),
            ..Default::default()
        };
        let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
        assert_eq!(
            external.total_weight, brute.total_weight,
            "query {w}x{h} disagrees with brute force"
        );
        assert_eq!(
            rect_objective(&objects, external.center, size),
            external.total_weight
        );
    }
}

/// Clustered columns: objects arranged in a few dense vertical strips, so slab
/// boundaries fall inside clusters and many pieces + spans are produced.
#[test]
fn dense_vertical_strips() {
    let mut objects = Vec::new();
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for strip in 0..5 {
        let x0 = 100.0 * strip as f64;
        for _ in 0..80 {
            objects.push(WeightedPoint::at(x0 + next() * 2.0, next() * 300.0, 1.0));
        }
    }
    let size = RectSize::new(150.0, 40.0);
    let reference = max_rs_in_memory(&objects, size);
    for fanout in [2usize, 5, 9] {
        let ctx = EmContext::new(EmConfig::new(512, 4 * 512).unwrap());
        let opts = ExactMaxRsOptions {
            memory_rects: Some(40),
            fanout: Some(fanout),
            ..Default::default()
        };
        let external = exact_max_rs_from_objects(&ctx, &objects, size, &opts).unwrap();
        assert_eq!(
            external.total_weight, reference.total_weight,
            "fanout={fanout}"
        );
    }
}
