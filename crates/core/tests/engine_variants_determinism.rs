//! Regression tests for the unified query layer: for every [`Query`] variant,
//! the external-memory strategies — sequential *and* parallel — must return
//! the **identical** answer (centers, weights and regions, not merely equal
//! weights) as the in-memory reference algorithm on a ≥10k-point dataset.
//!
//! This is the determinism contract of the engine's canonical max-regions
//! (see `maxrs_core::exact`, "Canonical max-regions"): the distribution
//! sweep widens its winning interval back to the full arrangement cell, so
//! strategy selection can never change an answer.  Integer-valued weights
//! keep the parallel MergeSweep tree bit-for-bit equivalent to the flat
//! sweep.

use maxrs_core::{
    approx_max_crs_in_memory, max_k_rs_in_memory, max_rs_in_memory, min_rs_in_memory,
    rect_objective, EngineOptions, ExactMaxRsOptions, ExecutionStrategy, MaxRsEngine, Query,
    QueryAnswer,
};
use maxrs_em::EmConfig;
use maxrs_geometry::{Rect, RectSize, WeightedPoint};

const N: usize = 12_000;
const EXTENT: f64 = 100_000.0;

fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let x = next() * extent;
            let y = next() * extent;
            let w = 1.0 + (next() * 4.0).floor(); // integer weights 1..=5
            WeightedPoint::at(x, y, w)
        })
        .collect()
}

/// An engine forced onto the given strategy, with enough buffer for a real
/// parallel slab stage (64 pool blocks -> worker quota 8) and a memory
/// threshold small enough that 12k objects recurse through several
/// distribution levels.
fn engine(force: ExecutionStrategy) -> MaxRsEngine {
    MaxRsEngine::with_options(EngineOptions {
        em_config: EmConfig::new(4096, 64 * 4096).unwrap(),
        exact: ExactMaxRsOptions {
            memory_rects: Some(1024),
            fanout: Some(8),
            parallelism: 4,
            ..Default::default()
        },
        force_strategy: Some(force),
    })
}

/// Runs `query` under all three strategies and asserts each answer is
/// identical to `reference`.
fn assert_all_strategies_match(objects: &[WeightedPoint], query: &Query, reference: &QueryAnswer) {
    for force in [
        ExecutionStrategy::InMemory,
        ExecutionStrategy::ExternalSequential,
        ExecutionStrategy::ExternalParallel,
    ] {
        let run = engine(force).run(objects, query).unwrap();
        assert_eq!(
            run.strategy,
            force,
            "{}: forced strategy not honored",
            query.name()
        );
        if force == ExecutionStrategy::ExternalParallel {
            assert!(
                run.workers > 1,
                "{}: parallel run used 1 worker",
                query.name()
            );
        }
        if force != ExecutionStrategy::InMemory {
            assert!(
                run.io.total() > 0,
                "{}: external run did no I/O",
                query.name()
            );
        }
        assert_eq!(
            &run.answer,
            reference,
            "{}: {} answer diverged from the in-memory reference",
            query.name(),
            force.name()
        );
    }
}

#[test]
fn max_rs_is_strategy_independent_on_10k_points() {
    let objects = pseudo_random_objects(N, 7, EXTENT);
    let size = RectSize::square(2_500.0);
    let reference = QueryAnswer::MaxRs(max_rs_in_memory(&objects, size));
    assert_all_strategies_match(&objects, &Query::max_rs(size), &reference);
    // The shared reference answer is itself sane.
    if let QueryAnswer::MaxRs(r) = &reference {
        assert_eq!(rect_objective(&objects, r.center, size), r.total_weight);
        assert!(r.total_weight > 0.0);
    }
}

#[test]
fn top_k_is_strategy_independent_on_10k_points() {
    let objects = pseudo_random_objects(N, 21, EXTENT);
    let size = RectSize::square(2_000.0);
    let k = 4;
    let reference = QueryAnswer::TopK(max_k_rs_in_memory(&objects, size, k));
    if let QueryAnswer::TopK(placements) = &reference {
        assert_eq!(placements.len(), k, "dataset supports k rounds");
        assert!(placements
            .windows(2)
            .all(|w| w[0].total_weight >= w[1].total_weight));
    }
    assert_all_strategies_match(&objects, &Query::top_k(size, k), &reference);
}

#[test]
fn min_rs_is_strategy_independent_on_10k_points() {
    let objects = pseudo_random_objects(N, 93, EXTENT);
    let size = RectSize::square(3_000.0);
    let domain = Rect::new(20_000.0, 80_000.0, 20_000.0, 80_000.0);
    let reference = QueryAnswer::MinRs(min_rs_in_memory(&objects, size, domain));
    if let QueryAnswer::MinRs(r) = &reference {
        assert_eq!(rect_objective(&objects, r.center, size), r.total_weight);
        assert!(domain.contains_closed(&r.center));
    }
    assert_all_strategies_match(&objects, &Query::min_rs(size, domain), &reference);
}

#[test]
fn approx_max_crs_is_strategy_independent_on_10k_points() {
    let objects = pseudo_random_objects(N, 55, EXTENT);
    for epsilon in [0.25, 0.5] {
        let query = Query::ApproxMaxCrs {
            diameter: 4_000.0,
            epsilon,
        };
        let sigma = query.sigma_fraction().unwrap();
        let reference = QueryAnswer::MaxCrs(approx_max_crs_in_memory(&objects, 4_000.0, sigma));
        if let QueryAnswer::MaxCrs(r) = &reference {
            assert!(r.total_weight > 0.0);
        }
        assert_all_strategies_match(&objects, &query, &reference);
    }
}

#[test]
fn top_k_handles_tie_heavy_grids_identically() {
    // 10k objects snapped to a coarse grid: massive coordinate and weight
    // ties, the worst case for tie-breaking divergence between strategies.
    let objects: Vec<WeightedPoint> = (0..10_000)
        .map(|i| {
            let x = ((i * 37) % 100) as f64 * 1_000.0;
            let y = ((i * 61) % 100) as f64 * 1_000.0;
            WeightedPoint::at(x, y, 1.0 + (i % 3) as f64)
        })
        .collect();
    let size = RectSize::square(4_500.0);
    let reference = QueryAnswer::TopK(max_k_rs_in_memory(&objects, size, 3));
    assert_all_strategies_match(&objects, &Query::top_k(size, 3), &reference);
}
