//! Differential property tests: [`FrontierMap`] against the `BTreeMap`
//! reference model.
//!
//! Every operation the sweep structures use — insert, remove, point lookup,
//! the `get_or_insert_with` single-descent upsert, `seek` / `seek_gt`
//! successor queries, full cursor walks in both
//! directions, `bulk_load` from sorted input — is replayed against
//! `std::collections::BTreeMap` on randomized operation sequences, including
//! float keys routed through [`total_order_bits`] (the `NaN`-free total-order
//! encoding every float-keyed frontier in the workspace uses).  The map's
//! answers must match the model *exactly*; the model is the specification.

use std::collections::BTreeMap;

use maxrs_core::{total_order_bits, FrontierMap};
use proptest::prelude::*;

/// Replays one op sequence against both structures and checks every answer.
///
/// `ops` entries are `(op selector, key, value)`; keys are reduced modulo
/// `key_space` so sequences revisit keys often enough to exercise
/// replacement, removal and rebalancing.
fn run_differential(ops: &[(u8, u64, u64)], key_space: u64) {
    let mut map: FrontierMap<u64, u64> = FrontierMap::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for &(op, key, value) in ops {
        let k = key % key_space;
        match op % 7 {
            0 | 1 => {
                assert_eq!(map.insert(k, value), model.insert(k, value), "insert {k}");
            }
            2 => {
                assert_eq!(map.remove(&k), model.remove(&k), "remove {k}");
            }
            3 => {
                assert_eq!(map.get(&k), model.get(&k), "get {k}");
            }
            4 => {
                let got = map.seek(&k).map(|c| (*c.key(&map), *c.value(&map)));
                let want = model.range(k..).next().map(|(&k, &v)| (k, v));
                assert_eq!(got, want, "seek {k}");
            }
            5 => {
                let got = map.seek_gt(&k).map(|c| (*c.key(&map), *c.value(&map)));
                let want = model.range(k + 1..).next().map(|(&k, &v)| (k, v));
                assert_eq!(got, want, "seek_gt {k}");
            }
            _ => {
                // Upsert-then-mutate through the returned reference, against
                // the model's entry API.
                let got = {
                    let v = map.get_or_insert_with(k, || value);
                    *v = v.wrapping_add(1);
                    *v
                };
                let want = {
                    let v = model.entry(k).or_insert(value);
                    *v = v.wrapping_add(1);
                    *v
                };
                assert_eq!(got, want, "get_or_insert_with {k}");
            }
        }
        assert_eq!(map.len(), model.len(), "len after op on {k}");
    }
    // Full forward walk via cursor must equal the model's iteration order.
    let mut walked = Vec::new();
    let mut cur = map.cursor_first();
    while let Some(c) = cur {
        walked.push((*c.key(&map), *c.value(&map)));
        cur = c.advance(&map);
    }
    let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(walked, expected, "forward cursor walk");
    // And the backward walk is its mirror.
    let mut back = Vec::new();
    let mut cur = map.cursor_last();
    while let Some(c) = cur {
        back.push((*c.key(&map), *c.value(&map)));
        cur = c.prev(&map);
    }
    back.reverse();
    assert_eq!(back, expected, "backward cursor walk");
    assert_eq!(
        map.first_key_value().map(|(&k, &v)| (k, v)),
        model.first_key_value().map(|(&k, &v)| (k, v))
    );
    assert_eq!(
        map.last_key_value().map(|(&k, &v)| (k, v)),
        model.last_key_value().map(|(&k, &v)| (k, v))
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random op soup over a small key space (dense collisions: lots of
    /// replacement, removal and leaf merges).
    #[test]
    fn dense_key_space_matches_btreemap(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..2000),
    ) {
        run_differential(&ops, 64);
    }

    /// Random op soup over a sparse key space (deep trees, sparse leaves).
    #[test]
    fn sparse_key_space_matches_btreemap(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..2000),
    ) {
        run_differential(&ops, u64::MAX);
    }

    /// Float keys through `total_order_bits`: ordered exactly like the f64s
    /// they encode, and round-trippable through the map.
    #[test]
    fn float_keys_via_total_order_bits(
        xs in prop::collection::vec(-1.0e9f64..1.0e9f64, 1..300),
    ) {
        let mut map: FrontierMap<u64, f64> = FrontierMap::new();
        let mut model: BTreeMap<u64, f64> = BTreeMap::new();
        for &x in &xs {
            map.insert(total_order_bits(x), x);
            model.insert(total_order_bits(x), x);
        }
        // Walking the map in key order must yield the floats in numeric order.
        let walked: Vec<f64> = map.values().copied().collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        sorted.dedup();
        prop_assert_eq!(walked.len(), sorted.len());
        for (a, b) in walked.iter().zip(&sorted) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Successor queries agree with the model.
        for &x in &xs {
            let got = map.seek_gt(&total_order_bits(x)).map(|c| *c.value(&map));
            let want = model
                .range(total_order_bits(x) + 1..)
                .next()
                .map(|(_, &v)| v);
            prop_assert_eq!(got, want);
        }
    }

    /// `bulk_load` from sorted input equals key-by-key insertion, and the
    /// loaded tree supports the full mutation surface afterwards.
    #[test]
    fn bulk_load_equals_incremental(
        keys in prop::collection::vec(any::<u64>(), 0..1500),
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..300),
    ) {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();

        let mut map: FrontierMap<u64, u64> = FrontierMap::new();
        map.bulk_load(sorted.iter().map(|&k| (k, k.wrapping_mul(3))));
        let mut model: BTreeMap<u64, u64> =
            sorted.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        prop_assert_eq!(map.len(), model.len());

        // Mutate both after the load; answers must stay in lockstep.
        for &(op, key, value) in &ops {
            match op % 3 {
                0 => {
                    prop_assert_eq!(map.insert(key, value), model.insert(key, value));
                }
                1 => {
                    prop_assert_eq!(map.remove(&key), model.remove(&key));
                }
                _ => {
                    let got = map.seek(&key).map(|c| (*c.key(&map), *c.value(&map)));
                    let want = model.range(key..).next().map(|(&k, &v)| (k, v));
                    prop_assert_eq!(got, want);
                }
            }
        }
        let a: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(a, b);
    }

    /// Range walks: a cursor seeked to a random lower bound and advanced to a
    /// random upper bound visits exactly the model's `range(lo..hi)`.
    #[test]
    fn range_walks_match_btreemap(
        keys in prop::collection::vec(any::<u16>(), 0..800),
        bounds in prop::collection::vec((any::<u16>(), any::<u16>()), 1..40),
    ) {
        let mut map: FrontierMap<u64, u64> = FrontierMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            map.insert(k as u64, k as u64 + 1);
            model.insert(k as u64, k as u64 + 1);
        }
        for &(a, b) in &bounds {
            let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
            let mut got = Vec::new();
            let mut cur = map.seek(&lo);
            while let Some(c) = cur {
                if *c.key(&map) >= hi {
                    break;
                }
                got.push((*c.key(&map), *c.value(&map)));
                cur = c.advance(&map);
            }
            let want: Vec<(u64, u64)> = model.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, want, "range [{}, {})", lo, hi);
        }
    }
}
