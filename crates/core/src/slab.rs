//! Slab partitioning and rectangle distribution for the distribution sweep.
//!
//! At every recursion node of ExactMaxRS the current slab is divided into
//! `m = Θ(M/B)` sub-slabs containing roughly the same number of rectangles.
//! Each rectangle is then routed to the sub-slabs holding its vertical edges
//! (cropped accordingly), while the parts that *span* entire sub-slabs are
//! diverted to a separate spanning file — the key idea that guarantees the
//! recursion terminates (Lemma 1 of the paper).

use maxrs_em::{external_sort_by_key, EmContext, TupleFile, TupleWriter};
use maxrs_geometry::{Interval, Rect};

use crate::error::Result;
use crate::records::{RectRecord, SpanEvent};

/// A division of a slab into contiguous sub-slabs.
#[derive(Debug, Clone, PartialEq)]
pub struct SlabPartition {
    /// Strictly increasing boundaries; `boundaries[0]` / `boundaries.last()`
    /// are the outer slab's bounds (possibly infinite).  Slab `i` is
    /// `[boundaries[i], boundaries[i+1])`, with the last slab closed above.
    pub boundaries: Vec<f64>,
}

impl SlabPartition {
    /// Creates a partition from raw boundaries (must be strictly increasing
    /// and contain at least two values).
    pub fn new(boundaries: Vec<f64>) -> Self {
        assert!(boundaries.len() >= 2, "a partition needs at least one slab");
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "slab boundaries must be strictly increasing"
        );
        SlabPartition { boundaries }
    }

    /// Number of sub-slabs.
    pub fn num_slabs(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The x-interval of sub-slab `i`.
    pub fn slab(&self, i: usize) -> Interval {
        Interval::new(self.boundaries[i], self.boundaries[i + 1])
    }

    /// All sub-slab intervals.
    pub fn slabs(&self) -> Vec<Interval> {
        (0..self.num_slabs()).map(|i| self.slab(i)).collect()
    }

    /// Index of the sub-slab containing `x`.  Values at the outer bounds are
    /// clamped into the first / last slab.
    pub fn locate(&self, x: f64) -> usize {
        let n = self.num_slabs();
        // First boundary strictly greater than x, minus one.
        let idx = self.boundaries.partition_point(|&b| b <= x);
        idx.saturating_sub(1).min(n - 1)
    }
}

/// How slab boundaries are derived from the input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundarySource {
    /// The file is sorted by rectangle center x, so exact quantiles can be
    /// read off in a single sequential pass (the situation after the initial
    /// external sort of the paper's pipeline).
    SortedExact,
    /// The file is in arbitrary order; boundaries are quantiles of a
    /// deterministic reservoir sample of at most the given size.
    Sampled(usize),
}

/// Computes `m` sub-slab boundaries for the rectangles of `file` within the
/// outer slab `outer`.
///
/// Duplicate quantiles (heavy ties on x) are collapsed, so the returned
/// partition may have fewer than `m` slabs; callers must handle partitions
/// that degenerate to a single slab (no progress) by falling back to the
/// in-memory sweep.
pub fn compute_partition(
    ctx: &EmContext,
    file: &TupleFile<RectRecord>,
    outer: Interval,
    m: usize,
    source: BoundarySource,
) -> Result<SlabPartition> {
    let m = m.max(2);
    let n = file.len();
    let centers: Vec<f64> = match source {
        BoundarySource::SortedExact => {
            // One sequential pass: remember the centers at the quantile ranks.
            let mut targets: Vec<u64> = (1..m as u64).map(|i| i * n / m as u64).collect();
            targets.dedup();
            let mut out = Vec::with_capacity(targets.len());
            let mut reader = ctx.open_reader(file);
            let mut idx: u64 = 0;
            let mut t = 0usize;
            while let Some(rec) = reader.next_record()? {
                if t < targets.len() && idx == targets[t] {
                    out.push(rec.center_x());
                    t += 1;
                }
                idx += 1;
                if t == targets.len() {
                    break;
                }
            }
            out
        }
        BoundarySource::Sampled(cap) => {
            let cap = cap.max(m * 4);
            let mut sample: Vec<f64> = Vec::with_capacity(cap.min(n as usize));
            let mut reader = ctx.open_reader(file);
            let mut seen: u64 = 0;
            // Deterministic xorshift so experiments are reproducible.
            let mut state: u64 = 0x9E3779B97F4A7C15 ^ (n.wrapping_mul(0x2545F4914F6CDD1D));
            let mut next_rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            while let Some(rec) = reader.next_record()? {
                seen += 1;
                if sample.len() < cap {
                    sample.push(rec.center_x());
                } else {
                    let j = next_rand() % seen;
                    if (j as usize) < cap {
                        sample[j as usize] = rec.center_x();
                    }
                }
            }
            sample.sort_unstable_by(f64::total_cmp);
            (1..m)
                .map(|i| sample[(i * sample.len() / m).min(sample.len().saturating_sub(1))])
                .collect()
        }
    };

    let mut boundaries = Vec::with_capacity(m + 1);
    boundaries.push(outer.lo);
    for c in centers {
        if c > *boundaries.last().unwrap() && c < outer.hi {
            boundaries.push(c);
        }
    }
    boundaries.push(outer.hi);
    Ok(SlabPartition::new(boundaries))
}

/// Output of [`distribute`]: per-slab input files plus the y-sorted spanning
/// events.
#[derive(Debug)]
pub struct Distribution {
    /// The partition that was applied.
    pub partition: SlabPartition,
    /// One rectangle file per sub-slab (cropped, non-spanning pieces only).
    pub slab_inputs: Vec<TupleFile<RectRecord>>,
    /// Events of the spanning rectangle parts, sorted by y.
    pub span_events: TupleFile<SpanEvent>,
}

/// Routes every rectangle of `file` into the sub-slabs of `partition`.
///
/// * A rectangle entirely inside one sub-slab goes to that slab's file.
/// * A rectangle crossing boundaries is cut: the piece containing its left
///   (right) edge goes to the slab of that edge, and the fully spanned slabs
///   in between are recorded as a pair of [`SpanEvent`]s.
///
/// The spanning events are sorted by y before being returned so that
/// MergeSweep can consume them in sweep order.
pub fn distribute(
    ctx: &EmContext,
    file: &TupleFile<RectRecord>,
    partition: &SlabPartition,
) -> Result<Distribution> {
    let m = partition.num_slabs();
    let mut slab_writers: Vec<TupleWriter<'_, RectRecord>> = Vec::with_capacity(m);
    for _ in 0..m {
        slab_writers.push(ctx.create_writer()?);
    }
    let mut span_writer: TupleWriter<'_, SpanEvent> = ctx.create_writer()?;

    let mut reader = ctx.open_reader(file);
    while let Some(rec) = reader.next_record()? {
        let j = partition.locate(rec.rect.x_lo);
        let k = partition.locate(rec.rect.x_hi);
        if j == k {
            slab_writers[j].push(&rec)?;
            continue;
        }
        // Left piece: from the left edge to the right boundary of slab j.
        let left = Rect::new(
            rec.rect.x_lo,
            partition.boundaries[j + 1],
            rec.rect.y_lo,
            rec.rect.y_hi,
        );
        slab_writers[j].push(&RectRecord::new(left, rec.weight))?;
        // Right piece: from the left boundary of slab k to the right edge.
        let right = Rect::new(
            partition.boundaries[k],
            rec.rect.x_hi,
            rec.rect.y_lo,
            rec.rect.y_hi,
        );
        slab_writers[k].push(&RectRecord::new(right, rec.weight))?;
        // Fully spanned slabs in between.
        if k > j + 1 {
            for ev in SpanEvent::pair(
                rec.rect.y_lo,
                rec.rect.y_hi,
                rec.weight,
                (j + 1) as u32,
                (k - 1) as u32,
            ) {
                span_writer.push(&ev)?;
            }
        }
    }

    let slab_inputs: Vec<TupleFile<RectRecord>> = slab_writers
        .into_iter()
        .map(|w| w.finish())
        .collect::<maxrs_em::Result<_>>()?;
    let span_unsorted = span_writer.finish()?;
    let span_events = external_sort_by_key(ctx, &span_unsorted, |e| e.y)?;
    ctx.delete_file(span_unsorted)?;

    Ok(Distribution {
        partition: partition.clone(),
        slab_inputs,
        span_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_em::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 4096).unwrap())
    }

    fn rect(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64, w: f64) -> RectRecord {
        RectRecord::new(Rect::new(x_lo, x_hi, y_lo, y_hi), w)
    }

    #[test]
    fn partition_locate() {
        let p = SlabPartition::new(vec![f64::NEG_INFINITY, 0.0, 10.0, f64::INFINITY]);
        assert_eq!(p.num_slabs(), 3);
        assert_eq!(p.locate(-5.0), 0);
        assert_eq!(p.locate(0.0), 1);
        assert_eq!(p.locate(5.0), 1);
        assert_eq!(p.locate(10.0), 2);
        assert_eq!(p.locate(1e12), 2);
        assert_eq!(p.slab(1), Interval::new(0.0, 10.0));
        assert_eq!(p.slabs().len(), 3);
    }

    #[test]
    fn bounded_partition_clamps_to_outer() {
        let p = SlabPartition::new(vec![2.0, 5.0, 9.0]);
        assert_eq!(p.locate(1.0), 0, "values below the outer slab clamp to 0");
        assert_eq!(
            p.locate(9.0),
            1,
            "the outer upper bound belongs to the last slab"
        );
        assert_eq!(p.locate(100.0), 1);
    }

    #[test]
    fn compute_partition_sorted_exact() {
        let ctx = ctx();
        // 100 rectangles with centers 0..100, sorted.
        let rects: Vec<RectRecord> = (0..100)
            .map(|i| rect(i as f64 - 0.5, i as f64 + 0.5, 0.0, 1.0, 1.0))
            .collect();
        let file = ctx.write_all(&rects).unwrap();
        let p = compute_partition(
            &ctx,
            &file,
            Interval::UNBOUNDED,
            4,
            BoundarySource::SortedExact,
        )
        .unwrap();
        assert_eq!(p.num_slabs(), 4);
        // Quantile boundaries at roughly 25 / 50 / 75.
        assert!((p.boundaries[1] - 25.0).abs() <= 2.0);
        assert!((p.boundaries[2] - 50.0).abs() <= 2.0);
        assert!((p.boundaries[3] - 75.0).abs() <= 2.0);
        assert!(p.boundaries[0].is_infinite());
        assert!(p.boundaries[4].is_infinite());
    }

    #[test]
    fn compute_partition_sampled_handles_ties() {
        let ctx = ctx();
        // All rectangles share the same center: no useful split exists and the
        // partition must collapse instead of producing bogus boundaries.
        let rects: Vec<RectRecord> = (0..50).map(|_| rect(4.0, 6.0, 0.0, 1.0, 1.0)).collect();
        let file = ctx.write_all(&rects).unwrap();
        let p = compute_partition(
            &ctx,
            &file,
            Interval::UNBOUNDED,
            8,
            BoundarySource::Sampled(32),
        )
        .unwrap();
        assert!(p.num_slabs() <= 2);
    }

    #[test]
    fn distribute_routes_and_crops() {
        let ctx = ctx();
        let partition =
            SlabPartition::new(vec![f64::NEG_INFINITY, 10.0, 20.0, 30.0, f64::INFINITY]);
        let rects = vec![
            rect(1.0, 5.0, 0.0, 1.0, 1.0),   // entirely in slab 0
            rect(12.0, 18.0, 0.0, 2.0, 2.0), // entirely in slab 1
            rect(8.0, 26.0, 1.0, 3.0, 3.0), // spans boundary 10 and 20: pieces in 0 and 2, spans slab 1
            rect(15.0, 22.0, 0.0, 1.0, 4.0), // crosses one boundary: pieces in slabs 1 and 2, no span
        ];
        let file = ctx.write_all(&rects).unwrap();
        let dist = distribute(&ctx, &file, &partition).unwrap();
        assert_eq!(dist.slab_inputs.len(), 4);

        let slab0 = ctx.read_all(&dist.slab_inputs[0]).unwrap();
        let slab1 = ctx.read_all(&dist.slab_inputs[1]).unwrap();
        let slab2 = ctx.read_all(&dist.slab_inputs[2]).unwrap();
        let slab3 = ctx.read_all(&dist.slab_inputs[3]).unwrap();
        assert_eq!(slab0.len(), 2); // the small rect + the left piece of the spanner
        assert_eq!(slab1.len(), 2); // the middle rect + the left piece of rect 4
        assert_eq!(slab2.len(), 2); // right pieces of rect 3 and rect 4
        assert_eq!(slab3.len(), 0);

        // Crops stay inside their slabs.
        for (i, slab) in [slab0, slab1, slab2].iter().enumerate() {
            for r in slab {
                assert!(
                    r.rect.x_lo >= partition.boundaries[i] || partition.boundaries[i].is_infinite()
                );
                assert!(r.rect.x_hi <= partition.boundaries[i + 1]);
            }
        }

        // Exactly one spanning rectangle -> two events, sorted by y.
        let spans = ctx.read_all(&dist.span_events).unwrap();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].is_start && !spans[1].is_start);
        assert!(spans[0].y <= spans[1].y);
        assert_eq!(spans[0].slab_lo, 1);
        assert_eq!(spans[0].slab_hi, 1);
        assert_eq!(spans[0].weight, 3.0);
    }

    #[test]
    fn distribute_preserves_total_edge_count() {
        // Every input rectangle contributes at most 2 pieces + 1 span pair, and
        // every piece stays within one slab (the invariant behind Lemma 1).
        let ctx = ctx();
        let partition = SlabPartition::new(vec![0.0, 25.0, 50.0, 75.0, 100.0]);
        let rects: Vec<RectRecord> = (0..40)
            .map(|i| {
                let lo = (i * 2) as f64;
                rect(lo, lo + 15.0, 0.0, 1.0, 1.0)
            })
            .collect();
        let file = ctx.write_all(&rects).unwrap();
        let dist = distribute(&ctx, &file, &partition).unwrap();
        let pieces: u64 = dist.slab_inputs.iter().map(|f| f.len()).sum();
        assert!(pieces <= 2 * rects.len() as u64);
        assert!(pieces >= rects.len() as u64);
        for (i, f) in dist.slab_inputs.iter().enumerate() {
            let slab = dist.partition.slab(i);
            for r in ctx.read_all(f).unwrap() {
                assert!(r.rect.x_lo >= slab.lo && r.rect.x_hi <= slab.hi);
            }
        }
    }
}
