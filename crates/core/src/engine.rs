//! [`MaxRsEngine`]: one entry point that picks the right MaxRS execution
//! strategy for the workload.
//!
//! The paper's algorithms form a natural ladder:
//!
//! * datasets whose transformed rectangles fit in the memory budget `M` are
//!   solved by the classic in-memory plane sweep (the recursion base case),
//! * larger datasets go through the external-memory distribution sweep
//!   ([`exact_max_rs`](crate::exact::exact_max_rs)), and
//! * when the machine has spare cores *and* the buffer is large enough for
//!   concurrent slab workers, the distribution sweep runs its parallel slab
//!   stage.
//!
//! Callers that do not want to reason about `N`, `M` and core counts construct
//! an engine and call [`MaxRsEngine::run`] (any [`Query`] variant) or
//! [`MaxRsEngine::solve`] (plain MaxRS); callers that do can inspect the
//! decision via [`MaxRsEngine::select_strategy`] or force one via
//! [`EngineOptions`].
//!
//! The same strategy ladder serves every query variant — top-k, MinRS and
//! ApproxMaxCRS all reduce to (rounds of) the rectangle distribution sweep,
//! so a variant query on a billion-object file runs the identical slab
//! pipeline and parallel MergeSweep as plain MaxRS.  Because the external
//! pipeline reports canonical max-regions (see [`crate::sweep`]), every
//! strategy returns the *identical* answer, not merely one of equal weight.
//! Several queries against one dataset batch into shared sweep passes via
//! [`MaxRsEngine::run_batch`] (see [`crate::batch`]).

use maxrs_em::{EmConfig, EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::{RectSize, WeightedPoint};

use crate::approx::approx_max_crs_in_memory;
use crate::batch::QueryBatch;
use crate::error::{EngineError, Result};
use crate::exact::ExactMaxRsOptions;
use crate::extensions::{max_k_rs_in_memory, min_rs_in_memory};
use crate::plane_sweep::max_rs_in_memory;
use crate::query::{Query, QueryAnswer, QueryRun};
use crate::records::{ObjectRecord, RectRecord};
use crate::result::MaxRsResult;

/// How a MaxRS query was (or would be) executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionStrategy {
    /// Everything fits in the memory budget: one in-memory plane sweep.
    InMemory,
    /// External-memory distribution sweep on a single thread.
    ExternalSequential,
    /// External-memory distribution sweep with the parallel slab stage.
    ExternalParallel,
}

impl ExecutionStrategy {
    /// A short human-readable name ("in-memory", "em-sequential",
    /// "em-parallel").
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionStrategy::InMemory => "in-memory",
            ExecutionStrategy::ExternalSequential => "em-sequential",
            ExecutionStrategy::ExternalParallel => "em-parallel",
        }
    }
}

/// Configuration of a [`MaxRsEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// The external-memory model (block size, buffer size) the engine
    /// simulates when a query does not fit in memory.
    pub em_config: EmConfig,
    /// Base options for external runs; the `parallelism` field inside doubles
    /// as the engine's worker cap (default: available cores).
    pub exact: ExactMaxRsOptions,
    /// Force a specific strategy instead of auto-selecting (useful for
    /// benchmarks and equivalence tests).
    ///
    /// Forcing [`ExecutionStrategy::ExternalParallel`] still respects the
    /// buffer-size worker cap: if the cap leaves a single worker, the run
    /// executes — and its [`EngineRun`] truthfully reports —
    /// [`ExecutionStrategy::ExternalSequential`].
    pub force_strategy: Option<ExecutionStrategy>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            em_config: EmConfig::paper_synthetic(),
            exact: ExactMaxRsOptions::default(),
            force_strategy: None,
        }
    }
}

/// The outcome of one engine query: the MaxRS answer plus how it was computed
/// and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineRun {
    /// The MaxRS answer.
    pub result: MaxRsResult,
    /// The strategy the engine selected (or was forced to use).
    pub strategy: ExecutionStrategy,
    /// Worker threads used by the solve (1 unless `strategy` is
    /// [`ExecutionStrategy::ExternalParallel`]).
    pub workers: usize,
    /// Blocks transferred while solving.  Zero for the in-memory strategy
    /// under [`MaxRsEngine::solve`]; under [`MaxRsEngine::solve_file`] the
    /// in-memory strategy counts the input file's scan.
    pub io: IoSnapshot,
}

/// A facade that answers MaxRS queries, auto-selecting between the in-memory
/// sweep, the sequential external distribution sweep and the parallel slab
/// stage from the dataset size `N`, the memory budget `M` and the core count.
///
/// ```
/// use maxrs_core::{ExecutionStrategy, MaxRsEngine};
/// use maxrs_geometry::{RectSize, WeightedPoint};
///
/// let engine = MaxRsEngine::new();
/// let stores = vec![
///     WeightedPoint::unit(1.0, 1.0),
///     WeightedPoint::unit(1.5, 1.2),
///     WeightedPoint::unit(9.0, 9.0),
/// ];
/// let run = engine.solve(&stores, RectSize::square(2.0)).unwrap();
/// assert_eq!(run.result.total_weight, 2.0);
/// // Three objects fit in any buffer: the engine picked the plane sweep.
/// assert_eq!(run.strategy, ExecutionStrategy::InMemory);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxRsEngine {
    opts: EngineOptions,
}

impl MaxRsEngine {
    /// An engine with the paper's default EM configuration and all cores
    /// available to the parallel slab stage.
    pub fn new() -> Self {
        MaxRsEngine::default()
    }

    /// An engine with explicit options.
    pub fn with_options(opts: EngineOptions) -> Self {
        MaxRsEngine { opts }
    }

    /// An engine with the given EM configuration and defaults otherwise.
    pub fn with_em_config(em_config: EmConfig) -> Self {
        MaxRsEngine {
            opts: EngineOptions {
                em_config,
                ..Default::default()
            },
        }
    }

    /// The engine's configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Picks the execution strategy for a dataset of `n` objects and returns
    /// it together with the worker count an external run would use.
    ///
    /// * `n` rectangles fit in the buffer (`n <= M/sizeof(RectRecord)`, with
    ///   [`ExactMaxRsOptions::memory_rects`] honored as an override) →
    ///   [`ExecutionStrategy::InMemory`];
    /// * otherwise, if more than one worker survives the buffer-size cap
    ///   (see [`ExactMaxRsOptions::effective_parallelism`]) →
    ///   [`ExecutionStrategy::ExternalParallel`];
    /// * otherwise → [`ExecutionStrategy::ExternalSequential`].
    ///
    /// The core count enters through the default of
    /// [`ExactMaxRsOptions::parallelism`] (see
    /// [`available_parallelism`](crate::parallel::available_parallelism));
    /// an explicit `parallelism` override is honored as-is, so callers can
    /// oversubscribe a core-limited machine deliberately.
    ///
    /// This prediction uses the engine's own [`EngineOptions::em_config`] and
    /// therefore describes [`solve`](MaxRsEngine::solve);
    /// [`solve_file`](MaxRsEngine::solve_file) derives the same decision from
    /// the *passed context's* configuration instead.
    pub fn select_strategy(&self, n: u64) -> (ExecutionStrategy, usize) {
        self.select_for(n, self.opts.em_config)
    }

    /// Strategy selection against an explicit EM configuration (the engine's
    /// own for [`solve`](MaxRsEngine::solve), the target context's for
    /// [`solve_file`](MaxRsEngine::solve_file)).
    pub(crate) fn select_for(&self, n: u64, config: EmConfig) -> (ExecutionStrategy, usize) {
        let workers = self.opts.exact.effective_parallelism(config);
        if let Some(forced) = self.opts.force_strategy {
            return match forced {
                // A forced parallel run still respects the buffer-size worker
                // cap; report the strategy that would actually execute so
                // this prediction always matches the produced `EngineRun`.
                ExecutionStrategy::ExternalParallel if workers > 1 => (forced, workers),
                ExecutionStrategy::ExternalParallel => (ExecutionStrategy::ExternalSequential, 1),
                _ => (forced, 1),
            };
        }
        let mem_rects = self
            .opts
            .exact
            .memory_rects
            .unwrap_or_else(|| config.mem_records::<RectRecord>()) as u64;
        if n <= mem_rects {
            (ExecutionStrategy::InMemory, 1)
        } else if workers > 1 {
            (ExecutionStrategy::ExternalParallel, workers)
        } else {
            (ExecutionStrategy::ExternalSequential, 1)
        }
    }

    /// Rejects an *auto-selected* in-memory run whose dataset does not fit
    /// the EM configuration's real budget — possible only when
    /// [`ExactMaxRsOptions::memory_rects`] promises more rectangles than
    /// `config` provides.  Honoring that promise would silently violate the
    /// I/O model the engine reports against, so `run`/`run_file` (and the
    /// prepare paths) surface [`EngineError::InMemoryOverCapacity`] instead.
    /// An explicit [`EngineOptions::force_strategy`] of
    /// [`ExecutionStrategy::InMemory`] bypasses the check: forcing is the
    /// documented escape hatch for equivalence tests.
    pub(crate) fn guard_in_memory_capacity(&self, n: u64, config: EmConfig) -> Result<()> {
        if self.opts.force_strategy.is_some() {
            return Ok(());
        }
        let capacity = config.mem_records::<RectRecord>() as u64;
        if n > capacity {
            return Err(EngineError::InMemoryOverCapacity {
                objects: n,
                capacity,
            }
            .into());
        }
        Ok(())
    }

    /// Answers any [`Query`] variant over an in-memory object slice,
    /// auto-selecting the execution strategy exactly like
    /// [`solve`](MaxRsEngine::solve).
    ///
    /// External strategies run against a fresh [`EmContext`] with the engine's
    /// configuration; the reported I/O covers the query only (loading the
    /// objects into the context is excluded, as in the paper's measurements).
    /// All strategies return the identical answer on the same data (canonical
    /// max-regions, see [`crate::exact`]); for arbitrary float weights the
    /// parallel strategy carries the usual tree-association caveat of
    /// [`merge_sweep_tree`](crate::merge_sweep::merge_sweep_tree).
    ///
    /// # Query cookbook
    ///
    /// ```
    /// use maxrs_core::{MaxRsEngine, Query};
    /// use maxrs_geometry::{Rect, RectSize, WeightedPoint};
    ///
    /// // Six cafés: a pair, a triple and a loner.
    /// let cafes = vec![
    ///     WeightedPoint::unit(1.0, 1.0),
    ///     WeightedPoint::unit(1.4, 1.2),
    ///     WeightedPoint::unit(6.0, 6.0),
    ///     WeightedPoint::unit(6.3, 6.2),
    ///     WeightedPoint::unit(6.1, 6.4),
    ///     WeightedPoint::unit(20.0, 20.0),
    /// ];
    /// let engine = MaxRsEngine::new();
    ///
    /// // MaxRS: the best single 2 × 2 placement covers the triple.
    /// let run = engine.run(&cafes, &Query::max_rs(RectSize::square(2.0))).unwrap();
    /// assert_eq!(run.answer.best_weight(), 3.0);
    ///
    /// // Top-k: the three best non-overlapping placements, best first.
    /// let run = engine.run(&cafes, &Query::top_k(RectSize::square(2.0), 3)).unwrap();
    /// let weights: Vec<f64> = run.answer.placements().unwrap()
    ///     .iter().map(|r| r.total_weight).collect();
    /// assert_eq!(weights, vec![3.0, 2.0, 1.0]);
    ///
    /// // MinRS: the quietest admissible center inside the downtown square.
    /// let downtown = Rect::new(0.0, 10.0, 0.0, 10.0);
    /// let run = engine.run(&cafes, &Query::min_rs(RectSize::square(2.0), downtown)).unwrap();
    /// assert_eq!(run.answer.best_weight(), 0.0);
    ///
    /// // ApproxMaxCRS: a circular service area of diameter 2.
    /// let run = engine.run(&cafes, &Query::approx_max_crs(2.0)).unwrap();
    /// assert_eq!(run.answer.as_max_crs().unwrap().total_weight, 3.0);
    /// ```
    pub fn run(&self, objects: &[WeightedPoint], query: &Query) -> Result<QueryRun> {
        query.validate()?;
        let (strategy, _) = self.select_strategy(objects.len() as u64);
        if strategy == ExecutionStrategy::InMemory {
            self.guard_in_memory_capacity(objects.len() as u64, self.opts.em_config)?;
            // Answer directly from the borrowed slice: building a throwaway
            // prepared dataset here would copy the whole dataset per query
            // for no benefit.
            return Ok(QueryRun {
                answer: answer_in_memory(objects, query),
                strategy,
                workers: 1,
                io: IoSnapshot::default(),
            });
        }
        // External single-shot queries route through the prepared-dataset
        // machinery: `prepare` pays the one-time x-sort, the prepared run
        // answers the query over the sorted file.  The reported I/O is the
        // sum of both phases (loading the objects stays excluded, as in the
        // paper's measurements), and answers are bit-identical to a
        // repeated-query [`PreparedDataset`] by construction.
        let prepared = self.prepare(objects)?;
        let run = prepared.run(query)?;
        Ok(QueryRun {
            io: run.io + prepared.prepare_io(),
            ..run
        })
    }

    /// Answers any [`Query`] variant over an object file already stored in
    /// `ctx`.
    ///
    /// Unlike [`run`](MaxRsEngine::run), the in-memory strategy here still
    /// reads the file (and counts that scan's I/O); the reported I/O is the
    /// delta of `ctx`'s counters across the call.
    pub fn run_file(
        &self,
        ctx: &EmContext,
        objects: &TupleFile<ObjectRecord>,
        query: &Query,
    ) -> Result<QueryRun> {
        query.validate()?;
        // Routed through the prepared-dataset machinery: `prepare_file` pays
        // the one-time scan (in-memory strategy) or x-sort (external
        // strategies) inside `ctx`, the prepared run answers the query, and
        // dropping the prepared dataset removes its sorted file again.  The
        // reported I/O is the delta of `ctx`'s counters across the whole
        // call, preserving the previous single-shot semantics.
        let before = ctx.stats();
        let prepared = self.prepare_file(ctx, objects)?;
        let run = prepared.run(query)?;
        Ok(QueryRun {
            io: ctx.stats().since(&before),
            ..run
        })
    }

    /// Answers a whole batch of queries over one dataset in shared sweep
    /// passes: the batched sibling of [`run`](MaxRsEngine::run).
    ///
    /// Queries are planned into sweep groups ([`QueryBatch`]) so each
    /// distinct transform/sweep runs once — MaxRS, top-k and ApproxMaxCRS of
    /// one rectangle size share a single kernel pass, MinRS queries sharing a
    /// domain x-slab share a negated one — and independent groups execute
    /// concurrently on the worker pool.  Answers are bit-identical to
    /// per-query [`run`](MaxRsEngine::run) calls on the same data for
    /// integer-valued weights (arbitrary floats carry the usual association
    /// caveat of concurrent execution, see [`crate::batch`]); runs come
    /// back in query order.  The one-time preparation I/O (the external
    /// x-sort) and each group's shared pass are attributed to the first query
    /// they serve, so the runs' I/O sums to the true total (see
    /// [`crate::batch`], "I/O attribution").
    pub fn run_batch(&self, objects: &[WeightedPoint], queries: &[Query]) -> Result<Vec<QueryRun>> {
        let batch = QueryBatch::new(queries)?;
        if batch.is_empty() {
            // Nothing to answer: don't pay the preparation sort for no one.
            return Ok(Vec::new());
        }
        let (strategy, _) = self.select_strategy(objects.len() as u64);
        if strategy == ExecutionStrategy::InMemory {
            self.guard_in_memory_capacity(objects.len() as u64, self.opts.em_config)?;
            return Ok(batch
                .queries()
                .iter()
                .map(|q| QueryRun {
                    answer: answer_in_memory(objects, q),
                    strategy,
                    workers: 1,
                    io: IoSnapshot::default(),
                })
                .collect());
        }
        let prepared = self.prepare(objects)?;
        let mut runs = prepared.run_planned(&batch)?;
        if let Some(first) = runs.first_mut() {
            first.io = first.io + prepared.prepare_io();
        }
        Ok(runs)
    }

    /// Solves a MaxRS query over an in-memory object slice: shorthand for
    /// [`run`](MaxRsEngine::run) with [`Query::MaxRs`].
    ///
    /// External strategies run against a fresh [`EmContext`] with the engine's
    /// configuration; the reported I/O covers the solve only (loading the
    /// objects into the context is excluded, as in the paper's measurements).
    pub fn solve(&self, objects: &[WeightedPoint], size: RectSize) -> Result<EngineRun> {
        self.run(objects, &Query::MaxRs { size }).map(engine_run_of)
    }

    /// Solves a MaxRS query over an object file already stored in `ctx`:
    /// shorthand for [`run_file`](MaxRsEngine::run_file) with
    /// [`Query::MaxRs`].
    ///
    /// Unlike [`solve`](MaxRsEngine::solve), the in-memory strategy here still
    /// reads the file (and counts that scan's I/O); the reported I/O is the
    /// delta of `ctx`'s counters across the call.
    pub fn solve_file(
        &self,
        ctx: &EmContext,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
    ) -> Result<EngineRun> {
        self.run_file(ctx, objects, &Query::MaxRs { size })
            .map(engine_run_of)
    }
}

/// Converts a MaxRS-variant [`QueryRun`] into the narrower [`EngineRun`].
fn engine_run_of(run: QueryRun) -> EngineRun {
    match run.answer {
        QueryAnswer::MaxRs(result) => EngineRun {
            result,
            strategy: run.strategy,
            workers: run.workers,
            io: run.io,
        },
        _ => unreachable!("solve paths only issue MaxRs queries"),
    }
}

/// Answers a (validated) query with the in-memory reference algorithms.
pub(crate) fn answer_in_memory(objects: &[WeightedPoint], query: &Query) -> QueryAnswer {
    match *query {
        Query::MaxRs { size } => QueryAnswer::MaxRs(max_rs_in_memory(objects, size)),
        Query::TopK { size, k } => QueryAnswer::TopK(max_k_rs_in_memory(objects, size, k)),
        Query::MinRs { size, domain } => {
            QueryAnswer::MinRs(min_rs_in_memory(objects, size, domain))
        }
        Query::ApproxMaxCrs { diameter, .. } => QueryAnswer::MaxCrs(approx_max_crs_in_memory(
            objects,
            diameter,
            query.sigma_fraction().expect("approx variant has a sigma"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::load_objects;
    use crate::reference::rect_objective;
    use maxrs_geometry::Rect;

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 4.0).floor(),
                )
            })
            .collect()
    }

    #[test]
    fn small_dataset_selects_in_memory() {
        let engine = MaxRsEngine::new();
        let (strategy, _) = engine.select_strategy(100);
        assert_eq!(strategy, ExecutionStrategy::InMemory);
    }

    #[test]
    fn large_dataset_selects_an_external_strategy() {
        let engine = MaxRsEngine::new();
        let mem_rects = engine.options().em_config.mem_records::<RectRecord>() as u64;
        let (strategy, workers) = engine.select_strategy(mem_rects + 1);
        assert_ne!(
            strategy,
            ExecutionStrategy::InMemory,
            "dataset larger than M must go external"
        );
        match strategy {
            ExecutionStrategy::ExternalParallel => assert!(workers > 1),
            ExecutionStrategy::ExternalSequential => assert_eq!(workers, 1),
            ExecutionStrategy::InMemory => unreachable!(),
        }
    }

    #[test]
    fn oversized_in_memory_selection_is_a_checked_error() {
        use crate::error::{CoreError, EngineError};
        use crate::exact::load_objects;

        // A `memory_rects` override promising more rectangles than the EM
        // configuration fits: auto-selection would answer in memory in
        // violation of the I/O model, so run/run_file refuse with the typed
        // engine error instead of a panic (or a silent model violation).
        let em_config = EmConfig::new(512, 16 * 512).unwrap();
        let engine = MaxRsEngine::with_options(EngineOptions {
            em_config,
            exact: ExactMaxRsOptions {
                memory_rects: Some(usize::MAX),
                ..Default::default()
            },
            force_strategy: None,
        });
        let objects = pseudo_random_objects(2000, 9, 1000.0);
        let query = Query::max_rs(RectSize::square(10.0));

        let err = engine.run(&objects, &query).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Engine(EngineError::InMemoryOverCapacity { objects: 2000, .. })
            ),
            "{err:?}"
        );

        let ctx = EmContext::new(em_config);
        let file = load_objects(&ctx, &objects).unwrap();
        let err = engine.run_file(&ctx, &file, &query).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Engine(EngineError::InMemoryOverCapacity { .. })
            ),
            "{err:?}"
        );
        ctx.delete_file(file).unwrap();

        // Forcing the in-memory strategy stays the explicit escape hatch.
        let forced = MaxRsEngine::with_options(EngineOptions {
            em_config,
            exact: ExactMaxRsOptions {
                memory_rects: Some(usize::MAX),
                ..Default::default()
            },
            force_strategy: Some(ExecutionStrategy::InMemory),
        });
        assert!(forced.run(&objects, &query).is_ok());
    }

    #[test]
    fn forced_strategy_is_respected() {
        let opts = EngineOptions {
            force_strategy: Some(ExecutionStrategy::ExternalSequential),
            ..Default::default()
        };
        let engine = MaxRsEngine::with_options(opts);
        assert_eq!(
            engine.select_strategy(3).0,
            ExecutionStrategy::ExternalSequential
        );
    }

    #[test]
    fn forced_parallel_under_a_tiny_buffer_reports_sequential() {
        // 8 pool blocks -> worker quota 1: the forced parallel request cannot
        // be honored, and the run must say what actually executed.
        let engine = MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 8 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                parallelism: 4,
                ..Default::default()
            },
            force_strategy: Some(ExecutionStrategy::ExternalParallel),
        });
        let objects = pseudo_random_objects(400, 3, 1000.0);
        let run = engine.solve(&objects, RectSize::square(80.0)).unwrap();
        assert_eq!(run.strategy, ExecutionStrategy::ExternalSequential);
        assert_eq!(run.workers, 1);
    }

    #[test]
    fn all_strategies_agree_on_the_answer() {
        let objects = pseudo_random_objects(600, 21, 2000.0);
        let size = RectSize::square(180.0);
        // A small buffer so 600 objects genuinely exceed M.
        let em_config = EmConfig::new(512, 64 * 512).unwrap();
        let reference = max_rs_in_memory(&objects, size);

        let mut runs = Vec::new();
        for forced in [
            Some(ExecutionStrategy::InMemory),
            Some(ExecutionStrategy::ExternalSequential),
            Some(ExecutionStrategy::ExternalParallel),
            None,
        ] {
            let engine = MaxRsEngine::with_options(EngineOptions {
                em_config,
                exact: ExactMaxRsOptions {
                    memory_rects: Some(64),
                    parallelism: 4,
                    ..Default::default()
                },
                force_strategy: forced,
            });
            let run = engine.solve(&objects, size).unwrap();
            assert_eq!(
                run.result.total_weight, reference.total_weight,
                "{forced:?}"
            );
            assert_eq!(
                rect_objective(&objects, run.result.center, size),
                run.result.total_weight,
                "{forced:?}"
            );
            runs.push(run);
        }
        // The auto-selected run must have gone external (600 > M/rect).
        assert_ne!(runs[3].strategy, ExecutionStrategy::InMemory);
        // External strategies do I/O, the in-memory one does not.
        assert_eq!(runs[0].io.total(), 0);
        assert!(runs[1].io.total() > 0);
    }

    #[test]
    fn solve_file_reports_io_delta() {
        let objects = pseudo_random_objects(500, 5, 1000.0);
        let em_config = EmConfig::new(512, 16 * 512).unwrap();
        let engine = MaxRsEngine::with_em_config(em_config);
        let ctx = EmContext::new(em_config);
        let file = load_objects(&ctx, &objects).unwrap();
        let run = engine
            .solve_file(&ctx, &file, RectSize::square(100.0))
            .unwrap();
        assert!(run.io.total() > 0);
        assert_eq!(
            rect_objective(&objects, run.result.center, RectSize::square(100.0)),
            run.result.total_weight
        );
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn empty_dataset() {
        let engine = MaxRsEngine::new();
        let run = engine.solve(&[], RectSize::square(10.0)).unwrap();
        assert_eq!(run.result.total_weight, 0.0);
        assert_eq!(run.strategy, ExecutionStrategy::InMemory);
    }

    #[test]
    fn invalid_queries_are_rejected_not_panicked() {
        let engine = MaxRsEngine::new();
        let objects = pseudo_random_objects(10, 3, 100.0);
        for query in [
            Query::MaxRs {
                size: RectSize {
                    width: -1.0,
                    height: 2.0,
                },
            },
            Query::ApproxMaxCrs {
                diameter: 0.0,
                epsilon: 0.5,
            },
            Query::ApproxMaxCrs {
                diameter: 5.0,
                epsilon: 1.0,
            },
            // Inverted domain: must come back as an error, not a clamp panic.
            Query::MinRs {
                size: RectSize::square(1.0),
                domain: Rect {
                    x_lo: 5.0,
                    x_hi: 1.0,
                    y_lo: 0.0,
                    y_hi: 1.0,
                },
            },
        ] {
            assert!(engine.run(&objects, &query).is_err(), "{query:?}");
        }
    }

    #[test]
    fn external_min_rs_matches_in_memory_on_degenerate_domains() {
        use crate::extensions::min_rs_in_memory;
        let objects = pseudo_random_objects(400, 9, 100.0);
        let size = RectSize::square(10.0);
        let engine = MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 16 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                memory_rects: Some(64),
                ..Default::default()
            },
            force_strategy: Some(ExecutionStrategy::ExternalSequential),
        });
        for domain in [
            Rect::new(50.0, 50.0, 50.0, 50.0), // point
            Rect::new(50.0, 50.0, 0.0, 100.0), // vertical segment
            Rect::new(0.0, 100.0, 50.0, 50.0), // horizontal segment
        ] {
            let run = engine.run(&objects, &Query::min_rs(size, domain)).unwrap();
            let want = min_rs_in_memory(&objects, size, domain);
            assert_eq!(run.answer.as_max_rs().unwrap(), &want, "{domain:?}");
        }
    }
}
