//! [`MaxRsEngine`]: one entry point that picks the right MaxRS execution
//! strategy for the workload.
//!
//! The paper's algorithms form a natural ladder:
//!
//! * datasets whose transformed rectangles fit in the memory budget `M` are
//!   solved by the classic in-memory plane sweep (the recursion base case),
//! * larger datasets go through the external-memory distribution sweep
//!   ([`exact_max_rs`]), and
//! * when the machine has spare cores *and* the buffer is large enough for
//!   concurrent slab workers, the distribution sweep runs its parallel slab
//!   stage.
//!
//! Callers that do not want to reason about `N`, `M` and core counts construct
//! an engine and call [`MaxRsEngine::solve`]; callers that do can inspect the
//! decision via [`MaxRsEngine::select_strategy`] or force one via
//! [`EngineOptions`].

use maxrs_em::{EmConfig, EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::{RectSize, WeightedPoint};

use crate::error::Result;
use crate::exact::{exact_max_rs, load_objects, ExactMaxRsOptions};
use crate::plane_sweep::max_rs_in_memory;
use crate::records::{ObjectRecord, RectRecord};
use crate::result::MaxRsResult;

/// How a MaxRS query was (or would be) executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionStrategy {
    /// Everything fits in the memory budget: one in-memory plane sweep.
    InMemory,
    /// External-memory distribution sweep on a single thread.
    ExternalSequential,
    /// External-memory distribution sweep with the parallel slab stage.
    ExternalParallel,
}

impl ExecutionStrategy {
    /// A short human-readable name ("in-memory", "em-sequential",
    /// "em-parallel").
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionStrategy::InMemory => "in-memory",
            ExecutionStrategy::ExternalSequential => "em-sequential",
            ExecutionStrategy::ExternalParallel => "em-parallel",
        }
    }
}

/// Configuration of a [`MaxRsEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// The external-memory model (block size, buffer size) the engine
    /// simulates when a query does not fit in memory.
    pub em_config: EmConfig,
    /// Base options for external runs; the `parallelism` field inside doubles
    /// as the engine's worker cap (default: available cores).
    pub exact: ExactMaxRsOptions,
    /// Force a specific strategy instead of auto-selecting (useful for
    /// benchmarks and equivalence tests).
    ///
    /// Forcing [`ExecutionStrategy::ExternalParallel`] still respects the
    /// buffer-size worker cap: if the cap leaves a single worker, the run
    /// executes — and its [`EngineRun`] truthfully reports —
    /// [`ExecutionStrategy::ExternalSequential`].
    pub force_strategy: Option<ExecutionStrategy>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            em_config: EmConfig::paper_synthetic(),
            exact: ExactMaxRsOptions::default(),
            force_strategy: None,
        }
    }
}

/// The outcome of one engine query: the MaxRS answer plus how it was computed
/// and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineRun {
    /// The MaxRS answer.
    pub result: MaxRsResult,
    /// The strategy the engine selected (or was forced to use).
    pub strategy: ExecutionStrategy,
    /// Worker threads used by the solve (1 unless `strategy` is
    /// [`ExecutionStrategy::ExternalParallel`]).
    pub workers: usize,
    /// Blocks transferred while solving.  Zero for the in-memory strategy
    /// under [`MaxRsEngine::solve`]; under [`MaxRsEngine::solve_file`] the
    /// in-memory strategy counts the input file's scan.
    pub io: IoSnapshot,
}

/// A facade that answers MaxRS queries, auto-selecting between the in-memory
/// sweep, the sequential external distribution sweep and the parallel slab
/// stage from the dataset size `N`, the memory budget `M` and the core count.
///
/// ```
/// use maxrs_core::{ExecutionStrategy, MaxRsEngine};
/// use maxrs_geometry::{RectSize, WeightedPoint};
///
/// let engine = MaxRsEngine::new();
/// let stores = vec![
///     WeightedPoint::unit(1.0, 1.0),
///     WeightedPoint::unit(1.5, 1.2),
///     WeightedPoint::unit(9.0, 9.0),
/// ];
/// let run = engine.solve(&stores, RectSize::square(2.0)).unwrap();
/// assert_eq!(run.result.total_weight, 2.0);
/// // Three objects fit in any buffer: the engine picked the plane sweep.
/// assert_eq!(run.strategy, ExecutionStrategy::InMemory);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxRsEngine {
    opts: EngineOptions,
}

impl MaxRsEngine {
    /// An engine with the paper's default EM configuration and all cores
    /// available to the parallel slab stage.
    pub fn new() -> Self {
        MaxRsEngine::default()
    }

    /// An engine with explicit options.
    pub fn with_options(opts: EngineOptions) -> Self {
        MaxRsEngine { opts }
    }

    /// An engine with the given EM configuration and defaults otherwise.
    pub fn with_em_config(em_config: EmConfig) -> Self {
        MaxRsEngine {
            opts: EngineOptions {
                em_config,
                ..Default::default()
            },
        }
    }

    /// The engine's configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Picks the execution strategy for a dataset of `n` objects and returns
    /// it together with the worker count an external run would use.
    ///
    /// * `n` rectangles fit in the buffer (`n <= M/sizeof(RectRecord)`, with
    ///   [`ExactMaxRsOptions::memory_rects`] honored as an override) →
    ///   [`ExecutionStrategy::InMemory`];
    /// * otherwise, if more than one worker survives the buffer-size cap
    ///   (see [`ExactMaxRsOptions::effective_parallelism`]) →
    ///   [`ExecutionStrategy::ExternalParallel`];
    /// * otherwise → [`ExecutionStrategy::ExternalSequential`].
    ///
    /// The core count enters through the default of
    /// [`ExactMaxRsOptions::parallelism`] (see
    /// [`available_parallelism`](crate::parallel::available_parallelism));
    /// an explicit `parallelism` override is honored as-is, so callers can
    /// oversubscribe a core-limited machine deliberately.
    ///
    /// This prediction uses the engine's own [`EngineOptions::em_config`] and
    /// therefore describes [`solve`](MaxRsEngine::solve);
    /// [`solve_file`](MaxRsEngine::solve_file) derives the same decision from
    /// the *passed context's* configuration instead.
    pub fn select_strategy(&self, n: u64) -> (ExecutionStrategy, usize) {
        self.select_for(n, self.opts.em_config)
    }

    /// Strategy selection against an explicit EM configuration (the engine's
    /// own for [`solve`](MaxRsEngine::solve), the target context's for
    /// [`solve_file`](MaxRsEngine::solve_file)).
    fn select_for(&self, n: u64, config: EmConfig) -> (ExecutionStrategy, usize) {
        let workers = self.opts.exact.effective_parallelism(config);
        if let Some(forced) = self.opts.force_strategy {
            return match forced {
                // A forced parallel run still respects the buffer-size worker
                // cap; report the strategy that would actually execute so
                // this prediction always matches the produced `EngineRun`.
                ExecutionStrategy::ExternalParallel if workers > 1 => (forced, workers),
                ExecutionStrategy::ExternalParallel => {
                    (ExecutionStrategy::ExternalSequential, 1)
                }
                _ => (forced, 1),
            };
        }
        let mem_rects = self
            .opts
            .exact
            .memory_rects
            .unwrap_or_else(|| config.mem_records::<RectRecord>()) as u64;
        if n <= mem_rects {
            (ExecutionStrategy::InMemory, 1)
        } else if workers > 1 {
            (ExecutionStrategy::ExternalParallel, workers)
        } else {
            (ExecutionStrategy::ExternalSequential, 1)
        }
    }

    /// Solves a MaxRS query over an in-memory object slice.
    ///
    /// External strategies run against a fresh [`EmContext`] with the engine's
    /// configuration; the reported I/O covers the solve only (loading the
    /// objects into the context is excluded, as in the paper's measurements).
    pub fn solve(&self, objects: &[WeightedPoint], size: RectSize) -> Result<EngineRun> {
        let (strategy, workers) = self.select_strategy(objects.len() as u64);
        if strategy == ExecutionStrategy::InMemory {
            return Ok(EngineRun {
                result: max_rs_in_memory(objects, size),
                strategy,
                workers: 1,
                io: IoSnapshot::default(),
            });
        }
        let ctx = EmContext::new(self.opts.em_config);
        let file = load_objects(&ctx, objects)?;
        // No reset needed: solve_external reports the I/O as a delta, which
        // already excludes the load above.
        let run = self.solve_external(&ctx, &file, size, strategy, workers)?;
        ctx.delete_file(file)?;
        Ok(run)
    }

    /// Solves a MaxRS query over an object file already stored in `ctx`.
    ///
    /// Unlike [`solve`](MaxRsEngine::solve), the in-memory strategy here still
    /// reads the file (and counts that scan's I/O); the reported I/O is the
    /// delta of `ctx`'s counters across the call.
    pub fn solve_file(
        &self,
        ctx: &EmContext,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
    ) -> Result<EngineRun> {
        // The file lives in `ctx`, so the in-memory cutoff and worker cap
        // must come from *its* configuration — the engine's own em_config
        // only describes contexts the engine creates itself.
        let (strategy, workers) = self.select_for(objects.len(), ctx.config());
        if strategy == ExecutionStrategy::InMemory {
            let before = ctx.stats();
            let records = ctx.read_all(objects)?;
            let points: Vec<WeightedPoint> = records.iter().map(|r| r.0).collect();
            return Ok(EngineRun {
                result: max_rs_in_memory(&points, size),
                strategy,
                workers: 1,
                io: ctx.stats().since(&before),
            });
        }
        self.solve_external(ctx, objects, size, strategy, workers)
    }

    fn solve_external(
        &self,
        ctx: &EmContext,
        objects: &TupleFile<ObjectRecord>,
        size: RectSize,
        strategy: ExecutionStrategy,
        workers: usize,
    ) -> Result<EngineRun> {
        let exact_opts = ExactMaxRsOptions {
            parallelism: if strategy == ExecutionStrategy::ExternalParallel {
                workers
            } else {
                1
            },
            ..self.opts.exact
        };
        // Report what actually runs: even a forced ExternalParallel degrades
        // to the sequential sweep when the buffer-size cap leaves one worker
        // (see `ExactMaxRsOptions::effective_parallelism`), and the run must
        // say so rather than echo the request.
        let actual_workers = exact_opts.effective_parallelism(ctx.config());
        let actual_strategy = if actual_workers > 1 {
            ExecutionStrategy::ExternalParallel
        } else {
            ExecutionStrategy::ExternalSequential
        };
        let before = ctx.stats();
        let result = exact_max_rs(ctx, objects, size, &exact_opts)?;
        Ok(EngineRun {
            result,
            strategy: actual_strategy,
            workers: actual_workers,
            io: ctx.stats().since(&before),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::rect_objective;

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| WeightedPoint::at(next() * extent, next() * extent, 1.0 + (next() * 4.0).floor()))
            .collect()
    }

    #[test]
    fn small_dataset_selects_in_memory() {
        let engine = MaxRsEngine::new();
        let (strategy, _) = engine.select_strategy(100);
        assert_eq!(strategy, ExecutionStrategy::InMemory);
    }

    #[test]
    fn large_dataset_selects_an_external_strategy() {
        let engine = MaxRsEngine::new();
        let mem_rects = engine.options().em_config.mem_records::<RectRecord>() as u64;
        let (strategy, workers) = engine.select_strategy(mem_rects + 1);
        match strategy {
            ExecutionStrategy::ExternalParallel => assert!(workers > 1),
            ExecutionStrategy::ExternalSequential => assert_eq!(workers, 1),
            ExecutionStrategy::InMemory => panic!("dataset larger than M must go external"),
        }
    }

    #[test]
    fn forced_strategy_is_respected() {
        let opts = EngineOptions {
            force_strategy: Some(ExecutionStrategy::ExternalSequential),
            ..Default::default()
        };
        let engine = MaxRsEngine::with_options(opts);
        assert_eq!(
            engine.select_strategy(3).0,
            ExecutionStrategy::ExternalSequential
        );
    }

    #[test]
    fn forced_parallel_under_a_tiny_buffer_reports_sequential() {
        // 8 pool blocks -> worker quota 1: the forced parallel request cannot
        // be honored, and the run must say what actually executed.
        let engine = MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 8 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                parallelism: 4,
                ..Default::default()
            },
            force_strategy: Some(ExecutionStrategy::ExternalParallel),
        });
        let objects = pseudo_random_objects(400, 3, 1000.0);
        let run = engine.solve(&objects, RectSize::square(80.0)).unwrap();
        assert_eq!(run.strategy, ExecutionStrategy::ExternalSequential);
        assert_eq!(run.workers, 1);
    }

    #[test]
    fn all_strategies_agree_on_the_answer() {
        let objects = pseudo_random_objects(600, 21, 2000.0);
        let size = RectSize::square(180.0);
        // A small buffer so 600 objects genuinely exceed M.
        let em_config = EmConfig::new(512, 64 * 512).unwrap();
        let reference = max_rs_in_memory(&objects, size);

        let mut runs = Vec::new();
        for forced in [
            Some(ExecutionStrategy::InMemory),
            Some(ExecutionStrategy::ExternalSequential),
            Some(ExecutionStrategy::ExternalParallel),
            None,
        ] {
            let engine = MaxRsEngine::with_options(EngineOptions {
                em_config,
                exact: ExactMaxRsOptions {
                    memory_rects: Some(64),
                    parallelism: 4,
                    ..Default::default()
                },
                force_strategy: forced,
            });
            let run = engine.solve(&objects, size).unwrap();
            assert_eq!(run.result.total_weight, reference.total_weight, "{forced:?}");
            assert_eq!(
                rect_objective(&objects, run.result.center, size),
                run.result.total_weight,
                "{forced:?}"
            );
            runs.push(run);
        }
        // The auto-selected run must have gone external (600 > M/rect).
        assert_ne!(runs[3].strategy, ExecutionStrategy::InMemory);
        // External strategies do I/O, the in-memory one does not.
        assert_eq!(runs[0].io.total(), 0);
        assert!(runs[1].io.total() > 0);
    }

    #[test]
    fn solve_file_reports_io_delta() {
        let objects = pseudo_random_objects(500, 5, 1000.0);
        let em_config = EmConfig::new(512, 16 * 512).unwrap();
        let engine = MaxRsEngine::with_em_config(em_config);
        let ctx = EmContext::new(em_config);
        let file = load_objects(&ctx, &objects).unwrap();
        let run = engine.solve_file(&ctx, &file, RectSize::square(100.0)).unwrap();
        assert!(run.io.total() > 0);
        assert_eq!(
            rect_objective(&objects, run.result.center, RectSize::square(100.0)),
            run.result.total_weight
        );
        ctx.delete_file(file).unwrap();
    }

    #[test]
    fn empty_dataset() {
        let engine = MaxRsEngine::new();
        let run = engine.solve(&[], RectSize::square(10.0)).unwrap();
        assert_eq!(run.result.total_weight, 0.0);
        assert_eq!(run.strategy, ExecutionStrategy::InMemory);
    }
}
