//! A segment tree with range-add and maximum queries over the elementary
//! x-intervals of a slab.
//!
//! The in-memory plane sweep (Section 4 of the paper, Imai–Asano) sweeps a
//! horizontal line and needs, after every insertion / deletion of a
//! rectangle's x-range, (a) the maximum location-weight over the slab and
//! (b) one contiguous run of elementary intervals attaining it.  Both are
//! answered in `O(log n)` by this tree.

/// Range-add / range-max segment tree over `n` leaves with lazy propagation.
#[derive(Debug, Clone)]
pub struct SegmentTree {
    n: usize,
    /// `max[v]` = maximum leaf value in the subtree of `v`, including every
    /// pending addition stored at `v` or above it... pending additions at `v`
    /// itself are already folded in; `lazy[v]` still has to be pushed to the
    /// children before they are inspected.
    max: Vec<f64>,
    lazy: Vec<f64>,
}

impl SegmentTree {
    /// Creates a tree over `n` leaves, all initialized to 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "segment tree needs at least one leaf");
        SegmentTree {
            n,
            max: vec![0.0; 4 * n],
            lazy: vec![0.0; 4 * n],
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the tree has no leaves (never the case; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` to every leaf in `[lo, hi)` (half-open leaf index range).
    /// Empty ranges are ignored.
    pub fn range_add(&mut self, lo: usize, hi: usize, delta: f64) {
        if lo >= hi {
            return;
        }
        assert!(hi <= self.n, "range end {hi} exceeds leaf count {}", self.n);
        self.add(1, 0, self.n, lo, hi, delta);
    }

    /// The maximum leaf value.
    pub fn global_max(&self) -> f64 {
        self.max[1]
    }

    /// Value of a single leaf (mainly for tests and assertions).
    pub fn leaf_value(&self, idx: usize) -> f64 {
        assert!(idx < self.n);
        self.leaf(1, 0, self.n, idx, 0.0)
    }

    /// Returns a leaf attaining the global maximum (the leftmost one on the
    /// argmax path).
    ///
    /// The in-memory plane sweep reports this single elementary interval as
    /// the max-interval: its *interior* is guaranteed to consist of optimal
    /// points even under the paper's open-boundary semantics, which a longer
    /// run (possibly containing rectangle edges in its interior) cannot
    /// guarantee.  See the module docs of [`crate::plane_sweep`].
    ///
    /// The search descends by comparing sibling maxima only (never a
    /// recomputed value against the root maximum), so it cannot be derailed by
    /// floating-point re-association when weights are not exactly
    /// representable.
    pub fn max_leaf(&self) -> usize {
        let mut v = 1usize;
        let mut node_lo = 0usize;
        let mut node_hi = self.n;
        while node_hi - node_lo > 1 {
            let mid = (node_lo + node_hi) / 2;
            if self.max[2 * v] >= self.max[2 * v + 1] {
                v *= 2;
                node_hi = mid;
            } else {
                v = 2 * v + 1;
                node_lo = mid;
            }
        }
        node_lo
    }

    /// Returns the leftmost maximal run `[lo, hi)` of leaves whose value
    /// equals the global maximum.
    ///
    /// Equality is exact: leaves covered by the same set of additions hold
    /// bit-identical sums, so the run faithfully describes one max-interval.
    pub fn max_run(&self) -> (usize, usize) {
        let target = self.global_max();
        let start = self
            .find_first_at_least(1, 0, self.n, target, 0.0)
            .expect("global max must be attained by some leaf");
        // Find the first leaf after `start` whose value is strictly below the
        // maximum; the run ends there.
        let end = self
            .find_first_below(1, 0, self.n, start, target, 0.0)
            .unwrap_or(self.n);
        (start, end)
    }

    // ---- internals -----------------------------------------------------------

    fn add(&mut self, v: usize, node_lo: usize, node_hi: usize, lo: usize, hi: usize, delta: f64) {
        if lo <= node_lo && node_hi <= hi {
            self.max[v] += delta;
            self.lazy[v] += delta;
            return;
        }
        let mid = (node_lo + node_hi) / 2;
        if lo < mid {
            self.add(2 * v, node_lo, mid, lo, hi.min(mid), delta);
        }
        if hi > mid {
            self.add(2 * v + 1, mid, node_hi, lo.max(mid), hi, delta);
        }
        self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]) + self.lazy[v];
    }

    fn leaf(&self, v: usize, node_lo: usize, node_hi: usize, idx: usize, acc: f64) -> f64 {
        if node_hi - node_lo == 1 {
            return self.max[v] + acc;
        }
        let acc = acc + self.lazy[v];
        let mid = (node_lo + node_hi) / 2;
        if idx < mid {
            self.leaf(2 * v, node_lo, mid, idx, acc)
        } else {
            self.leaf(2 * v + 1, mid, node_hi, idx, acc)
        }
    }

    /// Leftmost leaf whose value is `>= target`, or `None`.
    fn find_first_at_least(
        &self,
        v: usize,
        node_lo: usize,
        node_hi: usize,
        target: f64,
        acc: f64,
    ) -> Option<usize> {
        if self.max[v] + acc < target {
            return None;
        }
        if node_hi - node_lo == 1 {
            return Some(node_lo);
        }
        let acc = acc + self.lazy[v];
        let mid = (node_lo + node_hi) / 2;
        self.find_first_at_least(2 * v, node_lo, mid, target, acc)
            .or_else(|| self.find_first_at_least(2 * v + 1, mid, node_hi, target, acc))
    }

    /// Leftmost leaf at index `>= from` whose value is `< target`, or `None`.
    fn find_first_below(
        &self,
        v: usize,
        node_lo: usize,
        node_hi: usize,
        from: usize,
        target: f64,
        acc: f64,
    ) -> Option<usize> {
        if node_hi <= from {
            return None;
        }
        // If every leaf of this subtree is >= target it cannot contain the answer
        // ... only when the subtree minimum is >= target.  We do not track
        // minima, so descend unless the subtree lies left of `from`; the
        // traversal is still O(run length + log n), which is fine because the
        // run is part of the output.
        if node_hi - node_lo == 1 {
            return if self.max[v] + acc < target {
                Some(node_lo)
            } else {
                None
            };
        }
        let acc = acc + self.lazy[v];
        let mid = (node_lo + node_hi) / 2;
        self.find_first_below(2 * v, node_lo, mid, from, target, acc)
            .or_else(|| self.find_first_below(2 * v + 1, mid, node_hi, from, target, acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force model used to validate the tree.
    struct Model(Vec<f64>);
    impl Model {
        fn new(n: usize) -> Self {
            Model(vec![0.0; n])
        }
        fn range_add(&mut self, lo: usize, hi: usize, d: f64) {
            for v in &mut self.0[lo..hi] {
                *v += d;
            }
        }
        fn global_max(&self) -> f64 {
            self.0.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        }
        fn max_run(&self) -> (usize, usize) {
            let m = self.global_max();
            let start = self.0.iter().position(|&v| v == m).unwrap();
            let end = self.0[start..]
                .iter()
                .position(|&v| v != m)
                .map(|p| start + p)
                .unwrap_or(self.0.len());
            (start, end)
        }
    }

    #[test]
    fn single_leaf() {
        let mut t = SegmentTree::new(1);
        assert_eq!(t.global_max(), 0.0);
        assert_eq!(t.max_run(), (0, 1));
        t.range_add(0, 1, 5.0);
        assert_eq!(t.global_max(), 5.0);
        assert_eq!(t.leaf_value(0), 5.0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn basic_overlaps() {
        let mut t = SegmentTree::new(8);
        t.range_add(0, 4, 1.0);
        t.range_add(2, 6, 1.0);
        t.range_add(3, 8, 1.0);
        // values: 1 1 2 3 2 2 1 1
        assert_eq!(t.global_max(), 3.0);
        assert_eq!(t.max_run(), (3, 4));
        assert_eq!(t.max_leaf(), 3);
        for (i, expected) in [1.0, 1.0, 2.0, 3.0, 2.0, 2.0, 1.0, 1.0].iter().enumerate() {
            assert_eq!(t.leaf_value(i), *expected, "leaf {i}");
        }
        t.range_add(2, 6, -1.0);
        // values: 1 1 1 2 1 1 1 1
        assert_eq!(t.global_max(), 2.0);
        assert_eq!(t.max_run(), (3, 4));
        t.range_add(3, 4, -2.0);
        // values: 1 1 1 0 1 1 1 1 -> max run is the leftmost run of 1s
        assert_eq!(t.global_max(), 1.0);
        assert_eq!(t.max_run(), (0, 3));
        assert_eq!(t.max_leaf(), 0);
    }

    #[test]
    fn empty_and_full_ranges() {
        let mut t = SegmentTree::new(5);
        t.range_add(2, 2, 10.0); // empty range: no effect
        assert_eq!(t.global_max(), 0.0);
        t.range_add(0, 5, 2.5);
        assert_eq!(t.global_max(), 2.5);
        assert_eq!(t.max_run(), (0, 5));
    }

    #[test]
    fn randomized_against_model() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 2, 3, 7, 16, 33, 100] {
            let mut tree = SegmentTree::new(n);
            let mut model = Model::new(n);
            let mut active: Vec<(usize, usize, f64)> = Vec::new();
            for step in 0..500 {
                let remove = !active.is_empty() && (next() % 3 == 0 || step > 400);
                if remove {
                    let idx = (next() as usize) % active.len();
                    let (lo, hi, w) = active.swap_remove(idx);
                    tree.range_add(lo, hi, -w);
                    model.range_add(lo, hi, -w);
                } else {
                    let lo = (next() as usize) % n;
                    let hi = lo + 1 + (next() as usize) % (n - lo);
                    let w = ((next() % 10) + 1) as f64;
                    tree.range_add(lo, hi, w);
                    model.range_add(lo, hi, w);
                    active.push((lo, hi, w));
                }
                assert_eq!(tree.global_max(), model.global_max(), "n={n} step={step}");
                assert_eq!(tree.max_run(), model.max_run(), "n={n} step={step}");
                assert_eq!(tree.max_leaf(), model.max_run().0, "n={n} step={step}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut t = SegmentTree::new(4);
        t.range_add(0, 5, 1.0);
    }
}
