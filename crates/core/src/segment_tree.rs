//! A segment tree with range-add and maximum queries over the elementary
//! x-intervals of a slab.
//!
//! The in-memory plane sweep (Section 4 of the paper, Imai–Asano) sweeps a
//! horizontal line and needs, after every insertion / deletion of a
//! rectangle's x-range, (a) the maximum location-weight over the slab and
//! (b) one contiguous run of elementary intervals attaining it.  Both are
//! answered in `O(log n)` by this tree.
//!
//! The layout is the *iterative* power-of-two scheme: leaves live at indices
//! `n2..n2 + n` where `n2 = next_pow2(n)`, each array holds `2 * n2` slots
//! (down from the `4 * n` of the naive recursive layout), and the hot
//! operations — [`SegmentTree::range_add`], [`SegmentTree::global_max`],
//! [`SegmentTree::max_leaf`] — walk the tree with loops instead of recursion.
//! Padding leaves in `n..n2` are pinned to `-inf` so they can never win a
//! maximum query, even when every real leaf is negative (the MinRS weight
//! scale is `-1`).  [`SegmentTree::reset`] re-dimensions the tree in place so
//! a sweep scratch can reuse the allocation across slabs.

/// Range-add / range-max segment tree over `n` leaves with lazy propagation.
#[derive(Debug, Clone, Default)]
pub struct SegmentTree {
    n: usize,
    /// Leaf span of the power-of-two layout (`next_pow2(n)`).
    n2: usize,
    /// `max[v]` = maximum leaf value in the subtree of `v`, with every pending
    /// addition stored at `v` itself already folded in; `add[v]` still has to
    /// be accumulated on the way down before children are inspected.
    max: Vec<f64>,
    add: Vec<f64>,
}

impl SegmentTree {
    /// Creates a tree over `n` leaves, all initialized to 0.
    pub fn new(n: usize) -> Self {
        let mut tree = SegmentTree::default();
        tree.reset(n);
        tree
    }

    /// Re-dimensions the tree to `n` zero-valued leaves, reusing the existing
    /// allocation when it is large enough.
    pub fn reset(&mut self, n: usize) {
        assert!(n > 0, "segment tree needs at least one leaf");
        let n2 = n.next_power_of_two();
        self.n = n;
        self.n2 = n2;
        self.max.clear();
        self.max.resize(2 * n2, 0.0);
        self.add.clear();
        self.add.resize(2 * n2, 0.0);
        // Padding leaves must lose every maximum query, including against
        // all-negative real leaves.
        for slot in &mut self.max[n2 + n..] {
            *slot = f64::NEG_INFINITY;
        }
        for v in (1..n2).rev() {
            self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]);
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the tree has no leaves (only before the first
    /// [`SegmentTree::reset`] of a default-constructed tree).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` to every leaf in `[lo, hi)` (half-open leaf index range).
    /// Empty ranges are ignored.
    pub fn range_add(&mut self, lo: usize, hi: usize, delta: f64) {
        if lo >= hi {
            return;
        }
        assert!(hi <= self.n, "range end {hi} exceeds leaf count {}", self.n);
        let (l0, r0) = (lo + self.n2, hi - 1 + self.n2);
        let (mut l, mut r) = (l0, r0 + 1);
        while l < r {
            if l & 1 == 1 {
                self.max[l] += delta;
                self.add[l] += delta;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                self.max[r] += delta;
                self.add[r] += delta;
            }
            l >>= 1;
            r >>= 1;
        }
        self.pull_up(l0);
        self.pull_up(r0);
    }

    /// The maximum leaf value.
    pub fn global_max(&self) -> f64 {
        self.max[1]
    }

    /// Value of a single leaf (mainly for tests and assertions).
    pub fn leaf_value(&self, idx: usize) -> f64 {
        assert!(idx < self.n);
        let mut acc = self.max[idx + self.n2];
        let mut v = (idx + self.n2) >> 1;
        while v >= 1 {
            acc += self.add[v];
            v >>= 1;
        }
        acc
    }

    /// Returns a leaf attaining the global maximum (the leftmost one on the
    /// argmax path).
    ///
    /// The in-memory plane sweep reports this single elementary interval as
    /// the max-interval: its *interior* is guaranteed to consist of optimal
    /// points even under the paper's open-boundary semantics, which a longer
    /// run (possibly containing rectangle edges in its interior) cannot
    /// guarantee.  See the module docs of [`crate::plane_sweep`].
    ///
    /// The search descends by comparing sibling maxima only (never a
    /// recomputed value against the root maximum), so it cannot be derailed by
    /// floating-point re-association when weights are not exactly
    /// representable.  Padding leaves hold `-inf` and therefore never lie on
    /// the argmax path.
    pub fn max_leaf(&self) -> usize {
        let mut v = 1usize;
        while v < self.n2 {
            v = if self.max[2 * v] >= self.max[2 * v + 1] {
                2 * v
            } else {
                2 * v + 1
            };
        }
        v - self.n2
    }

    /// Returns the leftmost maximal run `[lo, hi)` of leaves whose value
    /// equals the global maximum.
    ///
    /// Equality is exact: leaves covered by the same set of additions hold
    /// bit-identical sums, so the run faithfully describes one max-interval.
    pub fn max_run(&self) -> (usize, usize) {
        let target = self.global_max();
        let start = self
            .find_first_at_least(1, target, 0.0)
            .expect("global max must be attained by some leaf");
        // Find the first leaf after `start` whose value is strictly below the
        // maximum; the run ends there.  Padding leaves hold `-inf`, so a run
        // that reaches the last real leaf stops at the first padding slot —
        // clamp it back to the real leaf count.
        let end = self
            .find_first_below(1, start, target, 0.0)
            .unwrap_or(self.n)
            .min(self.n);
        (start, end)
    }

    // ---- internals -----------------------------------------------------------

    /// Recomputes the ancestors of tree slot `v` after their descendants
    /// changed.
    fn pull_up(&mut self, mut v: usize) {
        v >>= 1;
        while v >= 1 {
            self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]) + self.add[v];
            v >>= 1;
        }
    }

    /// `[lo, hi)` leaf range covered by tree slot `v`.
    fn node_span(&self, v: usize) -> (usize, usize) {
        let level = usize::BITS - 1 - v.leading_zeros();
        let width = self.n2 >> level;
        let lo = (v - (1usize << level)) * width;
        (lo, lo + width)
    }

    /// Leftmost leaf whose value is `>= target`, or `None`.
    fn find_first_at_least(&self, v: usize, target: f64, acc: f64) -> Option<usize> {
        if self.max[v] + acc < target {
            return None;
        }
        if v >= self.n2 {
            return Some(v - self.n2);
        }
        let acc = acc + self.add[v];
        self.find_first_at_least(2 * v, target, acc)
            .or_else(|| self.find_first_at_least(2 * v + 1, target, acc))
    }

    /// Leftmost leaf at index `>= from` whose value is `< target`, or `None`.
    fn find_first_below(&self, v: usize, from: usize, target: f64, acc: f64) -> Option<usize> {
        let (node_lo, node_hi) = self.node_span(v);
        if node_hi <= from {
            return None;
        }
        // Descend unless the subtree lies left of `from`; the traversal is
        // still O(run length + log n), which is fine because the run is part
        // of the output.
        if v >= self.n2 {
            return if self.max[v] + acc < target {
                Some(node_lo)
            } else {
                None
            };
        }
        let acc = acc + self.add[v];
        self.find_first_below(2 * v, from, target, acc)
            .or_else(|| self.find_first_below(2 * v + 1, from, target, acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force model used to validate the tree.
    struct Model(Vec<f64>);
    impl Model {
        fn new(n: usize) -> Self {
            Model(vec![0.0; n])
        }
        fn range_add(&mut self, lo: usize, hi: usize, d: f64) {
            for v in &mut self.0[lo..hi] {
                *v += d;
            }
        }
        fn global_max(&self) -> f64 {
            self.0.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        }
        fn max_run(&self) -> (usize, usize) {
            let m = self.global_max();
            let start = self.0.iter().position(|&v| v == m).unwrap();
            let end = self.0[start..]
                .iter()
                .position(|&v| v != m)
                .map(|p| start + p)
                .unwrap_or(self.0.len());
            (start, end)
        }
    }

    #[test]
    fn single_leaf() {
        let mut t = SegmentTree::new(1);
        assert_eq!(t.global_max(), 0.0);
        assert_eq!(t.max_run(), (0, 1));
        t.range_add(0, 1, 5.0);
        assert_eq!(t.global_max(), 5.0);
        assert_eq!(t.leaf_value(0), 5.0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn basic_overlaps() {
        let mut t = SegmentTree::new(8);
        t.range_add(0, 4, 1.0);
        t.range_add(2, 6, 1.0);
        t.range_add(3, 8, 1.0);
        // values: 1 1 2 3 2 2 1 1
        assert_eq!(t.global_max(), 3.0);
        assert_eq!(t.max_run(), (3, 4));
        assert_eq!(t.max_leaf(), 3);
        for (i, expected) in [1.0, 1.0, 2.0, 3.0, 2.0, 2.0, 1.0, 1.0].iter().enumerate() {
            assert_eq!(t.leaf_value(i), *expected, "leaf {i}");
        }
        t.range_add(2, 6, -1.0);
        // values: 1 1 1 2 1 1 1 1
        assert_eq!(t.global_max(), 2.0);
        assert_eq!(t.max_run(), (3, 4));
        t.range_add(3, 4, -2.0);
        // values: 1 1 1 0 1 1 1 1 -> max run is the leftmost run of 1s
        assert_eq!(t.global_max(), 1.0);
        assert_eq!(t.max_run(), (0, 3));
        assert_eq!(t.max_leaf(), 0);
    }

    #[test]
    fn empty_and_full_ranges() {
        let mut t = SegmentTree::new(5);
        t.range_add(2, 2, 10.0); // empty range: no effect
        assert_eq!(t.global_max(), 0.0);
        t.range_add(0, 5, 2.5);
        assert_eq!(t.global_max(), 2.5);
        assert_eq!(t.max_run(), (0, 5));
    }

    #[test]
    fn all_negative_leaves_ignore_padding() {
        // 5 leaves pad to 8; the three padding leaves must never win even when
        // every real leaf goes negative (the MinRS weight scale is -1).
        let mut t = SegmentTree::new(5);
        t.range_add(0, 5, -3.0);
        t.range_add(2, 3, 1.0);
        // values: -3 -3 -2 -3 -3
        assert_eq!(t.global_max(), -2.0);
        assert_eq!(t.max_leaf(), 2);
        assert_eq!(t.max_run(), (2, 3));
        t.range_add(2, 3, -1.0);
        // values: all -3; the run must stop at the real leaf count.
        assert_eq!(t.global_max(), -3.0);
        assert_eq!(t.max_run(), (0, 5));
    }

    #[test]
    fn reset_reuses_the_allocation() {
        let mut t = SegmentTree::new(100);
        t.range_add(10, 90, 7.0);
        t.reset(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.global_max(), 0.0);
        t.range_add(1, 3, 2.0);
        assert_eq!(t.global_max(), 2.0);
        assert_eq!(t.max_run(), (1, 3));
        assert_eq!(t.leaf_value(0), 0.0);
        t.reset(100);
        assert_eq!(t.global_max(), 0.0);
        assert_eq!(t.max_run(), (0, 100));
    }

    #[test]
    fn randomized_against_model() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 2, 3, 7, 16, 33, 100] {
            let mut tree = SegmentTree::new(n);
            let mut model = Model::new(n);
            let mut active: Vec<(usize, usize, f64)> = Vec::new();
            for step in 0..500 {
                let remove = !active.is_empty() && (next() % 3 == 0 || step > 400);
                if remove {
                    let idx = (next() as usize) % active.len();
                    let (lo, hi, w) = active.swap_remove(idx);
                    tree.range_add(lo, hi, -w);
                    model.range_add(lo, hi, -w);
                } else {
                    let lo = (next() as usize) % n;
                    let hi = lo + 1 + (next() as usize) % (n - lo);
                    let w = ((next() % 10) + 1) as f64;
                    tree.range_add(lo, hi, w);
                    model.range_add(lo, hi, w);
                    active.push((lo, hi, w));
                }
                assert_eq!(tree.global_max(), model.global_max(), "n={n} step={step}");
                assert_eq!(tree.max_run(), model.max_run(), "n={n} step={step}");
                assert_eq!(tree.max_leaf(), model.max_run().0, "n={n} step={step}");
            }
        }
    }

    #[test]
    fn randomized_leaf_values_match_model() {
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 2, 6, 16, 31] {
            let mut tree = SegmentTree::new(n);
            let mut model = Model::new(n);
            for _ in 0..200 {
                let lo = (next() as usize) % n;
                let hi = lo + 1 + (next() as usize) % (n - lo);
                let w = ((next() % 21) as f64) - 10.0;
                tree.range_add(lo, hi, w);
                model.range_add(lo, hi, w);
                for i in 0..n {
                    assert_eq!(tree.leaf_value(i), model.0[i], "n={n} leaf={i}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut t = SegmentTree::new(4);
        t.range_add(0, 5, 1.0);
    }
}
