//! MergeSweep: combining the slab-files of `m` sub-slabs (Algorithm 1).
//!
//! The merge sweeps a conceptual horizontal line bottom-to-top across the `m`
//! child slab-files and the file of spanning rectangles, maintaining
//!
//! * `up_sum[i]` — the total weight of spanning rectangles currently covering
//!   sub-slab `i`, and
//! * `tslab[i]` — the most recent max-interval tuple of sub-slab `i`,
//!
//! and emits, at every event y, the best max-interval over the union slab.
//!
//! Two refinements over the paper's pseudo-code:
//!
//! * an output tuple is emitted at spanning-rectangle events as well, because
//!   the location-weight of the union slab changes there even though no child
//!   slab-file has a tuple at that y;
//! * ties between sub-slabs are broken by taking the first (leftmost)
//!   max-interval instead of merging touching intervals (`GetMaxInterval`).
//!   Under open-boundary semantics a merged interval can contain points that
//!   do not attain the maximum (exactly on a shared rectangle edge), whereas
//!   the interior of a single sub-slab max-interval always does; the reported
//!   maximum value is identical either way.  See [`crate::plane_sweep`].

use maxrs_em::{EmContext, TupleFile, TupleReader};
use maxrs_geometry::Interval;

use crate::error::{CoreError, Result};
use crate::records::{SlabTuple, SpanEvent};

/// Merges the slab-files `slab_files` (one per sub-slab, y-sorted) and the
/// y-sorted spanning events into the slab-file of the union slab.
pub fn merge_sweep(
    ctx: &EmContext,
    slab_files: &[TupleFile<SlabTuple>],
    slabs: &[Interval],
    span_events: &TupleFile<SpanEvent>,
) -> Result<TupleFile<SlabTuple>> {
    if slab_files.len() != slabs.len() {
        return Err(CoreError::Internal(format!(
            "merge_sweep got {} slab files but {} slabs",
            slab_files.len(),
            slabs.len()
        )));
    }
    let m = slab_files.len();
    let mut readers: Vec<TupleReader<'_, SlabTuple>> =
        slab_files.iter().map(|f| ctx.open_reader(f)).collect();
    let mut span_reader: TupleReader<'_, SpanEvent> = ctx.open_reader(span_events);
    let mut writer = ctx.create_writer::<SlabTuple>()?;

    // Sweep state.
    let mut up_sum = vec![0.0f64; m];
    let mut tslab: Vec<SlabTuple> = slabs
        .iter()
        .map(|s| SlabTuple::new(f64::NEG_INFINITY, s.lo, s.hi, 0.0))
        .collect();

    loop {
        // The next event y is the smallest head y over all inputs.
        let mut next_y: Option<f64> = None;
        for reader in readers.iter_mut() {
            if let Some(t) = reader.peek()? {
                next_y = Some(next_y.map_or(t.y, |y: f64| y.min(t.y)));
            }
        }
        if let Some(e) = span_reader.peek()? {
            next_y = Some(next_y.map_or(e.y, |y: f64| y.min(e.y)));
        }
        let y = match next_y {
            Some(y) => y,
            None => break,
        };

        // Consume every record at exactly this y.
        while let Some(e) = span_reader.peek()? {
            if e.y > y {
                break;
            }
            let e = span_reader.next_record()?.expect("peeked span event");
            for i in e.slab_lo as usize..=(e.slab_hi as usize).min(m.saturating_sub(1)) {
                up_sum[i] += e.delta();
            }
        }
        for (i, reader) in readers.iter_mut().enumerate() {
            while let Some(t) = reader.peek()? {
                if t.y > y {
                    break;
                }
                tslab[i] = reader.next_record()?.expect("peeked slab tuple");
            }
        }

        // Pick the best total over the sub-slabs and emit its max-interval.
        let mut best_idx = 0usize;
        let mut best = f64::NEG_INFINITY;
        for i in 0..m {
            let total = tslab[i].sum + up_sum[i];
            if total > best {
                best = total;
                best_idx = i;
            }
        }
        let winner = &tslab[best_idx];
        writer.push(&SlabTuple::new(y, winner.x_lo, winner.x_hi, best))?;
    }

    writer.finish().map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane_sweep::{best_region_from_tuples, plane_sweep_slab};
    use crate::records::RectRecord;
    use maxrs_em::EmConfig;
    use maxrs_geometry::Rect;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 4096).unwrap())
    }

    fn rect(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64, w: f64) -> RectRecord {
        RectRecord::new(Rect::new(x_lo, x_hi, y_lo, y_hi), w)
    }

    /// Merging the slab-files of a vertical split must give the same best
    /// region as sweeping everything in one slab.
    #[test]
    fn merge_matches_single_slab_sweep() {
        let ctx = ctx();
        let rects = vec![
            rect(0.0, 4.0, 0.0, 4.0, 1.0),
            rect(2.0, 6.0, 1.0, 5.0, 1.0),
            rect(3.0, 7.0, 2.0, 6.0, 1.0),
            rect(11.0, 13.0, 0.0, 2.0, 1.0),
            rect(12.0, 14.0, 1.0, 3.0, 1.0),
        ];
        // Reference: sweep the whole plane at once.
        let reference = plane_sweep_slab(&rects, Interval::UNBOUNDED);
        let expected = best_region_from_tuples(&reference).unwrap();

        // Split at x = 5: rectangles are cropped, none spans the whole slab.
        let boundary = 5.0;
        let left_slab = Interval::new(f64::NEG_INFINITY, boundary);
        let right_slab = Interval::new(boundary, f64::INFINITY);
        let left_tuples = plane_sweep_slab(&rects, left_slab);
        let right_tuples = plane_sweep_slab(&rects, right_slab);

        let left_file = ctx.write_all(&left_tuples).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let no_spans = ctx.write_all::<SpanEvent>(&[]).unwrap();

        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &no_spans,
        )
        .unwrap();
        let merged_tuples = ctx.read_all(&merged).unwrap();
        let got = best_region_from_tuples(&merged_tuples).unwrap();
        assert_eq!(got.total_weight, expected.total_weight);
    }

    /// Spanning rectangles must raise the sums of the slabs they cover, even
    /// when those slabs have no tuples of their own at that y.
    #[test]
    fn spanning_rectangles_contribute_up_sum() {
        let ctx = ctx();
        // Two sub-slabs [0,10) and [10,20). A single rectangle lives in the
        // right slab; a spanning rectangle covers the left slab entirely
        // between y=0 and y=10 with weight 5.
        let left_slab = Interval::new(0.0, 10.0);
        let right_slab = Interval::new(10.0, 20.0);
        let right_tuples = plane_sweep_slab(&[rect(12.0, 15.0, 2.0, 4.0, 2.0)], right_slab);
        let left_file = ctx.write_all::<SlabTuple>(&[]).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let spans: Vec<SpanEvent> = SpanEvent::pair(0.0, 10.0, 5.0, 0, 0).to_vec();
        let span_file = ctx.write_all(&spans).unwrap();

        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &span_file,
        )
        .unwrap();
        let tuples = ctx.read_all(&merged).unwrap();
        let best = best_region_from_tuples(&tuples).unwrap();
        // The best achievable sum is the spanning weight 5 over the left slab
        // (the right slab's own rectangle only reaches 2).
        assert_eq!(best.total_weight, 5.0);
        assert!(best.region.x_hi <= 10.0);
        // The sweep must emit tuples at the span edges y=0 and y=10 as well as
        // at the right-slab h-lines.
        let ys: Vec<f64> = tuples.iter().map(|t| t.y).collect();
        assert!(ys.contains(&0.0));
        assert!(ys.contains(&10.0));
        assert!(ys.contains(&2.0));
        assert!(ys.contains(&4.0));
        // After y=10 the spanning weight is gone.
        let after = tuples.iter().find(|t| t.y == 10.0).unwrap();
        assert!(after.sum <= 2.0);
    }

    /// When adjacent sub-slabs tie, the leftmost max-interval wins; its
    /// interior is guaranteed to attain the reported sum.
    #[test]
    fn ties_between_adjacent_slabs_pick_the_leftmost_interval() {
        let ctx = ctx();
        // One rectangle [2, 18] x [0, 4] with weight 3 split at x = 10.
        let left_slab = Interval::new(f64::NEG_INFINITY, 10.0);
        let right_slab = Interval::new(10.0, f64::INFINITY);
        let left_tuples = plane_sweep_slab(&[rect(2.0, 10.0, 0.0, 4.0, 3.0)], left_slab);
        let right_tuples = plane_sweep_slab(&[rect(10.0, 18.0, 0.0, 4.0, 3.0)], right_slab);
        let left_file = ctx.write_all(&left_tuples).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let no_spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &no_spans,
        )
        .unwrap();
        let tuples = ctx.read_all(&merged).unwrap();
        let at_bottom = tuples.iter().find(|t| t.y == 0.0).unwrap();
        assert_eq!(at_bottom.sum, 3.0);
        assert_eq!(at_bottom.x_lo, 2.0);
        assert_eq!(at_bottom.x_hi, 10.0, "leftmost tying interval is reported");
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let ctx = ctx();
        let files = [
            ctx.write_all::<SlabTuple>(&[]).unwrap(),
            ctx.write_all::<SlabTuple>(&[]).unwrap(),
        ];
        let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let merged = merge_sweep(
            &ctx,
            &files,
            &[Interval::new(0.0, 1.0), Interval::new(1.0, 2.0)],
            &spans,
        )
        .unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let ctx = ctx();
        let files = [ctx.write_all::<SlabTuple>(&[]).unwrap()];
        let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let err = merge_sweep(&ctx, &files, &[], &spans).unwrap_err();
        assert!(matches!(err, CoreError::Internal(_)));
    }
}
