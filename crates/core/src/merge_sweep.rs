//! MergeSweep: combining the slab-files of `m` sub-slabs (Algorithm 1).
//!
//! The merge sweeps a conceptual horizontal line bottom-to-top across the `m`
//! child slab-files and the file of spanning rectangles, maintaining
//!
//! * `up_sum[i]` — the total weight of spanning rectangles currently covering
//!   sub-slab `i`, and
//! * `tslab[i]` — the most recent max-interval tuple of sub-slab `i`,
//!
//! and emits, at every event y, the best max-interval over the union slab.
//!
//! Two refinements over the paper's pseudo-code:
//!
//! * an output tuple is emitted at spanning-rectangle events as well, because
//!   the location-weight of the union slab changes there even though no child
//!   slab-file has a tuple at that y;
//! * ties between sub-slabs are broken by taking the first (leftmost)
//!   max-interval instead of merging touching intervals (`GetMaxInterval`).
//!   Under open-boundary semantics a merged interval can contain points that
//!   do not attain the maximum (exactly on a shared rectangle edge), whereas
//!   the interior of a single sub-slab max-interval always does; the reported
//!   maximum value is identical either way.  See [`crate::plane_sweep`].

use maxrs_em::{EmContext, TupleFile, TupleReader};
use maxrs_geometry::Interval;

use crate::error::{CoreError, Result};
use crate::parallel::parallel_map;
use crate::records::{SlabTuple, SpanEvent};

/// Merges the slab-files `slab_files` (one per sub-slab, y-sorted) and the
/// y-sorted spanning events into the slab-file of the union slab.
pub fn merge_sweep(
    ctx: &EmContext,
    slab_files: &[TupleFile<SlabTuple>],
    slabs: &[Interval],
    span_events: &TupleFile<SpanEvent>,
) -> Result<TupleFile<SlabTuple>> {
    if slab_files.len() != slabs.len() {
        return Err(CoreError::Internal(format!(
            "merge_sweep got {} slab files but {} slabs",
            slab_files.len(),
            slabs.len()
        )));
    }
    let readers: Vec<TupleReader<'_, SlabTuple>> =
        slab_files.iter().map(|f| ctx.open_reader(f)).collect();
    let span_reader: TupleReader<'_, SpanEvent> = ctx.open_reader(span_events);
    merge_sweep_readers(ctx, readers, slabs, span_reader)
}

/// Reader-level core of [`merge_sweep`]: merges `m` y-sorted slab-tuple
/// streams plus a y-sorted spanning-event stream into the slab-file of the
/// union slab, written on `out_ctx`.
///
/// The readers may come from **different contexts** (each borrows only the
/// context its file lives on) — this is what lets the sharded dataset layer
/// ([`crate::shard`]) combine per-shard slab-files that live on per-shard
/// block devices into one answer without first copying them to a common
/// device.
pub(crate) fn merge_sweep_readers(
    out_ctx: &EmContext,
    mut readers: Vec<TupleReader<'_, SlabTuple>>,
    slabs: &[Interval],
    mut span_reader: TupleReader<'_, SpanEvent>,
) -> Result<TupleFile<SlabTuple>> {
    if readers.len() != slabs.len() {
        return Err(CoreError::Internal(format!(
            "merge_sweep got {} slab readers but {} slabs",
            readers.len(),
            slabs.len()
        )));
    }
    let m = readers.len();
    let mut writer = out_ctx.create_writer::<SlabTuple>()?;

    // Sweep state.
    let mut up_sum = vec![0.0f64; m];
    let mut tslab: Vec<SlabTuple> = slabs
        .iter()
        .map(|s| SlabTuple::new(f64::NEG_INFINITY, s.lo, s.hi, 0.0))
        .collect();

    loop {
        // The next event y is the smallest head y over all inputs.
        let mut next_y: Option<f64> = None;
        for reader in readers.iter_mut() {
            if let Some(t) = reader.peek()? {
                next_y = Some(next_y.map_or(t.y, |y: f64| y.min(t.y)));
            }
        }
        if let Some(e) = span_reader.peek()? {
            next_y = Some(next_y.map_or(e.y, |y: f64| y.min(e.y)));
        }
        let y = match next_y {
            Some(y) => y,
            None => break,
        };

        // Consume every record at exactly this y.
        while let Some(e) = span_reader.peek()? {
            if e.y > y {
                break;
            }
            let e = span_reader.next_record()?.expect("peeked span event");
            let hi = (e.slab_hi as usize).min(m.saturating_sub(1));
            // Events beyond the slab range are tolerated as no-ops, matching
            // the clamp on `slab_hi`.
            if (e.slab_lo as usize) <= hi {
                for sum in &mut up_sum[e.slab_lo as usize..=hi] {
                    *sum += e.delta();
                }
            }
        }
        for (i, reader) in readers.iter_mut().enumerate() {
            while let Some(t) = reader.peek()? {
                if t.y > y {
                    break;
                }
                tslab[i] = reader.next_record()?.expect("peeked slab tuple");
            }
        }

        // Pick the best total over the sub-slabs and emit its max-interval.
        let mut best_idx = 0usize;
        let mut best = f64::NEG_INFINITY;
        for i in 0..m {
            let total = tslab[i].sum + up_sum[i];
            if total > best {
                best = total;
                best_idx = i;
            }
        }
        let winner = &tslab[best_idx];
        writer.push(&SlabTuple::new(y, winner.x_lo, winner.x_hi, best))?;
    }

    writer.finish().map_err(CoreError::from)
}

/// One node of the binary reduction tree built by [`merge_sweep_tree`]: a
/// contiguous run `[lo, hi]` of sub-slab (leaf) indices.
#[derive(Debug)]
struct ReduceNode {
    lo: usize,
    hi: usize,
    children: Option<(usize, usize)>,
    /// `(parent node, side)` where side 0 = left child, 1 = right child.
    /// `None` only for the root.
    parent: Option<(usize, u32)>,
}

/// Combines the slab-files of `m` sub-slabs by a **pairwise reduction tree**
/// instead of one flat `m`-way sweep, so that independent pair-merges can run
/// on different threads (`workers` bounds the thread count).
///
/// Adjacent slab-files are merged level by level — `(0,1), (2,3), …` — until
/// one file remains; an odd file is carried to the next level unchanged.
/// Every spanning event is routed to the *canonical nodes* of the tree that
/// its slab range `[slab_lo, slab_hi]` decomposes into (the classic segment
/// tree decomposition), and applied exactly once, at the pair-merge where that
/// canonical node is one of the two children.  This reproduces the flat
/// sweep's accounting: each spanned leaf receives each spanning weight exactly
/// once.
///
/// The child files are consumed (deleted) as they are merged; `span_events` is
/// left to the caller, matching [`merge_sweep`].
///
/// # Equivalence with [`merge_sweep`]
///
/// The output slab-file covers the same event `y`s with the same max-interval
/// sums; [`best_region_from_tuples`](crate::plane_sweep::best_region_from_tuples)
/// and the final answer extraction therefore yield the same result.  The one
/// caveat is floating-point association: nested spanning weights are added in
/// tree order rather than flat-scan order, so with weights whose sums are not
/// exactly representable the last bits can differ.  Integer-valued weights
/// (the paper's COUNT workloads and every generator in `maxrs-datagen`'s
/// default mode) are bit-for-bit identical.
pub fn merge_sweep_tree(
    ctx: &EmContext,
    slab_files: Vec<TupleFile<SlabTuple>>,
    slabs: &[Interval],
    span_events: &TupleFile<SpanEvent>,
    workers: usize,
) -> Result<TupleFile<SlabTuple>> {
    if slab_files.len() != slabs.len() {
        return Err(CoreError::Internal(format!(
            "merge_sweep_tree got {} slab files but {} slabs",
            slab_files.len(),
            slabs.len()
        )));
    }
    let m = slab_files.len();
    if m <= 1 {
        // Degenerate tree: defer to the flat sweep (which also applies any
        // remaining span events to the single slab).
        let merged = merge_sweep(ctx, &slab_files, slabs, span_events)?;
        for f in slab_files {
            ctx.delete_file(f)?;
        }
        return Ok(merged);
    }

    // ---- Build the reduction tree ------------------------------------------
    let mut arena: Vec<ReduceNode> = (0..m)
        .map(|i| ReduceNode {
            lo: i,
            hi: i,
            children: None,
            parent: None,
        })
        .collect();
    let mut level: Vec<usize> = (0..m).collect();
    // Merge nodes grouped by tree level, bottom-up.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut merges = Vec::with_capacity(level.len() / 2);
        let mut i = 0;
        while i + 1 < level.len() {
            let (l, r) = (level[i], level[i + 1]);
            let id = arena.len();
            arena.push(ReduceNode {
                lo: arena[l].lo,
                hi: arena[r].hi,
                children: Some((l, r)),
                parent: None,
            });
            arena[l].parent = Some((id, 0));
            arena[r].parent = Some((id, 1));
            merges.push(id);
            next.push(id);
            i += 2;
        }
        if i < level.len() {
            next.push(level[i]); // odd node carried up unchanged
        }
        levels.push(merges);
        level = next;
    }
    let root = level[0];

    // ---- Route spanning events to their canonical pair-merges --------------
    // Events stream from the y-sorted input file into one spill file per
    // merge node, so the staging memory is O(nodes) block buffers — the same
    // budget the distribution step uses for its m slab writers — not O(N)
    // events, and the routed copies are accounted as I/O like every other
    // intermediate of the EM pipeline.  Per-node order mirrors the y-sorted
    // input, so the spill files need no re-sort.
    let mut node_writers: Vec<Option<maxrs_em::TupleWriter<'_, SpanEvent>>> =
        (0..arena.len()).map(|_| None).collect();
    {
        let mut reader = ctx.open_reader(span_events);
        let mut stack: Vec<usize> = Vec::new();
        while let Some(ev) = reader.next_record()? {
            let lo = ev.slab_lo as usize;
            let hi = (ev.slab_hi as usize).min(m - 1);
            stack.push(root);
            while let Some(v) = stack.pop() {
                let node = &arena[v];
                if node.lo > hi || node.hi < lo {
                    continue;
                }
                if lo <= node.lo && node.hi <= hi {
                    if let Some((parent, side)) = node.parent {
                        let writer = match &mut node_writers[parent] {
                            Some(w) => w,
                            None => node_writers[parent].insert(ctx.create_writer()?),
                        };
                        writer.push(&SpanEvent {
                            slab_lo: side,
                            slab_hi: side,
                            ..ev
                        })?;
                        continue;
                    }
                    // A span covering the whole tree falls through to the
                    // children, each of which is then fully covered.
                }
                if let Some((l, r)) = node.children {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
    }
    let mut node_spans: Vec<Option<TupleFile<SpanEvent>>> = Vec::with_capacity(arena.len());
    for writer in node_writers {
        node_spans.push(match writer {
            Some(w) => Some(w.finish()?),
            None => None,
        });
    }

    // ---- Execute the merges level by level, pairs in parallel --------------
    let mut files: Vec<Option<TupleFile<SlabTuple>>> = slab_files.into_iter().map(Some).collect();
    files.resize_with(arena.len(), || None);
    let interval_of = |arena: &[ReduceNode], v: usize| -> Interval {
        Interval::new(slabs[arena[v].lo].lo, slabs[arena[v].hi].hi)
    };

    /// Work unit of one pair-merge: `(node id, left file, right file, spans)`.
    type MergeTask = (
        usize,
        TupleFile<SlabTuple>,
        TupleFile<SlabTuple>,
        Option<TupleFile<SpanEvent>>,
    );

    // On any failure, delete every file this reduction still owns so a
    // long-lived context does not accumulate orphans.
    let cleanup = |files: &mut Vec<Option<TupleFile<SlabTuple>>>,
                   node_spans: &mut Vec<Option<TupleFile<SpanEvent>>>| {
        for f in files.iter_mut().filter_map(Option::take) {
            let _ = ctx.delete_file(f);
        }
        for f in node_spans.iter_mut().filter_map(Option::take) {
            let _ = ctx.delete_file(f);
        }
    };

    for merges in levels {
        let tasks: Vec<MergeTask> = merges
            .into_iter()
            .map(|id| {
                let (l, r) = arena[id].children.expect("merge nodes have children");
                (
                    id,
                    files[l].take().expect("left child file ready"),
                    files[r].take().expect("right child file ready"),
                    node_spans[id].take(),
                )
            })
            .collect();
        let outcomes = parallel_map(workers, tasks, |_, (id, left, right, spans)| {
            let (l, r) = arena[id].children.expect("merge nodes have children");
            let span_file = match spans {
                Some(f) => f,
                None => ctx.write_all(&[])?,
            };
            let result = merge_sweep(
                ctx,
                &[left.clone(), right.clone()],
                &[interval_of(&arena, l), interval_of(&arena, r)],
                &span_file,
            );
            match result {
                Ok(merged) => {
                    ctx.delete_file(left)?;
                    ctx.delete_file(right)?;
                    ctx.delete_file(span_file)?;
                    Ok::<_, CoreError>((id, merged))
                }
                Err(e) => {
                    // Best-effort cleanup of this task's inputs; the caller
                    // sweeps up everything still owned by the reduction.
                    let _ = ctx.delete_file(left);
                    let _ = ctx.delete_file(right);
                    let _ = ctx.delete_file(span_file);
                    Err(e)
                }
            }
        });
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok((id, merged)) => files[id] = Some(merged),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            cleanup(&mut files, &mut node_spans);
            return Err(e);
        }
    }

    Ok(files[root].take().expect("root merge produced"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane_sweep::{best_region_from_tuples, plane_sweep_slab};
    use crate::records::RectRecord;
    use maxrs_em::EmConfig;
    use maxrs_geometry::Rect;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(256, 4096).unwrap())
    }

    fn rect(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64, w: f64) -> RectRecord {
        RectRecord::new(Rect::new(x_lo, x_hi, y_lo, y_hi), w)
    }

    /// Merging the slab-files of a vertical split must give the same best
    /// region as sweeping everything in one slab.
    #[test]
    fn merge_matches_single_slab_sweep() {
        let ctx = ctx();
        let rects = vec![
            rect(0.0, 4.0, 0.0, 4.0, 1.0),
            rect(2.0, 6.0, 1.0, 5.0, 1.0),
            rect(3.0, 7.0, 2.0, 6.0, 1.0),
            rect(11.0, 13.0, 0.0, 2.0, 1.0),
            rect(12.0, 14.0, 1.0, 3.0, 1.0),
        ];
        // Reference: sweep the whole plane at once.
        let reference = plane_sweep_slab(&rects, Interval::UNBOUNDED);
        let expected = best_region_from_tuples(&reference).unwrap();

        // Split at x = 5: rectangles are cropped, none spans the whole slab.
        let boundary = 5.0;
        let left_slab = Interval::new(f64::NEG_INFINITY, boundary);
        let right_slab = Interval::new(boundary, f64::INFINITY);
        let left_tuples = plane_sweep_slab(&rects, left_slab);
        let right_tuples = plane_sweep_slab(&rects, right_slab);

        let left_file = ctx.write_all(&left_tuples).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let no_spans = ctx.write_all::<SpanEvent>(&[]).unwrap();

        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &no_spans,
        )
        .unwrap();
        let merged_tuples = ctx.read_all(&merged).unwrap();
        let got = best_region_from_tuples(&merged_tuples).unwrap();
        assert_eq!(got.total_weight, expected.total_weight);
    }

    /// Spanning rectangles must raise the sums of the slabs they cover, even
    /// when those slabs have no tuples of their own at that y.
    #[test]
    fn spanning_rectangles_contribute_up_sum() {
        let ctx = ctx();
        // Two sub-slabs [0,10) and [10,20). A single rectangle lives in the
        // right slab; a spanning rectangle covers the left slab entirely
        // between y=0 and y=10 with weight 5.
        let left_slab = Interval::new(0.0, 10.0);
        let right_slab = Interval::new(10.0, 20.0);
        let right_tuples = plane_sweep_slab(&[rect(12.0, 15.0, 2.0, 4.0, 2.0)], right_slab);
        let left_file = ctx.write_all::<SlabTuple>(&[]).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let spans: Vec<SpanEvent> = SpanEvent::pair(0.0, 10.0, 5.0, 0, 0).to_vec();
        let span_file = ctx.write_all(&spans).unwrap();

        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &span_file,
        )
        .unwrap();
        let tuples = ctx.read_all(&merged).unwrap();
        let best = best_region_from_tuples(&tuples).unwrap();
        // The best achievable sum is the spanning weight 5 over the left slab
        // (the right slab's own rectangle only reaches 2).
        assert_eq!(best.total_weight, 5.0);
        assert!(best.region.x_hi <= 10.0);
        // The sweep must emit tuples at the span edges y=0 and y=10 as well as
        // at the right-slab h-lines.
        let ys: Vec<f64> = tuples.iter().map(|t| t.y).collect();
        assert!(ys.contains(&0.0));
        assert!(ys.contains(&10.0));
        assert!(ys.contains(&2.0));
        assert!(ys.contains(&4.0));
        // After y=10 the spanning weight is gone.
        let after = tuples.iter().find(|t| t.y == 10.0).unwrap();
        assert!(after.sum <= 2.0);
    }

    /// When adjacent sub-slabs tie, the leftmost max-interval wins; its
    /// interior is guaranteed to attain the reported sum.
    #[test]
    fn ties_between_adjacent_slabs_pick_the_leftmost_interval() {
        let ctx = ctx();
        // One rectangle [2, 18] x [0, 4] with weight 3 split at x = 10.
        let left_slab = Interval::new(f64::NEG_INFINITY, 10.0);
        let right_slab = Interval::new(10.0, f64::INFINITY);
        let left_tuples = plane_sweep_slab(&[rect(2.0, 10.0, 0.0, 4.0, 3.0)], left_slab);
        let right_tuples = plane_sweep_slab(&[rect(10.0, 18.0, 0.0, 4.0, 3.0)], right_slab);
        let left_file = ctx.write_all(&left_tuples).unwrap();
        let right_file = ctx.write_all(&right_tuples).unwrap();
        let no_spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let merged = merge_sweep(
            &ctx,
            &[left_file, right_file],
            &[left_slab, right_slab],
            &no_spans,
        )
        .unwrap();
        let tuples = ctx.read_all(&merged).unwrap();
        let at_bottom = tuples.iter().find(|t| t.y == 0.0).unwrap();
        assert_eq!(at_bottom.sum, 3.0);
        assert_eq!(at_bottom.x_lo, 2.0);
        assert_eq!(at_bottom.x_hi, 10.0, "leftmost tying interval is reported");
    }

    /// The pairwise tree reduction must produce exactly the flat sweep's
    /// tuple stream, including multi-slab spanning events that decompose into
    /// several canonical tree nodes.
    #[test]
    fn tree_reduction_matches_flat_merge_tuple_for_tuple() {
        let ctx = ctx();
        // Five slabs (odd count: exercises the carried node) over [0, 50).
        let boundaries = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let slabs: Vec<Interval> = boundaries
            .windows(2)
            .map(|w| Interval::new(w[0], w[1]))
            .collect();
        // Per-slab rectangles with integer weights and overlapping y-ranges.
        let per_slab: Vec<Vec<RectRecord>> = (0..5)
            .map(|i| {
                let lo = boundaries[i];
                vec![
                    rect(lo + 1.0, lo + 6.0, i as f64, i as f64 + 7.0, 1.0 + i as f64),
                    rect(lo + 3.0, lo + 9.0, 2.0, 5.0, 2.0),
                    rect(lo + 2.0, lo + 4.0, 4.0, 11.0, 1.0),
                ]
            })
            .collect();
        // Spanning events over several slab ranges, including nested ones.
        let mut spans: Vec<SpanEvent> = Vec::new();
        spans.extend(SpanEvent::pair(0.5, 6.5, 3.0, 1, 3));
        spans.extend(SpanEvent::pair(2.5, 9.0, 2.0, 2, 2));
        spans.extend(SpanEvent::pair(1.0, 12.0, 4.0, 1, 2));
        spans.extend(SpanEvent::pair(3.0, 4.5, 5.0, 3, 3));
        spans.sort_unstable_by(|a, b| a.y.total_cmp(&b.y));

        let make_files = || -> Vec<TupleFile<SlabTuple>> {
            per_slab
                .iter()
                .zip(&slabs)
                .map(|(rects, slab)| ctx.write_all(&plane_sweep_slab(rects, *slab)).unwrap())
                .collect()
        };
        let span_file = ctx.write_all(&spans).unwrap();

        let flat_files = make_files();
        let flat = merge_sweep(&ctx, &flat_files, &slabs, &span_file).unwrap();
        let flat_tuples = ctx.read_all(&flat).unwrap();

        for workers in [1, 2, 4] {
            let tree = merge_sweep_tree(&ctx, make_files(), &slabs, &span_file, workers).unwrap();
            let tree_tuples = ctx.read_all(&tree).unwrap();
            assert_eq!(tree_tuples, flat_tuples, "workers = {workers}");
            ctx.delete_file(tree).unwrap();
        }
    }

    /// The tree reduction cleans up after itself: child files and temporary
    /// span files are gone once the merge finishes.
    #[test]
    fn tree_reduction_deletes_intermediates() {
        let ctx = ctx();
        let slabs = [Interval::new(0.0, 10.0), Interval::new(10.0, 20.0)];
        let files = vec![
            ctx.write_all(&plane_sweep_slab(
                &[rect(1.0, 4.0, 0.0, 2.0, 1.0)],
                slabs[0],
            ))
            .unwrap(),
            ctx.write_all(&plane_sweep_slab(
                &[rect(12.0, 15.0, 1.0, 3.0, 1.0)],
                slabs[1],
            ))
            .unwrap(),
        ];
        let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let files_before = ctx.num_files();
        let merged = merge_sweep_tree(&ctx, files, &slabs, &spans, 2).unwrap();
        // Only the output replaced the two inputs; no stray temporaries.
        assert_eq!(ctx.num_files(), files_before - 1);
        ctx.delete_file(merged).unwrap();
        ctx.delete_file(spans).unwrap();
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let ctx = ctx();
        let files = [
            ctx.write_all::<SlabTuple>(&[]).unwrap(),
            ctx.write_all::<SlabTuple>(&[]).unwrap(),
        ];
        let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let merged = merge_sweep(
            &ctx,
            &files,
            &[Interval::new(0.0, 1.0), Interval::new(1.0, 2.0)],
            &spans,
        )
        .unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let ctx = ctx();
        let files = [ctx.write_all::<SlabTuple>(&[]).unwrap()];
        let spans = ctx.write_all::<SpanEvent>(&[]).unwrap();
        let err = merge_sweep(&ctx, &files, &[], &spans).unwrap_err();
        assert!(matches!(err, CoreError::Internal(_)));
    }
}
