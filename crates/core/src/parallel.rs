//! A minimal scoped-thread work-pool for the parallel slab stage.
//!
//! The build environment cannot pull `rayon` from crates.io, so the small
//! primitive the distribution sweep needs — an order-preserving parallel map
//! over an owned work list with a bounded worker count — is implemented here
//! on `std::thread::scope`.  Workers pull item indices from a shared atomic
//! cursor, so uneven per-slab costs balance automatically, and results land in
//! their input slot, so the output order (and therefore everything downstream)
//! is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the standard library reports as available,
/// falling back to 1 when the quota cannot be determined.
///
/// This is what `ExactMaxRsOptions::default()` uses for its `parallelism`
/// knob; on cgroup-limited containers it honors the CPU quota, not the host
/// core count.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using at most `workers` threads and
/// returns the results in input order.
///
/// With `workers <= 1` (or a single item) the map runs on the calling thread
/// with no thread overhead at all, which keeps the sequential path of
/// ExactMaxRS free of any scheduling artifacts.
pub fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn reports_at_least_one_core() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn maps_in_order_sequentially_and_in_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 4, 7, 200] {
            let got = parallel_map(workers, items.clone(), |_, x| x * 3);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn passes_the_item_index() {
        let got = parallel_map(3, vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let hits = AtomicUsize::new(0);
        let n = 1000;
        let out = parallel_map(8, (0..n).collect::<Vec<_>>(), |_, x: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = parallel_map(4, Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(4, vec![9], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(2, vec![1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(result.is_err());
    }
}
