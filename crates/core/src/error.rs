//! Error type of the algorithm layer.

use maxrs_em::EmError;

use crate::events::EventError;

/// Errors raised by the [`MaxRsEngine`](crate::MaxRsEngine) facade itself —
/// strategy selection and option validation, as opposed to failures inside an
/// algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Auto-selection would answer a query in memory although the dataset
    /// does not fit the external-memory budget `M`.  This happens when
    /// [`ExactMaxRsOptions::memory_rects`](crate::ExactMaxRsOptions) promises
    /// more in-memory rectangles than the engine's
    /// [`EmConfig`](maxrs_em::EmConfig) provides; the engine refuses rather
    /// than silently violating the I/O model.  Forcing
    /// [`ExecutionStrategy::InMemory`](crate::ExecutionStrategy) stays the
    /// explicit escape hatch for equivalence tests.
    InMemoryOverCapacity {
        /// Number of objects the query covers.
        objects: u64,
        /// Rectangles the EM configuration actually fits in memory.
        capacity: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InMemoryOverCapacity { objects, capacity } => write!(
                f,
                "dataset larger than M must go external: {objects} objects exceed the \
                 in-memory capacity of {capacity} rectangles (raise the buffer size or \
                 drop the memory_rects override)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Errors raised by the MaxRS / MaxCRS algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the external-memory substrate.
    Em(EmError),
    /// The algorithm was invoked with an invalid parameter (e.g. a
    /// non-positive rectangle extent).
    InvalidParameter(String),
    /// The engine facade refused the run (see [`EngineError`]).
    Engine(EngineError),
    /// An event of a dynamic dataset was invalid (see
    /// [`EventError`](crate::EventError)).
    Event(EventError),
    /// An internal invariant was violated (indicates a bug, reported instead
    /// of panicking so that long experiment sweeps fail gracefully).
    Internal(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Em(e) => write!(f, "external-memory error: {e}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::Event(e) => write!(f, "event error: {e}"),
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Em(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Event(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmError> for CoreError {
    fn from(e: EmError) -> Self {
        CoreError::Em(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<EventError> for CoreError {
    fn from(e: EventError) -> Self {
        CoreError::Event(e)
    }
}

/// Result alias for the algorithm layer.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: CoreError = EmError::InvalidConfig("x".into()).into();
        assert!(matches!(e, CoreError::Em(_)));
        assert!(e.to_string().contains("external-memory"));
        assert!(CoreError::InvalidParameter("bad width".into())
            .to_string()
            .contains("bad width"));
        assert!(CoreError::Internal("oops".into())
            .to_string()
            .contains("oops"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(CoreError::Internal("x".into()).source().is_none());
    }

    #[test]
    fn event_error_wraps_and_displays() {
        let e: CoreError = EventError::DuplicateId(9).into();
        assert!(matches!(e, CoreError::Event(_)));
        assert!(e.to_string().contains("id 9"), "{e}");
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn engine_error_wraps_and_displays() {
        let e: CoreError = EngineError::InMemoryOverCapacity {
            objects: 1000,
            capacity: 64,
        }
        .into();
        assert!(matches!(e, CoreError::Engine(_)));
        let msg = e.to_string();
        assert!(msg.contains("must go external"), "{msg}");
        assert!(msg.contains("1000") && msg.contains("64"), "{msg}");
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
