//! Error type of the algorithm layer.

use maxrs_em::EmError;

/// Errors raised by the MaxRS / MaxCRS algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the external-memory substrate.
    Em(EmError),
    /// The algorithm was invoked with an invalid parameter (e.g. a
    /// non-positive rectangle extent).
    InvalidParameter(String),
    /// An internal invariant was violated (indicates a bug, reported instead
    /// of panicking so that long experiment sweeps fail gracefully).
    Internal(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Em(e) => write!(f, "external-memory error: {e}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Em(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmError> for CoreError {
    fn from(e: EmError) -> Self {
        CoreError::Em(e)
    }
}

/// Result alias for the algorithm layer.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: CoreError = EmError::InvalidConfig("x".into()).into();
        assert!(matches!(e, CoreError::Em(_)));
        assert!(e.to_string().contains("external-memory"));
        assert!(CoreError::InvalidParameter("bad width".into())
            .to_string()
            .contains("bad width"));
        assert!(CoreError::Internal("oops".into())
            .to_string()
            .contains("oops"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(CoreError::Internal("x".into()).source().is_none());
    }
}
