//! A uniform grid over the plane for neighborhood queries.
//!
//! Used by the exact MaxCRS reference ([`crate::crs_exact`]) to find, for each
//! object, the other objects within the circle diameter without an `O(n²)`
//! all-pairs scan, and by the streaming subsystem (`maxrs-stream`) to key its
//! dirty-cell bookkeeping on the same cell-index convention via [`grid_cell`].

use std::collections::HashMap;

use maxrs_geometry::{Point, WeightedPoint};

/// Magnitude bound on the cell indexes [`grid_cell`] computes exactly.
/// Ratios `coord / cell` of at least this magnitude saturate to
/// `±GRID_CELL_LIMIT` (see [`grid_cell`]); callers that need the half-open
/// containment invariant must keep their coordinates below it.
pub const GRID_CELL_LIMIT: i64 = 1 << 52;

/// Index of the half-open grid cell `[k·cell, (k+1)·cell)` containing `coord`.
///
/// Plain `floor(coord / cell)` can be off by one near cell boundaries when
/// the division rounds across an integer, which would silently assign a
/// coordinate to a cell that does not contain it.  This helper fixes the
/// result up against the exact products `k·cell`, so the half-open invariant
/// `k·cell <= coord < (k+1)·cell` holds whenever `|coord / cell|` stays
/// below [`GRID_CELL_LIMIT`] — the property the streaming engine's per-cell
/// maintenance relies on for consistent insert/delete routing.  Beyond that
/// bound `k` is no longer exactly representable (and the fix-up products no
/// longer move per step), so the index *saturates* to `±GRID_CELL_LIMIT`
/// instead of looping or overflowing; callers that need exact containment
/// must reject such inputs (the streaming engine does).  `cell` must be
/// positive and finite; `coord` must be finite.
pub fn grid_cell(coord: f64, cell: f64) -> i64 {
    debug_assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
    debug_assert!(coord.is_finite(), "coordinate must be finite");
    let ratio = (coord / cell).floor();
    // The NaN check covers an overflowing division or (in release builds,
    // where the debug_assert is gone) an infinite coord.
    if ratio.is_nan() || ratio.abs() >= GRID_CELL_LIMIT as f64 {
        return if ratio.is_sign_negative() {
            -GRID_CELL_LIMIT
        } else {
            GRID_CELL_LIMIT
        };
    }
    let mut k = ratio as i64;
    // Below the limit `k` is exact as f64 and `cell > ulp(k·cell)`, so each
    // step changes the product: the loops terminate after the (at most
    // one-ulp) division error is fixed up.
    while coord < k as f64 * cell {
        k -= 1;
    }
    while coord >= (k + 1) as f64 * cell {
        k += 1;
    }
    k
}

/// A hash-based uniform grid indexing a set of points by cell.
#[derive(Debug)]
pub struct UniformGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<Point>,
}

impl UniformGrid {
    /// Builds a grid with the given cell size over the given objects.
    pub fn build(objects: &[WeightedPoint], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        let mut points = Vec::with_capacity(objects.len());
        for (i, o) in objects.iter().enumerate() {
            points.push(o.point);
            cells.entry(Self::key(o.point, cell)).or_default().push(i);
        }
        UniformGrid {
            cell,
            cells,
            points,
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        (grid_cell(p.x, cell), grid_cell(p.y, cell))
    }

    /// Cell size of the grid.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of every indexed point within (closed) distance `radius` of `p`.
    pub fn neighbors_within(&self, p: Point, radius: f64) -> Vec<usize> {
        let r_cells = (radius / self.cell).ceil() as i64 + 1;
        let (cx, cy) = Self::key(p, self.cell);
        let mut out = Vec::new();
        let r_sq = radius * radius;
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(indices) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in indices {
                        if self.points[i].distance_sq(&p) <= r_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of non-empty cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objects() -> Vec<WeightedPoint> {
        vec![
            WeightedPoint::unit(0.0, 0.0),
            WeightedPoint::unit(1.0, 1.0),
            WeightedPoint::unit(5.0, 5.0),
            WeightedPoint::unit(-3.0, 2.0),
            WeightedPoint::unit(100.0, 100.0),
        ]
    }

    #[test]
    fn neighbors_match_brute_force() {
        let objects = objects();
        let grid = UniformGrid::build(&objects, 2.5);
        for &radius in &[0.5, 2.0, 10.0, 200.0] {
            for &q in &[
                Point::new(0.0, 0.0),
                Point::new(4.0, 4.0),
                Point::new(-10.0, -10.0),
            ] {
                let mut got = grid.neighbors_within(q, radius);
                got.sort_unstable();
                let mut expected: Vec<usize> = objects
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.point.distance(&q) <= radius)
                    .map(|(i, _)| i)
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "radius={radius} q={q}");
            }
        }
    }

    #[test]
    fn empty_grid() {
        let grid = UniformGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.neighbors_within(Point::new(0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn grid_cell_half_open_invariant_holds_near_boundaries() {
        for &cell in &[1.0, 0.3, 2.5, 1e-3, 1e6] {
            for &x in &[
                0.0,
                -0.0,
                cell,
                -cell,
                3.0 * cell,
                cell * (1.0 - f64::EPSILON),
                cell * (1.0 + f64::EPSILON),
                -7.3 * cell,
                123.456,
                -123.456,
            ] {
                let k = grid_cell(x, cell);
                assert!(
                    k as f64 * cell <= x && x < (k + 1) as f64 * cell,
                    "x={x} cell={cell} -> k={k}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_ratios_saturate_instead_of_looping() {
        // |coord / cell| beyond 2^52: must return promptly with the clamped
        // index (this used to overflow in debug and loop in release).
        assert_eq!(grid_cell(1e30, 10_000.0), GRID_CELL_LIMIT);
        assert_eq!(grid_cell(-1e30, 10_000.0), -GRID_CELL_LIMIT);
        assert_eq!(grid_cell(f64::MAX, 1e-300), GRID_CELL_LIMIT);
        assert_eq!(grid_cell(1.0, 1e-300), GRID_CELL_LIMIT);
        // Just inside the limit stays exact.
        let coord = (GRID_CELL_LIMIT - 2) as f64;
        assert_eq!(grid_cell(coord, 1.0), GRID_CELL_LIMIT - 2);
        // A grid fed extreme coordinates must not hang either.
        let grid = UniformGrid::build(&[WeightedPoint::unit(1e30, 1e30)], 10_000.0);
        assert_eq!(grid.neighbors_within(Point::new(0.0, 0.0), 1.0).len(), 0);
    }

    #[test]
    fn negative_coordinates_round_to_correct_cells() {
        let objects = vec![
            WeightedPoint::unit(-0.1, -0.1),
            WeightedPoint::unit(0.1, 0.1),
        ];
        let grid = UniformGrid::build(&objects, 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        let n = grid.neighbors_within(Point::new(0.0, 0.0), 0.5);
        assert_eq!(n.len(), 2);
        assert_eq!(grid.cell_size(), 1.0);
        assert_eq!(grid.len(), 2);
    }
}
