//! A uniform grid over the plane for neighborhood queries.
//!
//! Used by the exact MaxCRS reference ([`crate::crs_exact`]) to find, for each
//! object, the other objects within the circle diameter without an `O(n²)`
//! all-pairs scan.

use std::collections::HashMap;

use maxrs_geometry::{Point, WeightedPoint};

/// A hash-based uniform grid indexing a set of points by cell.
#[derive(Debug)]
pub struct UniformGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<Point>,
}

impl UniformGrid {
    /// Builds a grid with the given cell size over the given objects.
    pub fn build(objects: &[WeightedPoint], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        let mut points = Vec::with_capacity(objects.len());
        for (i, o) in objects.iter().enumerate() {
            points.push(o.point);
            cells.entry(Self::key(o.point, cell)).or_default().push(i);
        }
        UniformGrid {
            cell,
            cells,
            points,
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Cell size of the grid.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of every indexed point within (closed) distance `radius` of `p`.
    pub fn neighbors_within(&self, p: Point, radius: f64) -> Vec<usize> {
        let r_cells = (radius / self.cell).ceil() as i64 + 1;
        let (cx, cy) = Self::key(p, self.cell);
        let mut out = Vec::new();
        let r_sq = radius * radius;
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(indices) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in indices {
                        if self.points[i].distance_sq(&p) <= r_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of non-empty cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objects() -> Vec<WeightedPoint> {
        vec![
            WeightedPoint::unit(0.0, 0.0),
            WeightedPoint::unit(1.0, 1.0),
            WeightedPoint::unit(5.0, 5.0),
            WeightedPoint::unit(-3.0, 2.0),
            WeightedPoint::unit(100.0, 100.0),
        ]
    }

    #[test]
    fn neighbors_match_brute_force() {
        let objects = objects();
        let grid = UniformGrid::build(&objects, 2.5);
        for &radius in &[0.5, 2.0, 10.0, 200.0] {
            for &q in &[
                Point::new(0.0, 0.0),
                Point::new(4.0, 4.0),
                Point::new(-10.0, -10.0),
            ] {
                let mut got = grid.neighbors_within(q, radius);
                got.sort_unstable();
                let mut expected: Vec<usize> = objects
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.point.distance(&q) <= radius)
                    .map(|(i, _)| i)
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "radius={radius} q={q}");
            }
        }
    }

    #[test]
    fn empty_grid() {
        let grid = UniformGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.neighbors_within(Point::new(0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn negative_coordinates_round_to_correct_cells() {
        let objects = vec![
            WeightedPoint::unit(-0.1, -0.1),
            WeightedPoint::unit(0.1, 0.1),
        ];
        let grid = UniformGrid::build(&objects, 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        let n = grid.neighbors_within(Point::new(0.0, 0.0), 0.5);
        assert_eq!(n.len(), 2);
        assert_eq!(grid.cell_size(), 1.0);
        assert_eq!(grid.len(), 2);
    }
}
