//! Exact MaxCRS reference via angular sweeps (ground truth for Figure 17).
//!
//! The transformed MaxCRS problem asks for a point covered by disks (of radius
//! `d/2`, centered at the objects) of maximum total weight.  A classical
//! observation (Chazelle & Lee; Drezner's `O(n² log n)` algorithm, which the
//! paper uses to obtain optimal answers for its Figure 17) is that an optimal
//! point can be chosen to be either
//!
//! * the center of some disk, or
//! * an intersection point of two disk boundaries.
//!
//! For every object we therefore sweep the boundary of its disk by angle,
//! adding the angular interval contributed by every neighboring disk, and keep
//! the best point seen.  Neighbors are found with a [`UniformGrid`] of cell
//! size `d`, which turns the all-pairs scan into an expected near-linear pass
//! for the densities used in the paper while producing identical answers.
//!
//! # Boundary semantics
//!
//! The candidate points lie exactly *on* circle boundaries, where the paper's
//! open-disk objective is discontinuous.  Like the original algorithms, this
//! reference evaluates candidates with **closed** disks; for datasets in
//! general position (all of the paper's workloads) the open and closed optima
//! coincide.  The approximation-ratio experiment divides an open-disk value by
//! this closed-disk optimum, so reported ratios are, if anything, slightly
//! conservative.

use maxrs_geometry::{Point, WeightedPoint};

use crate::grid::UniformGrid;
use crate::result::MaxCrsResult;

/// Exactly solves MaxCRS in memory (closed-disk semantics, see module docs).
pub fn exact_max_crs_in_memory(objects: &[WeightedPoint], diameter: f64) -> MaxCrsResult {
    assert!(diameter > 0.0, "diameter must be positive");
    if objects.is_empty() {
        return MaxCrsResult::empty();
    }
    let radius = diameter / 2.0;
    let grid = UniformGrid::build(objects, diameter.max(f64::MIN_POSITIVE));

    let mut best = MaxCrsResult {
        center: objects[0].point,
        total_weight: f64::NEG_INFINITY,
    };

    for (i, o) in objects.iter().enumerate() {
        // Candidate 1: the disk center itself.
        let neighbors = grid.neighbors_within(o.point, diameter);
        let center_weight: f64 = neighbors
            .iter()
            .filter(|&&j| objects[j].point.distance_sq(&o.point) <= radius * radius)
            .map(|&j| objects[j].weight)
            .sum();
        if center_weight > best.total_weight {
            best = MaxCrsResult {
                center: o.point,
                total_weight: center_weight,
            };
        }

        // Candidate 2: the best point on the boundary of disk i, found by an
        // angular sweep over the arcs contributed by the neighboring disks.
        // A point at angle θ on the boundary of disk i is covered by disk j
        // iff the center distance L(i,j) satisfies L ≤ 2r and θ falls within
        // ±acos(L / 2r) of the direction from o_i towards o_j.
        let mut events: Vec<(f64, f64)> = Vec::new(); // (angle, +/- weight)
        let mut baseline = o.weight; // disk i covers its own boundary (closed)
        for &j in &neighbors {
            if j == i {
                continue;
            }
            let other = &objects[j];
            let dist = o.point.distance(&other.point);
            if dist > diameter {
                continue;
            }
            if dist == 0.0 {
                // Co-located object: covers the whole boundary.
                baseline += other.weight;
                continue;
            }
            let dir = (other.point.y - o.point.y).atan2(other.point.x - o.point.x);
            let half = (dist / diameter).clamp(-1.0, 1.0).acos();
            let (lo, hi) = (dir - half, dir + half);
            // Split wrapped intervals at ±π.
            if lo < -std::f64::consts::PI {
                events.push((lo + 2.0 * std::f64::consts::PI, other.weight));
                events.push((std::f64::consts::PI, -other.weight));
                events.push((-std::f64::consts::PI, other.weight));
                events.push((hi, -other.weight));
            } else if hi > std::f64::consts::PI {
                events.push((lo, other.weight));
                events.push((std::f64::consts::PI, -other.weight));
                events.push((-std::f64::consts::PI, other.weight));
                events.push((hi - 2.0 * std::f64::consts::PI, -other.weight));
            } else {
                events.push((lo, other.weight));
                events.push((hi, -other.weight));
            }
        }
        if events.is_empty() {
            continue;
        }
        // Sweep by angle; at equal angles apply additions before removals so
        // that tangent arcs still count (closed semantics).
        events.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut running = baseline;
        for (angle, delta) in events {
            running += delta;
            if running > best.total_weight {
                best = MaxCrsResult {
                    center: Point::new(
                        o.point.x + radius * angle.cos(),
                        o.point.y + radius * angle.sin(),
                    ),
                    total_weight: running,
                };
            }
        }
    }
    best
}

/// Total weight of objects within the **closed** disk of the given diameter
/// centered at `p` (the evaluation convention of the exact reference).
pub fn closed_disk_weight(objects: &[WeightedPoint], p: Point, diameter: f64) -> f64 {
    let r = diameter / 2.0;
    objects
        .iter()
        .filter(|o| o.point.distance_sq(&p) <= r * r + 1e-9)
        .map(|o| o.weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_max_crs;

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                WeightedPoint::at(
                    next() * extent,
                    next() * extent,
                    1.0 + (next() * 3.0).floor(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(exact_max_crs_in_memory(&[], 2.0).total_weight, 0.0);
        let objects = vec![WeightedPoint::at(3.0, 4.0, 5.0)];
        let r = exact_max_crs_in_memory(&objects, 2.0);
        assert_eq!(r.total_weight, 5.0);
        assert_eq!(r.center, Point::new(3.0, 4.0));
    }

    #[test]
    fn two_points_within_and_outside_diameter() {
        let objects = vec![WeightedPoint::unit(0.0, 0.0), WeightedPoint::unit(1.0, 0.0)];
        // Diameter 2: both fit (their distance 1 < 2).
        assert_eq!(exact_max_crs_in_memory(&objects, 2.0).total_weight, 2.0);
        // Diameter 0.8: they cannot be covered together.
        assert_eq!(exact_max_crs_in_memory(&objects, 0.8).total_weight, 1.0);
        // Diameter exactly 1.0: closed disks -> both on the boundary count.
        assert_eq!(exact_max_crs_in_memory(&objects, 1.0).total_weight, 2.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in [1u64, 7, 13, 29] {
            let objects = pseudo_random_objects(35, seed, 20.0);
            for diameter in [2.0, 5.0, 12.0] {
                let fast = exact_max_crs_in_memory(&objects, diameter);
                let slow = brute_force_max_crs(&objects, diameter);
                assert_eq!(
                    fast.total_weight, slow.total_weight,
                    "seed={seed} diameter={diameter}"
                );
                // The returned point must achieve the reported weight.
                assert!(
                    (closed_disk_weight(&objects, fast.center, diameter) - fast.total_weight).abs()
                        < 1e-6,
                    "seed={seed} diameter={diameter}"
                );
            }
        }
    }

    #[test]
    fn colocated_objects_accumulate() {
        let objects = vec![
            WeightedPoint::at(1.0, 1.0, 2.0),
            WeightedPoint::at(1.0, 1.0, 3.0),
            WeightedPoint::at(1.0, 1.0, 4.0),
            WeightedPoint::at(50.0, 50.0, 5.0),
        ];
        let r = exact_max_crs_in_memory(&objects, 4.0);
        assert_eq!(r.total_weight, 9.0);
    }

    #[test]
    fn weights_drive_the_choice() {
        let objects = vec![
            WeightedPoint::at(0.0, 0.0, 1.0),
            WeightedPoint::at(0.5, 0.0, 1.0),
            WeightedPoint::at(10.0, 0.0, 5.0),
        ];
        let r = exact_max_crs_in_memory(&objects, 2.0);
        assert_eq!(r.total_weight, 5.0);
        assert!((r.center.x - 10.0).abs() <= 1.0);
    }
}
