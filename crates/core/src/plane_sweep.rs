//! In-memory plane sweep over weighted rectangles.
//!
//! This is the classic `O(n log n)` algorithm of Imai & Asano (reviewed in
//! Section 4 of the paper): sweep a horizontal line bottom-to-top over the
//! transformed rectangles, maintain the x-intervals of the active rectangles
//! in a range-add / range-max structure, and record, for every h-line, a
//! *max-interval* — an x-range of maximum location-weight together with that
//! weight.  The resulting sequence of [`SlabTuple`]s is exactly the *slab-file*
//! of the paper, so the same routine serves as
//!
//! * the base case of the [`ExactMaxRS`](crate::exact) recursion (a slab whose
//!   rectangles fit in memory),
//! * the building block of the in-memory convenience API
//!   [`max_rs_in_memory`](crate::plane_sweep::max_rs_in_memory()), and
//! * (conceptually) the algorithm the external baselines externalize.
//!
//! # Max-interval selection (deviation from the paper's `GetMaxInterval`)
//!
//! Each emitted tuple reports a **single elementary x-interval** attaining the
//! maximum location-weight rather than the widest run of such intervals.  The
//! paper merges adjacent equal-sum intervals; under its open-boundary
//! semantics, however, a merged interval can contain rectangle edges in its
//! interior, and points exactly on those edges do not attain the maximum.
//! Reporting one elementary cell keeps the guarantee that *every interior
//! point of the returned region is an optimal center*, which is what the
//! result of a MaxRS query promises.  The reported maximum value is identical
//! either way.

use std::cell::RefCell;

use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::records::{RectRecord, SlabTuple};
use crate::result::MaxRsResult;
use crate::segment_tree::SegmentTree;

/// One sweep event: add `delta` to the elementary intervals `[lo, hi)` when
/// the h-line reaches `y`.
#[derive(Debug, Clone, Copy)]
struct SweepEvent {
    y: f64,
    lo: u32,
    hi: u32,
    delta: f64,
}

/// Reusable buffers for the in-memory plane sweep.
///
/// [`plane_sweep_slab`] historically re-allocated its breakpoint array, event
/// list and segment tree for *every slab*; a `SweepPass` group or a batched
/// query runs thousands of slabs, so the allocator showed up in profiles.  A
/// `SweepScratch` owns all of those buffers and [`SweepScratch::sweep_into`]
/// reuses them across calls — the kernel allocates nothing once the buffers
/// have grown to the high-water mark.
///
/// Callers that sweep repeatedly (the stream engine, the `Runner` recursion)
/// hold one scratch per thread; the free function [`plane_sweep_slab`] keeps
/// its historical signature by borrowing a thread-local scratch.
#[derive(Debug, Default)]
pub struct SweepScratch {
    clipped: Vec<RectRecord>,
    xs: Vec<f64>,
    events: Vec<SweepEvent>,
    tree: SegmentTree,
    tuples: Vec<SlabTuple>,
}

impl SweepScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// Runs the plane sweep over `rects` restricted to `slab`, writing the
    /// slab-file tuples into `out` (which is cleared first).  Identical to
    /// [`plane_sweep_slab`] but reuses this scratch's buffers.
    pub fn sweep_into(&mut self, rects: &[RectRecord], slab: Interval, out: &mut Vec<SlabTuple>) {
        out.clear();

        // Clip to the slab and drop rectangles that fall outside it.
        self.clipped.clear();
        self.clipped.extend(rects.iter().filter_map(|r| {
            r.rect
                .clip_x(&slab)
                .map(|rect| RectRecord::new(rect, r.weight))
        }));
        if self.clipped.is_empty() {
            return;
        }

        // Elementary x-intervals: between consecutive breakpoints.
        self.xs.clear();
        self.xs.reserve(2 * self.clipped.len() + 2);
        self.xs.push(slab.lo);
        self.xs.push(slab.hi);
        for r in &self.clipped {
            self.xs.push(r.rect.x_lo);
            self.xs.push(r.rect.x_hi);
        }
        self.xs.sort_unstable_by(f64::total_cmp);
        self.xs.dedup();
        if self.xs.len() < 2 {
            // Degenerate slab (zero width): nothing can be covered with
            // positive area.
            return;
        }
        let xs = &self.xs;
        let leaves = xs.len() - 1;
        let leaf_of = |x: f64| -> u32 {
            // Index of the breakpoint equal to x (every rectangle edge is a
            // breakpoint).
            xs.partition_point(|&b| b < x) as u32
        };

        // Sweep events: +weight at the bottom edge, -weight at the top edge.
        self.events.clear();
        self.events.reserve(2 * self.clipped.len());
        for r in &self.clipped {
            let lo = leaf_of(r.rect.x_lo);
            let hi = leaf_of(r.rect.x_hi);
            self.events.push(SweepEvent {
                y: r.rect.y_lo,
                lo,
                hi,
                delta: r.weight,
            });
            self.events.push(SweepEvent {
                y: r.rect.y_hi,
                lo,
                hi,
                delta: -r.weight,
            });
        }
        // Unstable sort is safe: equal-y events are commuting range-adds, and
        // tuples are emitted only after every event of the h-line is applied.
        self.events.sort_unstable_by(|a, b| a.y.total_cmp(&b.y));

        self.tree.reset(leaves);
        out.reserve(self.events.len());
        let mut i = 0;
        while i < self.events.len() {
            let y = self.events[i].y;
            while i < self.events.len() && self.events[i].y == y {
                let e = self.events[i];
                self.tree.range_add(e.lo as usize, e.hi as usize, e.delta);
                i += 1;
            }
            let sum = self.tree.global_max();
            let lo = self.tree.max_leaf();
            out.push(SlabTuple::new(y, self.xs[lo], self.xs[lo + 1], sum));
        }
    }

    /// Like [`SweepScratch::sweep_into`], but returns a borrow of an
    /// internal tuple buffer — the fully zero-alloc variant for callers that
    /// only need to *read* the slab-file before the next sweep.
    pub fn sweep(&mut self, rects: &[RectRecord], slab: Interval) -> &[SlabTuple] {
        let mut out = std::mem::take(&mut self.tuples);
        self.sweep_into(rects, slab, &mut out);
        self.tuples = out;
        &self.tuples
    }
}

thread_local! {
    /// Per-thread scratch backing the [`plane_sweep_slab`] free function, so
    /// the `Runner` recursion (which shares `&Runner` across worker threads)
    /// also reuses buffers across the slabs it sweeps.
    static THREAD_SCRATCH: RefCell<SweepScratch> = RefCell::new(SweepScratch::new());
}

/// Calls `f` with this thread's shared [`SweepScratch`].
///
/// Used by sweep drivers that process many slabs on the same thread and want
/// buffer reuse across *all* of them without threading a scratch through
/// every signature.  Do not call [`plane_sweep_slab`] (or re-enter this
/// function) from inside `f`: the scratch is already borrowed.
pub fn with_sweep_scratch<R>(f: impl FnOnce(&mut SweepScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Runs the plane sweep over `rects` restricted to the x-range `slab` and
/// returns the slab-file tuples in ascending y order (one tuple per distinct
/// h-line).
///
/// Rectangles are clipped to the slab; rectangles that do not intersect the
/// slab are ignored.  An empty input produces an empty slab-file.
///
/// Internally this borrows a thread-local [`SweepScratch`], so repeated calls
/// on one thread reuse the breakpoint / event / segment-tree buffers; only
/// the returned `Vec` is allocated fresh.
pub fn plane_sweep_slab(rects: &[RectRecord], slab: Interval) -> Vec<SlabTuple> {
    let mut out = Vec::new();
    with_sweep_scratch(|scratch| scratch.sweep_into(rects, slab, &mut out));
    out
}

/// Transforms objects into their centered rectangles (`r_o` in the paper).
pub fn transform_objects(objects: &[WeightedPoint], size: RectSize) -> Vec<RectRecord> {
    objects
        .iter()
        .map(|o| RectRecord::new(o.to_rect(size), o.weight))
        .collect()
}

/// Picks the best tuple of a slab-file and converts it into a [`MaxRsResult`].
///
/// `tuples` must be in ascending y order (as produced by the sweep).  The
/// max-region spans from the winning tuple's y to the next tuple's y.
pub fn best_region_from_tuples(tuples: &[SlabTuple]) -> Option<MaxRsResult> {
    if tuples.is_empty() {
        return None;
    }
    let mut best_idx = 0;
    for (i, t) in tuples.iter().enumerate() {
        if t.sum > tuples[best_idx].sum {
            best_idx = i;
        }
    }
    let best = &tuples[best_idx];
    let y_lo = best.y;
    let y_hi = tuples
        .get(best_idx + 1)
        .map(|t| t.y)
        .filter(|&y| y > y_lo)
        .unwrap_or(y_lo + 1.0);
    let x = best.interval();
    let region = Rect::new(x.lo, x.hi, y_lo, y_hi);
    let center = Point::new(x.representative(), (y_lo + y_hi) / 2.0);
    Some(MaxRsResult {
        center,
        total_weight: best.sum,
        region,
    })
}

/// Solves MaxRS entirely in memory: transform, sweep, extract the best region.
///
/// This is the convenience entry point for datasets that comfortably fit in
/// RAM; the external-memory pipeline ([`crate::exact_max_rs`]) produces the
/// same answer for arbitrarily large inputs.
pub fn max_rs_in_memory(objects: &[WeightedPoint], size: RectSize) -> MaxRsResult {
    let rects = transform_objects(objects, size);
    let tuples = plane_sweep_slab(&rects, Interval::UNBOUNDED);
    best_region_from_tuples(&tuples).unwrap_or_else(MaxRsResult::empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brute_force_max_rs, rect_objective};

    fn units(points: &[(f64, f64)]) -> Vec<WeightedPoint> {
        points
            .iter()
            .map(|&(x, y)| WeightedPoint::unit(x, y))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(plane_sweep_slab(&[], Interval::UNBOUNDED).is_empty());
        let r = max_rs_in_memory(&[], RectSize::square(1.0));
        assert_eq!(r.total_weight, 0.0);

        let objects = units(&[(3.0, 4.0)]);
        let r = max_rs_in_memory(&objects, RectSize::square(2.0));
        assert_eq!(r.total_weight, 1.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(2.0)),
            1.0
        );
    }

    #[test]
    fn slab_tuples_match_paper_example_shape() {
        // Two overlapping unit-weight rectangles: the slab-file must report
        // sums 1, 2, 1, 0 as the sweep passes the four h-lines.
        let rects = vec![
            RectRecord::new(Rect::new(0.0, 2.0, 0.0, 2.0), 1.0),
            RectRecord::new(Rect::new(1.0, 3.0, 1.0, 3.0), 1.0),
        ];
        let tuples = plane_sweep_slab(&rects, Interval::UNBOUNDED);
        let sums: Vec<f64> = tuples.iter().map(|t| t.sum).collect();
        assert_eq!(sums, vec![1.0, 2.0, 1.0, 0.0]);
        // The best tuple reports the intersection [1,2] starting at y=1.
        let best = best_region_from_tuples(&tuples).unwrap();
        assert_eq!(best.total_weight, 2.0);
        assert_eq!(best.region, Rect::new(1.0, 2.0, 1.0, 2.0));
        // The final tuple (above every rectangle) reports weight 0.
        let last = tuples.last().unwrap();
        assert_eq!(last.sum, 0.0);
        assert!(last.x_lo.is_infinite());
    }

    #[test]
    fn clipping_to_a_slab_restricts_the_answer() {
        let rects = vec![
            RectRecord::new(Rect::new(0.0, 10.0, 0.0, 1.0), 5.0),
            RectRecord::new(Rect::new(20.0, 30.0, 0.0, 1.0), 1.0),
        ];
        // Slab [15, 40]: only the light rectangle intersects it.
        let tuples = plane_sweep_slab(&rects, Interval::new(15.0, 40.0));
        let best = best_region_from_tuples(&tuples).unwrap();
        assert_eq!(best.total_weight, 1.0);
        assert!(best.region.x_lo >= 15.0);
    }

    #[test]
    fn matches_brute_force_on_small_grids() {
        let objects = units(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (1.5, 0.5),
            (4.0, 4.0),
            (4.2, 4.1),
            (4.4, 3.9),
            (4.6, 4.3),
            (9.0, 0.0),
        ]);
        for side in [1.0, 2.0, 3.0, 8.0] {
            let size = RectSize::square(side);
            let fast = max_rs_in_memory(&objects, size);
            let slow = brute_force_max_rs(&objects, size);
            assert_eq!(fast.total_weight, slow.total_weight, "side={side}");
            // The returned center must actually achieve the reported weight.
            assert_eq!(
                rect_objective(&objects, fast.center, size),
                fast.total_weight,
                "side={side}"
            );
        }
    }

    #[test]
    fn weighted_objects_prefer_heavy_cluster() {
        let objects = vec![
            WeightedPoint::at(0.0, 0.0, 1.0),
            WeightedPoint::at(0.5, 0.5, 1.0),
            WeightedPoint::at(0.9, 0.1, 1.0),
            WeightedPoint::at(50.0, 50.0, 10.0),
        ];
        let r = max_rs_in_memory(&objects, RectSize::square(3.0));
        assert_eq!(r.total_weight, 10.0);
        assert!((r.center.x - 50.0).abs() < 3.0);
    }

    #[test]
    fn boundary_objects_are_excluded() {
        // Two objects exactly d apart in x: no 2x2 rectangle strictly contains both.
        let objects = units(&[(0.0, 0.0), (2.0, 0.0)]);
        let r = max_rs_in_memory(&objects, RectSize::square(2.0));
        assert_eq!(r.total_weight, 1.0);
        // Slightly closer: now both fit.
        let objects = units(&[(0.0, 0.0), (1.9, 0.0)]);
        let r = max_rs_in_memory(&objects, RectSize::square(2.0));
        assert_eq!(r.total_weight, 2.0);
    }

    #[test]
    fn transform_produces_centered_rects() {
        let objects = vec![WeightedPoint::at(10.0, 20.0, 2.0)];
        let rects = transform_objects(&objects, RectSize::new(4.0, 6.0));
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0].rect, Rect::new(8.0, 12.0, 17.0, 23.0));
        assert_eq!(rects[0].weight, 2.0);
        assert_eq!(rects[0].center_x(), 10.0);
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        // Many objects at the same location: the sweep must not be confused by
        // duplicate breakpoints or duplicate event ys.
        let objects: Vec<WeightedPoint> = (0..20).map(|_| WeightedPoint::unit(5.0, 5.0)).collect();
        let r = max_rs_in_memory(&objects, RectSize::square(1.0));
        assert_eq!(r.total_weight, 20.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(1.0)),
            20.0
        );
    }
}
