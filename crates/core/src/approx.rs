//! ApproxMaxCRS: the (1/4)-approximation for MaxCRS (Section 6).
//!
//! Algorithm 3 of the paper:
//!
//! 1. Replace every circle by its minimum bounding rectangle (a `d × d`
//!    square) and solve the resulting MaxRS instance exactly with
//!    [`exact_max_rs`](crate::exact::exact_max_rs()).
//! 2. Take the centroid `p0` of the returned max-region and generate four
//!    *shifted points* `p1..p4` at distance `σ` from `p0` along the four
//!    diagonal directions, with `(√2 − 1)·d/2 < σ < d/2` so that the four
//!    shifted circles together cover the MBR of the circle at `p0` (Lemma 5).
//! 3. Evaluate the circular range sum of the five candidates with one
//!    sequential scan of the object file and return the best.
//!
//! The whole procedure adds only `O(N/B)` I/Os on top of ExactMaxRS and is a
//! `1/4`-approximation in the worst case (Theorems 3 and 4); the experiments
//! of Figure 17 show the practical ratio is ≈0.9.

use maxrs_em::{EmContext, TupleFile};
use maxrs_geometry::{Point, RectSize, WeightedPoint};

use crate::error::{CoreError, Result};
use crate::exact::{load_objects, ExactMaxRsOptions};
use crate::plane_sweep::max_rs_in_memory;
use crate::records::ObjectRecord;
use crate::result::MaxCrsResult;
use crate::sweep::SweepPass;

/// Lower bound of the admissible sigma-fraction interval, `(√2 − 1)/2` ≈
/// 0.2071.  A valid shifting distance satisfies
/// `SIGMA_FRACTION_LO < σ/d < 1/2` **strictly** (Lemma 5); see
/// [`candidate_points`] for why both bounds matter.
pub const SIGMA_FRACTION_LO: f64 = (std::f64::consts::SQRT_2 - 1.0) / 2.0;

/// Tuning knobs of [`approx_max_crs`].
#[derive(Debug, Clone, Copy)]
pub struct ApproxMaxCrsOptions {
    /// The shifting distance σ as a fraction of the diameter; must lie in
    /// `((√2 − 1)/2, 1/2)` ≈ `(0.2071, 0.5)` for the approximation bound to
    /// hold.  The default 0.35 sits comfortably inside the interval.
    pub sigma_fraction: f64,
    /// Options forwarded to the underlying ExactMaxRS run.
    pub exact: ExactMaxRsOptions,
}

impl Default for ApproxMaxCrsOptions {
    fn default() -> Self {
        ApproxMaxCrsOptions {
            sigma_fraction: 0.35,
            exact: ExactMaxRsOptions::default(),
        }
    }
}

/// Runs ApproxMaxCRS over an object file stored in the EM context.
pub fn approx_max_crs(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    diameter: f64,
    opts: &ApproxMaxCrsOptions,
) -> Result<MaxCrsResult> {
    approx_max_crs_impl(ctx, objects, diameter, opts, false)
}

/// [`approx_max_crs`] over an object file already sorted by x (see
/// [`sort_objects_by_x`](crate::exact::sort_objects_by_x)): the MaxRS step
/// of Algorithm 3 runs through a presorted [`SweepPass`], skipping the
/// external sort.  Used by [`PreparedDataset`](crate::PreparedDataset).
pub fn approx_max_crs_presorted(
    ctx: &EmContext,
    sorted_objects: &TupleFile<ObjectRecord>,
    diameter: f64,
    opts: &ApproxMaxCrsOptions,
) -> Result<MaxCrsResult> {
    approx_max_crs_impl(ctx, sorted_objects, diameter, opts, true)
}

fn approx_max_crs_impl(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    diameter: f64,
    opts: &ApproxMaxCrsOptions,
    presorted: bool,
) -> Result<MaxCrsResult> {
    if diameter <= 0.0 || !diameter.is_finite() {
        return Err(CoreError::InvalidParameter(format!(
            "circle diameter must be positive and finite, got {diameter}"
        )));
    }
    if !(opts.sigma_fraction > SIGMA_FRACTION_LO && opts.sigma_fraction < 0.5) {
        return Err(CoreError::InvalidParameter(format!(
            "sigma fraction {} outside the admissible interval ({SIGMA_FRACTION_LO:.4}, 0.5)",
            opts.sigma_fraction
        )));
    }
    if objects.is_empty() {
        return Ok(MaxCrsResult::empty());
    }

    // 1. Solve MaxRS on the MBRs of the circles (d x d squares): one sweep
    // kernel pass, sort-free when the input is presorted.
    let pass = if presorted {
        SweepPass::presorted(ctx, &opts.exact)
    } else {
        SweepPass::new(ctx, &opts.exact)
    };
    let rect_result = pass.max_rs(objects, RectSize::square(diameter))?;

    // 2 + 3. Shift, evaluate, pick (shared with the batched executor, which
    // reuses one MaxRS pass for several piggybacked queries).
    refine_from_p0(
        ctx,
        objects,
        rect_result.center,
        diameter,
        opts.sigma_fraction,
    )
}

/// Steps 2–3 of Algorithm 3 given the MaxRS centroid `p0`: generate the five
/// candidate points and evaluate their circular range sums with one scan of
/// the object file.  Shared by [`approx_max_crs`] and the batched executor,
/// which piggybacks this refinement on a MaxRS sweep other queries already
/// paid for.
pub(crate) fn refine_from_p0(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    p0: Point,
    diameter: f64,
    sigma_fraction: f64,
) -> Result<MaxCrsResult> {
    let candidates = candidate_points(p0, diameter, sigma_fraction);
    let weights = evaluate_candidates(ctx, objects, &candidates, diameter)?;
    Ok(best_candidate(&candidates, &weights))
}

/// The in-memory counterpart of [`approx_max_crs`]: the same Algorithm 3 with
/// the MaxRS step solved by the in-memory plane sweep and the candidate
/// evaluation done by a direct pass over the slice.
///
/// Because the external pipeline reports canonical max-regions (see
/// [`crate::sweep`], "Canonical max-regions"), this returns the identical
/// answer to [`approx_max_crs`] on the same data — the engine's determinism
/// tests rely on that.
///
/// # Panics
///
/// Panics on a non-positive / non-finite `diameter` or a `sigma_fraction`
/// outside `((√2 − 1)/2, 1/2)` — the same contract as [`candidate_points`].
/// Use [`MaxRsEngine::run`](crate::engine::MaxRsEngine::run) for checked
/// errors instead of panics.
pub fn approx_max_crs_in_memory(
    objects: &[WeightedPoint],
    diameter: f64,
    sigma_fraction: f64,
) -> MaxCrsResult {
    if objects.is_empty() {
        // Validate even on the trivial input so misuse surfaces early.
        let _ = candidate_points(Point::ORIGIN, diameter, sigma_fraction);
        return MaxCrsResult::empty();
    }
    let p0 = max_rs_in_memory(objects, RectSize::square(diameter)).center;
    let candidates = candidate_points(p0, diameter, sigma_fraction);
    // Same evaluation (open disks, input order) as the external file scan.
    let r_sq = (diameter / 2.0) * (diameter / 2.0);
    let mut weights = [0.0f64; 5];
    for o in objects {
        for (i, c) in candidates.iter().enumerate() {
            if o.point.distance_sq(c) < r_sq {
                weights[i] += o.weight;
            }
        }
    }
    best_candidate(&candidates, &weights)
}

/// Picks the best-scoring candidate (last on ties, matching `max_by`).
pub fn best_candidate(candidates: &[Point], weights: &[f64]) -> MaxCrsResult {
    let (best_idx, best_weight) = weights
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("five candidates");
    MaxCrsResult {
        center: candidates[best_idx],
        total_weight: best_weight,
    }
}

/// Convenience wrapper over a slice of objects.
pub fn approx_max_crs_from_objects(
    ctx: &EmContext,
    objects: &[WeightedPoint],
    diameter: f64,
    opts: &ApproxMaxCrsOptions,
) -> Result<MaxCrsResult> {
    let file = load_objects(ctx, objects)?;
    let result = approx_max_crs(ctx, &file, diameter, opts);
    ctx.delete_file(file)?;
    result
}

/// The five candidate points of Algorithm 3: the max-region centroid `p0` and
/// the four points shifted by `σ = sigma_fraction · diameter` along the
/// diagonal directions (Figure 9).
///
/// # The sigma-fraction contract
///
/// `sigma_fraction` must lie **strictly** inside `((√2 − 1)/2, 1/2)` ≈
/// `(0.2071, 0.5)`.  Lemma 5 needs both bounds: at or below the lower bound
/// the four shifted circles no longer cover the corners of the MBR of the
/// circle at `p0`; at or above the upper bound they no longer cover its
/// center region.  Either way the `1/4`-approximation guarantee (Theorem 4)
/// is lost, so values outside the open interval are rejected rather than
/// silently degrading the bound.
///
/// # Panics
///
/// Panics when `diameter` is non-positive, infinite or NaN, or when
/// `sigma_fraction` lies outside the open interval above (NaN included).
/// Callers that prefer checked errors should go through
/// [`approx_max_crs`] / [`MaxRsEngine::run`](crate::engine::MaxRsEngine::run),
/// which validate the same conditions up front and return
/// [`CoreError::InvalidParameter`](crate::error::CoreError) instead.
pub fn candidate_points(p0: Point, diameter: f64, sigma_fraction: f64) -> [Point; 5] {
    assert!(
        diameter > 0.0 && diameter.is_finite(),
        "circle diameter must be positive and finite, got {diameter}"
    );
    assert!(
        sigma_fraction > SIGMA_FRACTION_LO && sigma_fraction < 0.5,
        "sigma fraction {sigma_fraction} outside the admissible interval \
         ({SIGMA_FRACTION_LO:.4}, 0.5)"
    );
    let sigma = sigma_fraction * diameter;
    let step = sigma / std::f64::consts::SQRT_2;
    [
        p0,
        p0.translated(step, step),
        p0.translated(step, -step),
        p0.translated(-step, -step),
        p0.translated(-step, step),
    ]
}

/// Evaluates the (open-disk) circular range sum of every candidate with a
/// single sequential scan of the object file.
pub fn evaluate_candidates(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    candidates: &[Point],
    diameter: f64,
) -> Result<Vec<f64>> {
    let r_sq = (diameter / 2.0) * (diameter / 2.0);
    let mut sums = vec![0.0f64; candidates.len()];
    let mut reader = ctx.open_reader(objects);
    while let Some(rec) = reader.next_record()? {
        for (i, c) in candidates.iter().enumerate() {
            if rec.0.point.distance_sq(c) < r_sq {
                sums[i] += rec.0.weight;
            }
        }
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crs_exact::exact_max_crs_in_memory;
    use crate::reference::circle_objective;
    use maxrs_em::EmConfig;

    fn ctx() -> EmContext {
        EmContext::new(EmConfig::new(4096, 64 * 1024).unwrap())
    }

    fn pseudo_random_objects(n: usize, seed: u64, extent: f64) -> Vec<WeightedPoint> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| WeightedPoint::at(next() * extent, next() * extent, 1.0))
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        let ctx = ctx();
        let objects = vec![WeightedPoint::unit(0.0, 0.0)];
        let file = load_objects(&ctx, &objects).unwrap();
        assert!(approx_max_crs(&ctx, &file, 0.0, &Default::default()).is_err());
        assert!(approx_max_crs(&ctx, &file, f64::NAN, &Default::default()).is_err());
        let bad_sigma = ApproxMaxCrsOptions {
            sigma_fraction: 0.6,
            ..Default::default()
        };
        assert!(approx_max_crs(&ctx, &file, 2.0, &bad_sigma).is_err());
        let bad_sigma_low = ApproxMaxCrsOptions {
            sigma_fraction: 0.1,
            ..Default::default()
        };
        assert!(approx_max_crs(&ctx, &file, 2.0, &bad_sigma_low).is_err());
    }

    #[test]
    #[should_panic(expected = "circle diameter must be positive")]
    fn candidate_points_panics_on_non_positive_diameter() {
        let _ = candidate_points(Point::new(0.0, 0.0), 0.0, 0.35);
    }

    #[test]
    #[should_panic(expected = "circle diameter must be positive")]
    fn candidate_points_panics_on_nan_diameter() {
        let _ = candidate_points(Point::new(0.0, 0.0), f64::NAN, 0.35);
    }

    #[test]
    #[should_panic(expected = "outside the admissible interval")]
    fn candidate_points_panics_on_sigma_fraction_below_the_interval() {
        // (sqrt(2)-1)/2 is excluded: Lemma 5 needs the *open* interval.
        let _ = candidate_points(
            Point::new(0.0, 0.0),
            2.0,
            (std::f64::consts::SQRT_2 - 1.0) / 2.0,
        );
    }

    #[test]
    #[should_panic(expected = "outside the admissible interval")]
    fn candidate_points_panics_on_sigma_fraction_at_one_half() {
        let _ = candidate_points(Point::new(0.0, 0.0), 2.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "outside the admissible interval")]
    fn candidate_points_panics_on_nan_sigma_fraction() {
        let _ = candidate_points(Point::new(0.0, 0.0), 2.0, f64::NAN);
    }

    #[test]
    fn in_memory_approx_matches_external_pipeline() {
        let ctx = ctx();
        for seed in [5u64, 29] {
            let objects = pseudo_random_objects(200, seed, 150.0);
            for diameter in [10.0, 25.0] {
                let external =
                    approx_max_crs_from_objects(&ctx, &objects, diameter, &Default::default())
                        .unwrap();
                let internal = approx_max_crs_in_memory(&objects, diameter, 0.35);
                assert_eq!(external, internal, "seed={seed} d={diameter}");
            }
        }
    }

    #[test]
    fn empty_and_single_object() {
        let ctx = ctx();
        let r = approx_max_crs_from_objects(&ctx, &[], 5.0, &Default::default()).unwrap();
        assert_eq!(r.total_weight, 0.0);
        let objects = vec![WeightedPoint::at(10.0, 10.0, 3.0)];
        let r = approx_max_crs_from_objects(&ctx, &objects, 5.0, &Default::default()).unwrap();
        assert_eq!(r.total_weight, 3.0);
    }

    #[test]
    fn candidate_geometry_matches_lemma5() {
        // With (sqrt(2)-1)/2 < sigma/d < 1/2 the four shifted circles must
        // cover the MBR of the circle at p0 (Lemma 5): check by sampling.
        let d = 10.0;
        let p0 = Point::new(0.0, 0.0);
        for sigma_fraction in [0.22, 0.35, 0.49] {
            let candidates = candidate_points(p0, d, sigma_fraction);
            for i in 0..=20 {
                for j in 0..=20 {
                    let q = Point::new(
                        -d / 2.0 + d * i as f64 / 20.0,
                        -d / 2.0 + d * j as f64 / 20.0,
                    );
                    let covered = candidates[1..]
                        .iter()
                        .any(|c| c.distance(&q) <= d / 2.0 + 1e-9);
                    assert!(covered, "sigma={sigma_fraction} point {q} uncovered");
                }
            }
        }
    }

    #[test]
    fn approximation_bound_holds_on_random_data() {
        let ctx = ctx();
        for seed in [3u64, 17, 71] {
            let objects = pseudo_random_objects(150, seed, 100.0);
            for diameter in [8.0, 15.0, 30.0] {
                let approx =
                    approx_max_crs_from_objects(&ctx, &objects, diameter, &Default::default())
                        .unwrap();
                let exact = exact_max_crs_in_memory(&objects, diameter);
                assert!(exact.total_weight > 0.0);
                let ratio = approx.total_weight / exact.total_weight;
                assert!(
                    ratio >= 0.25 - 1e-9,
                    "seed={seed} d={diameter}: ratio {ratio} below the proven bound"
                );
                assert!(ratio <= 1.0 + 1e-9, "approximation cannot beat the optimum");
                // Reported weight must match a direct evaluation at the center.
                assert_eq!(
                    circle_objective(&objects, approx.center, diameter),
                    approx.total_weight
                );
            }
        }
    }

    #[test]
    fn dense_cluster_is_found_exactly() {
        let ctx = ctx();
        // A tight cluster of 10 points within a 1-unit ball plus far noise.
        let mut objects: Vec<WeightedPoint> = (0..10)
            .map(|i| WeightedPoint::unit(50.0 + (i as f64) * 0.1, 50.0 - (i as f64) * 0.05))
            .collect();
        objects.push(WeightedPoint::unit(500.0, 500.0));
        let r = approx_max_crs_from_objects(&ctx, &objects, 10.0, &Default::default()).unwrap();
        assert_eq!(r.total_weight, 10.0, "the cluster fits in one circle");
    }
}
