//! The unified query layer: one [`Query`] type for every problem variant the
//! paper and its future-work section describe, answered by
//! [`MaxRsEngine::run`](crate::engine::MaxRsEngine::run) through the same
//! in-memory / external-sequential / external-parallel strategy ladder.
//!
//! | Variant | Problem | Paper anchor |
//! |---|---|---|
//! | [`Query::MaxRs`] | best single placement of a `d1 × d2` rectangle | Sections 4–5 |
//! | [`Query::TopK`] | `k` pairwise non-overlapping placements, best first | Section 8 (MaxkRS) |
//! | [`Query::MinRs`] | the *least*-covered placement inside a domain | Section 8 (MinRS) |
//! | [`Query::ApproxMaxCrs`] | `(1/4)`-approximate best circle placement | Section 6 (Algorithm 3) |
//!
//! All variants share one execution substrate: each reduces to (rounds of)
//! the rectangle distribution sweep, so scaling work done for MaxRS — the EM
//! pipeline, the parallel slab stage, the MergeSweep tree — carries over to
//! every variant for free.  A [`QueryRun`] reports the answer together with
//! the strategy that produced it and the I/O it cost.

use maxrs_em::IoSnapshot;
use maxrs_geometry::{Rect, RectSize};

use crate::engine::ExecutionStrategy;
use crate::error::{CoreError, Result};
use crate::result::{MaxCrsResult, MaxRsResult};

use crate::approx::SIGMA_FRACTION_LO;

/// One spatial-analytics query, answerable by
/// [`MaxRsEngine::run`](crate::engine::MaxRsEngine::run).
///
/// Construct via the checked helpers ([`Query::max_rs`], [`Query::top_k`],
/// [`Query::min_rs`], [`Query::approx_max_crs`]) or literally; `run` validates
/// parameters either way and rejects invalid ones with
/// [`CoreError::InvalidParameter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// MaxRS: the placement of a `size` rectangle covering maximum weight.
    MaxRs {
        /// Query rectangle extent (`d1 × d2` in the paper).
        size: RectSize,
    },
    /// MaxkRS: up to `k` pairwise non-overlapping placements, best first
    /// (greedy suppression — each round's placement is optimal for the
    /// objects not yet covered).
    TopK {
        /// Query rectangle extent.
        size: RectSize,
        /// Number of placements requested; fewer are returned when the
        /// objects run out first.  `k = 0` returns an empty list.
        k: usize,
    },
    /// MinRS: among all centers in the closed `domain`, the placement whose
    /// (open) query rectangle covers *minimum* total weight.  Solved as a
    /// weight-negated MaxRS pass over the domain's x-slab.
    MinRs {
        /// Query rectangle extent.
        size: RectSize,
        /// Admissible region for the rectangle's center (without it the
        /// minimum is trivially 0 in empty space).
        domain: Rect,
    },
    /// ApproxMaxCRS: the `(1/4)`-approximate best placement of a circle of
    /// the given `diameter` (Algorithm 3: MBR transform + MaxRS + 5-candidate
    /// refinement).
    ApproxMaxCrs {
        /// Circle diameter (`d` in the paper); must be positive and finite.
        diameter: f64,
        /// Position of the shifting distance σ inside its admissible open
        /// interval `((√2 − 1)·d/2, d/2)` (Lemma 5): `σ` is the interval's
        /// point at fraction `epsilon`, so `epsilon` must lie strictly
        /// between 0 and 1.  `0.5` (the interval midpoint, σ ≈ 0.354·d) is a
        /// robust default.
        epsilon: f64,
    },
}

impl Query {
    /// A MaxRS query.
    pub fn max_rs(size: RectSize) -> Self {
        Query::MaxRs { size }
    }

    /// A top-k (MaxkRS) query.
    pub fn top_k(size: RectSize, k: usize) -> Self {
        Query::TopK { size, k }
    }

    /// A MinRS query over the given center domain.
    pub fn min_rs(size: RectSize, domain: Rect) -> Self {
        Query::MinRs { size, domain }
    }

    /// An ApproxMaxCRS query with the default `epsilon = 0.5`.
    pub fn approx_max_crs(diameter: f64) -> Self {
        Query::ApproxMaxCrs {
            diameter,
            epsilon: 0.5,
        }
    }

    /// A short human-readable name ("max-rs", "top-k", "min-rs",
    /// "approx-max-crs").
    pub fn name(&self) -> &'static str {
        match self {
            Query::MaxRs { .. } => "max-rs",
            Query::TopK { .. } => "top-k",
            Query::MinRs { .. } => "min-rs",
            Query::ApproxMaxCrs { .. } => "approx-max-crs",
        }
    }

    /// Checks the query parameters, returning
    /// [`CoreError::InvalidParameter`] for non-positive / non-finite extents,
    /// an `epsilon` outside `(0, 1)`, or a NaN domain.
    pub fn validate(&self) -> Result<()> {
        let check_size = |size: &RectSize| -> Result<()> {
            // Written to also reject NaN: `NaN > 0.0` is false.
            let valid = size.width > 0.0
                && size.height > 0.0
                && size.width.is_finite()
                && size.height.is_finite();
            if !valid {
                return Err(CoreError::InvalidParameter(format!(
                    "query rectangle extent must be positive and finite, got {} x {}",
                    size.width, size.height
                )));
            }
            Ok(())
        };
        match self {
            Query::MaxRs { size } | Query::TopK { size, .. } => check_size(size),
            Query::MinRs { size, domain } => {
                check_size(size)?;
                // NaN comparisons are false, so NaN bounds fail `valid` too.
                // Finiteness matters even for the bounds a sweep would clamp
                // away: an infinite domain has no well-defined center to
                // report (and an unbounded MinRS is trivially 0 regardless).
                let valid = domain.x_lo <= domain.x_hi
                    && domain.y_lo <= domain.y_hi
                    && domain.x_lo.is_finite()
                    && domain.x_hi.is_finite()
                    && domain.y_lo.is_finite()
                    && domain.y_hi.is_finite();
                if !valid {
                    return Err(CoreError::InvalidParameter(format!(
                        "MinRS domain bounds must be finite, ordered and non-NaN, got \
                         x [{}, {}] y [{}, {}]",
                        domain.x_lo, domain.x_hi, domain.y_lo, domain.y_hi
                    )));
                }
                Ok(())
            }
            Query::ApproxMaxCrs { diameter, epsilon } => {
                // `NaN > 0.0` is false, so NaN diameters are rejected too.
                let diameter_ok = *diameter > 0.0 && diameter.is_finite();
                if !diameter_ok {
                    return Err(CoreError::InvalidParameter(format!(
                        "circle diameter must be positive and finite, got {diameter}"
                    )));
                }
                if !(*epsilon > 0.0 && *epsilon < 1.0) {
                    return Err(CoreError::InvalidParameter(format!(
                        "epsilon must lie strictly between 0 and 1, got {epsilon}"
                    )));
                }
                // An extreme epsilon (≲ 1e-17 or within one ulp of 1) can
                // round the interpolated σ onto an interval endpoint, which
                // `candidate_points` rejects with a panic; catch it here as
                // the checked error the engine promises.
                let sigma = self.sigma_fraction().expect("approx variant");
                if !(sigma > SIGMA_FRACTION_LO && sigma < 0.5) {
                    return Err(CoreError::InvalidParameter(format!(
                        "epsilon {epsilon} maps to sigma fraction {sigma}, which rounds \
                         onto the boundary of ({SIGMA_FRACTION_LO:.4}, 0.5)"
                    )));
                }
                Ok(())
            }
        }
    }

    /// The shifting distance σ as a fraction of the diameter for an
    /// [`ApproxMaxCrs`](Query::ApproxMaxCrs) query: the point at fraction
    /// `epsilon` of the admissible open interval `((√2 − 1)/2, 1/2)`.
    ///
    /// Returns `None` for the other variants.
    pub fn sigma_fraction(&self) -> Option<f64> {
        match self {
            Query::ApproxMaxCrs { epsilon, .. } => {
                Some(SIGMA_FRACTION_LO + epsilon * (0.5 - SIGMA_FRACTION_LO))
            }
            _ => None,
        }
    }
}

/// The answer to a [`Query`], shaped per variant.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Answer to [`Query::MaxRs`].
    MaxRs(MaxRsResult),
    /// Answer to [`Query::TopK`]: placements in decreasing weight order.
    TopK(Vec<MaxRsResult>),
    /// Answer to [`Query::MinRs`] (here `total_weight` is the *minimum*).
    MinRs(MaxRsResult),
    /// Answer to [`Query::ApproxMaxCrs`].
    MaxCrs(MaxCrsResult),
}

impl QueryAnswer {
    /// The single rectangle result of a MaxRS or MinRS answer.
    pub fn as_max_rs(&self) -> Option<&MaxRsResult> {
        match self {
            QueryAnswer::MaxRs(r) | QueryAnswer::MinRs(r) => Some(r),
            _ => None,
        }
    }

    /// The placement list of a top-k answer.
    pub fn placements(&self) -> Option<&[MaxRsResult]> {
        match self {
            QueryAnswer::TopK(v) => Some(v),
            _ => None,
        }
    }

    /// The circle result of an ApproxMaxCRS answer.
    pub fn as_max_crs(&self) -> Option<&MaxCrsResult> {
        match self {
            QueryAnswer::MaxCrs(r) => Some(r),
            _ => None,
        }
    }

    /// The headline objective value: the covered weight of the (best)
    /// placement, `0.0` for an empty top-k list.
    pub fn best_weight(&self) -> f64 {
        match self {
            QueryAnswer::MaxRs(r) | QueryAnswer::MinRs(r) => r.total_weight,
            QueryAnswer::TopK(v) => v.first().map_or(0.0, |r| r.total_weight),
            QueryAnswer::MaxCrs(r) => r.total_weight,
        }
    }
}

/// The outcome of one [`MaxRsEngine::run`](crate::engine::MaxRsEngine::run):
/// the per-variant answer plus how it was computed and what it cost —
/// the [`Query`]-polymorphic counterpart of
/// [`EngineRun`](crate::engine::EngineRun).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The answer, shaped per query variant.
    pub answer: QueryAnswer,
    /// The strategy the engine selected (or was forced to use).
    pub strategy: ExecutionStrategy,
    /// Worker threads used (1 unless the strategy is
    /// [`ExecutionStrategy::ExternalParallel`]).  In a batched run this is
    /// the worker pool available to the whole batch: with several sweep
    /// groups the workers run *groups* concurrently (each group's inner
    /// sweep sequential), with a single group they run its slab stage.
    pub workers: usize,
    /// Blocks transferred while answering.  Multi-round variants (top-k)
    /// accumulate the I/O of every round.
    pub io: IoSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxrs_geometry::Point;

    #[test]
    fn validation_accepts_good_and_rejects_bad_parameters() {
        assert!(Query::max_rs(RectSize::square(2.0)).validate().is_ok());
        assert!(Query::top_k(RectSize::new(1.0, 3.0), 0).validate().is_ok());
        assert!(
            Query::min_rs(RectSize::square(1.0), Rect::new(0.0, 1.0, 0.0, 1.0))
                .validate()
                .is_ok()
        );
        assert!(Query::approx_max_crs(5.0).validate().is_ok());

        // Invalid extents are constructed literally: `RectSize::new` itself
        // debug-asserts positivity, `Query::validate` is the checked path.
        assert!(Query::max_rs(RectSize {
            width: 0.0,
            height: 1.0
        })
        .validate()
        .is_err());
        assert!(Query::max_rs(RectSize {
            width: f64::INFINITY,
            height: 1.0
        })
        .validate()
        .is_err());
        assert!(Query::top_k(
            RectSize {
                width: 1.0,
                height: f64::NAN
            },
            3
        )
        .validate()
        .is_err());
        // Inverted or NaN MinRS domains are rejected before they can reach
        // the sweep (which would otherwise panic on Interval::new / clamp).
        assert!(Query::min_rs(
            RectSize::square(1.0),
            Rect {
                x_lo: 5.0,
                x_hi: 1.0,
                y_lo: 0.0,
                y_hi: 1.0
            }
        )
        .validate()
        .is_err());
        assert!(Query::min_rs(
            RectSize::square(1.0),
            Rect {
                x_lo: 0.0,
                x_hi: 1.0,
                y_lo: 2.0,
                y_hi: 1.0
            }
        )
        .validate()
        .is_err());
        assert!(Query::min_rs(
            RectSize::square(1.0),
            Rect {
                x_lo: f64::NAN,
                x_hi: 1.0,
                y_lo: 0.0,
                y_hi: 1.0
            }
        )
        .validate()
        .is_err());
        // Infinite domains have no well-defined center to report.
        assert!(Query::min_rs(
            RectSize::square(1.0),
            Rect {
                x_lo: f64::NEG_INFINITY,
                x_hi: f64::INFINITY,
                y_lo: 0.0,
                y_hi: 1.0
            }
        )
        .validate()
        .is_err());
        assert!(Query::approx_max_crs(0.0).validate().is_err());
        assert!(Query::approx_max_crs(f64::NAN).validate().is_err());
        assert!(Query::ApproxMaxCrs {
            diameter: 1.0,
            epsilon: 0.0
        }
        .validate()
        .is_err());
        assert!(Query::ApproxMaxCrs {
            diameter: 1.0,
            epsilon: 1.0
        }
        .validate()
        .is_err());
        // Positive but so small that sigma rounds onto the interval's lower
        // endpoint: must be a checked error, not a candidate_points panic.
        assert!(Query::ApproxMaxCrs {
            diameter: 1.0,
            epsilon: 1e-18
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sigma_fraction_interpolates_the_admissible_interval() {
        let lo = SIGMA_FRACTION_LO;
        let mid = Query::approx_max_crs(10.0).sigma_fraction().unwrap();
        assert!((mid - (lo + 0.5 * (0.5 - lo))).abs() < 1e-15);
        let near_lo = Query::ApproxMaxCrs {
            diameter: 1.0,
            epsilon: 1e-6,
        }
        .sigma_fraction()
        .unwrap();
        let near_hi = Query::ApproxMaxCrs {
            diameter: 1.0,
            epsilon: 1.0 - 1e-6,
        }
        .sigma_fraction()
        .unwrap();
        assert!(lo < near_lo && near_lo < mid && mid < near_hi && near_hi < 0.5);
        assert!(Query::max_rs(RectSize::square(1.0))
            .sigma_fraction()
            .is_none());
    }

    #[test]
    fn names_and_accessors() {
        assert_eq!(Query::max_rs(RectSize::square(1.0)).name(), "max-rs");
        assert_eq!(Query::top_k(RectSize::square(1.0), 2).name(), "top-k");
        assert_eq!(
            Query::min_rs(RectSize::square(1.0), Rect::new(0.0, 1.0, 0.0, 1.0)).name(),
            "min-rs"
        );
        assert_eq!(Query::approx_max_crs(1.0).name(), "approx-max-crs");

        let r = MaxRsResult {
            center: Point::new(1.0, 2.0),
            total_weight: 5.0,
            region: Rect::new(0.0, 2.0, 1.0, 3.0),
        };
        let ans = QueryAnswer::MaxRs(r);
        assert_eq!(ans.as_max_rs().unwrap().total_weight, 5.0);
        assert_eq!(ans.best_weight(), 5.0);
        assert!(ans.placements().is_none());
        assert!(ans.as_max_crs().is_none());

        let topk = QueryAnswer::TopK(vec![r]);
        assert_eq!(topk.placements().unwrap().len(), 1);
        assert_eq!(topk.best_weight(), 5.0);
        assert_eq!(QueryAnswer::TopK(Vec::new()).best_weight(), 0.0);

        let crs = QueryAnswer::MaxCrs(MaxCrsResult {
            center: Point::new(0.0, 0.0),
            total_weight: 3.0,
        });
        assert_eq!(crs.as_max_crs().unwrap().total_weight, 3.0);
        assert_eq!(crs.best_weight(), 3.0);
    }
}
