//! Batched multi-query execution: answer M queries over one
//! [`PreparedDataset`](crate::PreparedDataset) in shared sweep passes.
//!
//! A serving workload rarely asks one question of a dataset — it asks many:
//! MaxRS at a few rectangle sizes, top-k follow-ups, a MinRS sanity check, a
//! circular variant.  Per-query execution pays one full distribution sweep
//! per question even though queries of the *same* rectangle size share their
//! transform, their slab recursion and their winning strip.  [`QueryBatch`]
//! plans a slice of [`Query`]s into **sweep groups** — queries whose answers
//! fall out of one [`SweepPass`] — and the executor
//! runs each group's kernel pass once:
//!
//! * [`Query::MaxRs`], [`Query::TopK`] and [`Query::ApproxMaxCrs`] of one
//!   rectangle size (a circle's MBR is the `d × d` square) share one
//!   positive-weight pass: MaxRS answers *are* the pass's canonical best,
//!   top-k piggybacks its first round on it (later suppression rounds are
//!   shared up to the largest requested `k`), and ApproxMaxCRS refines the
//!   shared centroid with its own 5-candidate scan.
//! * [`Query::MinRs`] queries sharing a size and a domain x-slab share one
//!   weight-negated pass; each member streams its own domain-clipped strip
//!   scan over the shared slab-file.
//!
//! Independent groups execute concurrently on the existing
//! [`parallel_map`](crate::parallel::parallel_map()) worker pool; the sharded
//! [`IoStats`](maxrs_em::IoStats) keep the global count exact, and
//! [`measure_thread_io`](maxrs_em::measure_thread_io()) attributes each group's
//! transfers to its queries.  Answers are **bit-identical** to per-query
//! [`PreparedDataset::run`](crate::PreparedDataset::run) calls — in fact the
//! per-query path *is* a batch of one, so the single-query and batched code
//! can never diverge.  One caveat carries over from strategy selection: when
//! several groups run concurrently, each group's sweep combines its slabs
//! with the flat sequential MergeSweep instead of the parallel pairwise tree
//! a lone query would use, which for **integer-valued weights** is exactly
//! identical and for arbitrary floats shares the last-bit association caveat
//! of [`merge_sweep_tree`](crate::merge_sweep::merge_sweep_tree()) — the
//! same caveat that already applies between execution strategies.
//!
//! # I/O attribution
//!
//! Each [`QueryRun::io`] reports the query's marginal cost (its exclusive
//! scans and rounds); a group's shared pass is charged to the group's first
//! query in batch order.  Summing the runs therefore reproduces the batch's
//! exact total — nothing is double-counted and nothing is dropped.

use std::collections::HashMap;

use maxrs_em::{measure_thread_io, EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::approx::refine_from_p0;
use crate::engine::ExecutionStrategy;
use crate::error::Result;
use crate::exact::ExactMaxRsOptions;
use crate::extensions::{min_rs_in_memory, min_strip_scan, MinStrip};
use crate::parallel::parallel_map;
use crate::query::{Query, QueryAnswer, QueryRun};
use crate::records::ObjectRecord;
use crate::result::{MaxCrsResult, MaxRsResult};
use crate::sweep::{next_breakpoint_after, SweepPass};

/// A validated slice of queries planned into shared sweep groups.
///
/// Construction validates every query (the batch analogue of
/// [`Query::validate`]) and groups them by *sweep key*: the transform size
/// plus, for MinRS, the weight negation and the domain x-slab.  The executor
/// then pays one kernel pass per group instead of one per query.
///
/// ```
/// use maxrs_core::{Query, QueryBatch};
/// use maxrs_geometry::{Rect, RectSize};
///
/// let size = RectSize::square(10.0);
/// let batch = QueryBatch::new(&[
///     Query::max_rs(size),
///     Query::top_k(size, 3),
///     Query::approx_max_crs(10.0),              // MBR = the same 10 x 10 square
///     Query::min_rs(size, Rect::new(0.0, 50.0, 0.0, 50.0)),
/// ])
/// .unwrap();
/// // Three variants share one sweep; MinRS needs its own negated pass.
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.num_groups(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBatch {
    queries: Vec<Query>,
    groups: Vec<SweepGroup>,
}

/// One shared pass and the batch positions it answers.
#[derive(Debug, Clone)]
pub(crate) struct SweepGroup {
    pub(crate) kind: GroupKind,
    /// Indices into the batch's query list, in batch order.
    pub(crate) members: Vec<usize>,
}

#[derive(Debug, Clone)]
pub(crate) enum GroupKind {
    /// Positive-weight pass over the unbounded root: MaxRS, top-k and
    /// ApproxMaxCRS of one rectangle size.
    Shared { size: RectSize },
    /// Weight-negated pass over a domain x-slab: MinRS queries sharing a
    /// size and an x-slab (their y-domains may differ).
    MinRs { size: RectSize, slab: Interval },
    /// A degenerate-domain MinRS (point or segment of admissible centers),
    /// answered by the in-memory delegate; always a singleton group.
    DegenerateMinRs,
}

/// Hashable sweep key (f64 bit patterns; validation has rejected NaN).
type SweepKey = (u8, u64, u64, u64, u64);

impl QueryBatch {
    /// Validates every query and plans the batch into sweep groups.
    ///
    /// Returns the first query's validation error, if any; an empty slice is
    /// a valid (empty) batch.
    pub fn new(queries: &[Query]) -> Result<Self> {
        let mut groups: Vec<SweepGroup> = Vec::new();
        let mut by_key: HashMap<SweepKey, usize> = HashMap::new();
        for (i, query) in queries.iter().enumerate() {
            query.validate()?;
            let (key, kind) = match *query {
                Query::MaxRs { size } | Query::TopK { size, .. } => (
                    Some((0u8, size.width.to_bits(), size.height.to_bits(), 0, 0)),
                    GroupKind::Shared { size },
                ),
                Query::ApproxMaxCrs { diameter, .. } => {
                    let size = RectSize::square(diameter);
                    (
                        Some((0u8, size.width.to_bits(), size.height.to_bits(), 0, 0)),
                        GroupKind::Shared { size },
                    )
                }
                Query::MinRs { size, domain } => {
                    if domain.x_lo == domain.x_hi || domain.y_lo == domain.y_hi {
                        (None, GroupKind::DegenerateMinRs)
                    } else {
                        let slab = Interval::new(domain.x_lo, domain.x_hi);
                        (
                            Some((
                                1u8,
                                size.width.to_bits(),
                                size.height.to_bits(),
                                slab.lo.to_bits(),
                                slab.hi.to_bits(),
                            )),
                            GroupKind::MinRs { size, slab },
                        )
                    }
                }
            };
            match key.and_then(|k| by_key.get(&k).copied()) {
                Some(g) => groups[g].members.push(i),
                None => {
                    if let Some(k) = key {
                        by_key.insert(k, groups.len());
                    }
                    groups.push(SweepGroup {
                        kind,
                        members: vec![i],
                    });
                }
            }
        }
        Ok(QueryBatch {
            queries: queries.to_vec(),
            groups,
        })
    }

    /// The queries of the batch, in input order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of sweep groups — the number of kernel passes the executor will
    /// pay.  `num_groups() < len()` is the amortization a batch exists for.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The planned sweep groups, for executors outside this module (the
    /// sharded dataset layer reuses the plan, shard-routing each group).
    pub(crate) fn groups(&self) -> &[SweepGroup] {
        &self.groups
    }
}

/// One member's outcome: the answer plus the I/O attributed to it.
pub(crate) struct MemberOut {
    pub(crate) index: usize,
    pub(crate) answer: QueryAnswer,
    pub(crate) io: IoSnapshot,
}

/// How group phases measure their I/O: global counter deltas when groups run
/// one after another, per-thread meters when groups share the worker pool.
#[derive(Clone, Copy)]
enum Meter {
    GlobalDelta,
    ThreadLocal,
}

fn measured<R>(
    ctx: &EmContext,
    meter: Meter,
    f: impl FnOnce() -> Result<R>,
) -> Result<(R, IoSnapshot)> {
    match meter {
        Meter::ThreadLocal => {
            let (out, io) = measure_thread_io(f);
            Ok((out?, io))
        }
        Meter::GlobalDelta => {
            let before = ctx.stats();
            let out = f()?;
            Ok((out, ctx.stats().delta(&before)))
        }
    }
}

/// Executes a planned batch over an object file **already sorted by x** (the
/// retained file of a [`PreparedDataset`](crate::PreparedDataset)): one
/// kernel pass per sweep group, groups concurrent on the `parallel_map` pool
/// when more than one group and more than one worker exist.  Reports I/O per
/// query under the leader-attribution rule (module docs).
pub(crate) fn run_batch_external(
    ctx: &EmContext,
    sorted: &TupleFile<ObjectRecord>,
    batch: &QueryBatch,
    strategy: ExecutionStrategy,
    workers: usize,
    base: &ExactMaxRsOptions,
) -> Result<Vec<QueryRun>> {
    let exact_opts = ExactMaxRsOptions {
        parallelism: if strategy == ExecutionStrategy::ExternalParallel {
            workers
        } else {
            1
        },
        ..*base
    };
    // Report the batch-level execution: even a forced ExternalParallel
    // degrades to sequential when the buffer-size cap leaves one worker (see
    // `ExactMaxRsOptions::effective_parallelism`), and the runs must say so
    // rather than echo the request.  With several groups, `actual_workers`
    // is the pool the *groups* ran on — each group's inner sweep is then
    // sequential (see below), and every run of the batch reports the shared
    // batch-level strategy/worker count, not its group's inner sweep shape.
    let actual_workers = exact_opts.effective_parallelism(ctx.config());
    let actual_strategy = if actual_workers > 1 {
        ExecutionStrategy::ExternalParallel
    } else {
        ExecutionStrategy::ExternalSequential
    };

    // With several groups and workers to spare, the groups — independent by
    // construction — run concurrently, each group's sweep sequential inside
    // its worker (the groups are the coarsest unit of parallel work, exactly
    // like the slab stage's children).  A single group keeps the full
    // parallel slab stage instead.
    let parallel_groups = actual_workers > 1 && batch.groups.len() > 1;
    let outcomes: Vec<Result<Vec<MemberOut>>> = if parallel_groups {
        let group_opts = ExactMaxRsOptions {
            parallelism: 1,
            ..exact_opts
        };
        parallel_map(
            actual_workers.min(batch.groups.len()),
            batch.groups.iter().collect(),
            |_, group| run_group(ctx, sorted, group, batch, &group_opts, Meter::ThreadLocal),
        )
    } else {
        batch
            .groups
            .iter()
            .map(|group| run_group(ctx, sorted, group, batch, &exact_opts, Meter::GlobalDelta))
            .collect()
    };

    let mut runs: Vec<Option<QueryRun>> = batch.queries.iter().map(|_| None).collect();
    for outcome in outcomes {
        for m in outcome? {
            runs[m.index] = Some(QueryRun {
                answer: m.answer,
                strategy: actual_strategy,
                workers: actual_workers,
                io: m.io,
            });
        }
    }
    Ok(runs
        .into_iter()
        .map(|r| r.expect("every query belongs to exactly one group"))
        .collect())
}

fn run_group(
    ctx: &EmContext,
    sorted: &TupleFile<ObjectRecord>,
    group: &SweepGroup,
    batch: &QueryBatch,
    opts: &ExactMaxRsOptions,
    meter: Meter,
) -> Result<Vec<MemberOut>> {
    match group.kind {
        GroupKind::Shared { size } => {
            run_shared_group(ctx, sorted, size, &group.members, batch, opts, meter)
        }
        GroupKind::MinRs { size, slab } => {
            run_min_rs_group(ctx, sorted, size, slab, &group.members, batch, opts, meter)
        }
        GroupKind::DegenerateMinRs => {
            let index = group.members[0];
            let (size, domain) = match batch.queries[index] {
                Query::MinRs { size, domain } => (size, domain),
                _ => unreachable!("degenerate groups hold MinRS queries"),
            };
            // A degenerate domain — a point or a segment of admissible
            // centers — has no positive-area arrangement cell for the sweep
            // to report.  Delegate to the in-memory reference after one scan:
            // its 1D segment sweep needs the stabbed intervals, whose count
            // the EM model does not bound by M.  Acceptable for this corner
            // case, and exact parity with `min_rs_in_memory` by construction.
            let (answer, io) = measured(ctx, meter, || {
                if sorted.is_empty() {
                    return Ok(MaxRsResult {
                        center: domain.center(),
                        total_weight: 0.0,
                        region: domain,
                    });
                }
                let records = ctx.read_all(sorted)?;
                let points: Vec<WeightedPoint> = records.iter().map(|r| r.0).collect();
                Ok(min_rs_in_memory(&points, size, domain))
            })?;
            Ok(vec![MemberOut {
                index,
                answer: QueryAnswer::MinRs(answer),
                io,
            }])
        }
    }
}

/// The positive-weight group: one MaxRS kernel pass shared by every member.
fn run_shared_group(
    ctx: &EmContext,
    sorted: &TupleFile<ObjectRecord>,
    size: RectSize,
    members: &[usize],
    batch: &QueryBatch,
    opts: &ExactMaxRsOptions,
    meter: Meter,
) -> Result<Vec<MemberOut>> {
    let queries = &batch.queries;
    // Top-k rounds are shared up to the largest requested k; a batch of only
    // `k = 0` top-k queries (and nothing else) never needs the pass at all.
    let max_k = members
        .iter()
        .filter_map(|&i| match queries[i] {
            Query::TopK { k, .. } => Some(k),
            _ => None,
        })
        .max();
    let needs_pass = members
        .iter()
        .any(|&i| !matches!(queries[i], Query::TopK { k, .. } if k == 0));
    if !needs_pass || sorted.is_empty() {
        // Mirror the per-query empty/trivial answers at zero incremental I/O.
        return members
            .iter()
            .map(|&i| {
                let answer = match queries[i] {
                    Query::MaxRs { .. } => QueryAnswer::MaxRs(MaxRsResult::empty()),
                    Query::TopK { .. } => QueryAnswer::TopK(Vec::new()),
                    Query::ApproxMaxCrs { .. } => QueryAnswer::MaxCrs(MaxCrsResult::empty()),
                    Query::MinRs { .. } => unreachable!("MinRS plans into its own group"),
                };
                Ok(MemberOut {
                    index: i,
                    answer,
                    io: IoSnapshot::default(),
                })
            })
            .collect();
    }

    let pass = SweepPass::presorted(ctx, opts);
    // The shared phase: the full kernel pipeline once, charged to the leader.
    let (best, shared_io) = measured(ctx, meter, || pass.max_rs(sorted, size))?;

    // Shared top-k suppression rounds (round 1 is the shared best).
    let (rounds, rounds_io) = match max_k {
        Some(max_k) if max_k > 0 => measured(ctx, meter, || {
            top_k_rounds(ctx, sorted, size, max_k, best, &pass)
        })?,
        _ => (Vec::new(), IoSnapshot::default()),
    };

    let mut out = Vec::with_capacity(members.len());
    let mut shared_io = Some(shared_io);
    let mut rounds_io = Some(rounds_io);
    for &i in members {
        let (answer, mut io) = match queries[i] {
            Query::MaxRs { .. } => (QueryAnswer::MaxRs(best), IoSnapshot::default()),
            Query::TopK { k, .. } => (
                QueryAnswer::TopK(rounds[..k.min(rounds.len())].to_vec()),
                // The shared rounds are charged to the first top-k member.
                rounds_io.take().unwrap_or_default(),
            ),
            Query::ApproxMaxCrs { diameter, .. } => {
                let sigma = queries[i]
                    .sigma_fraction()
                    .expect("approx variant has a sigma");
                let (crs, refine_io) = measured(ctx, meter, || {
                    refine_from_p0(ctx, sorted, best.center, diameter, sigma)
                })?;
                (QueryAnswer::MaxCrs(crs), refine_io)
            }
            Query::MinRs { .. } => unreachable!("MinRS plans into its own group"),
        };
        // The pass itself is charged to the group's first query.
        io = io + shared_io.take().unwrap_or_default();
        out.push(MemberOut {
            index: i,
            answer,
            io,
        });
    }
    Ok(out)
}

/// Greedy MaxkRS suppression rounds over the EM pipeline, with round 1
/// supplied by the group's shared pass.
///
/// Each further round solves MaxRS on the remaining objects, then one
/// transform-aware scan ([`EmContext::filter_map_file`]) suppresses the
/// objects covered by the chosen placement — the external analogue of
/// [`max_k_rs_in_memory`](crate::extensions::max_k_rs_in_memory)'s `retain`,
/// and the same answers: round `r` sees exactly the objects the in-memory
/// greedy sees, because canonical max-regions make every round's center
/// strategy-independent.  The input is sorted by x and the suppression filter
/// preserves that order, so *no* round pays an external sort.  Rounds do not
/// depend on `k`, so one shared sequence serves every top-k member (each
/// takes its prefix).
fn top_k_rounds(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    max_k: usize,
    first_best: MaxRsResult,
    pass: &SweepPass<'_>,
) -> Result<Vec<MaxRsResult>> {
    // At most one placement per object exists, so a huge k must not
    // pre-allocate k slots (mirrors `max_k_rs_in_memory`).
    let mut results = Vec::with_capacity(max_k.min(objects.len() as usize));
    let mut current: Option<TupleFile<ObjectRecord>> = None;
    let mut rounds = || -> Result<()> {
        for round in 0..max_k {
            let remaining = current.as_ref().unwrap_or(objects);
            if remaining.is_empty() {
                break;
            }
            let best = if round == 0 {
                first_best
            } else {
                pass.max_rs(remaining, size)?
            };
            if best.total_weight <= 0.0 {
                break;
            }
            let chosen = Rect::centered_at(best.center, size);
            let next = ctx.filter_map_file(remaining, |rec: ObjectRecord| {
                if chosen.contains_open(&rec.0.point) {
                    None
                } else {
                    Some(rec)
                }
            })?;
            if let Some(f) = current.take() {
                ctx.delete_file(f)?;
            }
            current = Some(next);
            results.push(best);
        }
        Ok(())
    };
    let outcome = rounds();
    // The last suppression file is a temporary either way.
    if let Some(f) = current.take() {
        let _ = ctx.delete_file(f);
    }
    outcome.map(|()| results)
}

/// The MinRS group: one weight-negated kernel pass over the shared domain
/// x-slab, then one domain-clipped strip scan per member — streamed over the
/// shared slab-file, exactly the scan
/// [`min_rs_in_memory`](crate::extensions::min_rs_in_memory) performs over
/// its in-memory tuple list.
#[allow(clippy::too_many_arguments)]
fn run_min_rs_group(
    ctx: &EmContext,
    sorted: &TupleFile<ObjectRecord>,
    size: RectSize,
    slab: Interval,
    members: &[usize],
    batch: &QueryBatch,
    opts: &ExactMaxRsOptions,
    meter: Meter,
) -> Result<Vec<MemberOut>> {
    let queries = &batch.queries;
    let domain_of = |i: usize| match queries[i] {
        Query::MinRs { domain, .. } => domain,
        _ => unreachable!("MinRS groups hold MinRS queries"),
    };
    if sorted.is_empty() {
        return Ok(members
            .iter()
            .map(|&i| {
                let domain = domain_of(i);
                MemberOut {
                    index: i,
                    answer: QueryAnswer::MinRs(MaxRsResult {
                        center: domain.center(),
                        total_weight: 0.0,
                        region: domain,
                    }),
                    io: IoSnapshot::default(),
                }
            })
            .collect());
    }

    let pass = SweepPass::presorted(ctx, opts)
        .with_weight_scale(-1.0)
        .with_root(slab);
    // The shared phase — negated transform + sweep — charged to the leader.
    let (slab_file, shared_io) = measured(ctx, meter, || pass.slab_file(sorted, size))?;

    // Per-member strip scans over the shared slab-file.
    let mut scans: Vec<(usize, Option<MinStrip>, IoSnapshot)> = Vec::with_capacity(members.len());
    let mut scan_err = None;
    for &i in members {
        let domain = domain_of(i);
        let scanned = measured(ctx, meter, || {
            let mut reader = ctx.open_reader(&slab_file);
            let tuples = std::iter::from_fn(|| match reader.next_record() {
                Ok(Some(t)) => Some(Ok(t)),
                Ok(None) => None,
                Err(e) => Some(Err(e.into())),
            });
            min_strip_scan(tuples, slab, domain)
        });
        match scanned {
            Ok((best, io)) => scans.push((i, best, io)),
            Err(e) => {
                scan_err = Some(e);
                break;
            }
        }
    }
    // Delete the slab file before propagating a scan error so a failed query
    // leaves no orphans on a long-lived context.
    ctx.delete_file(slab_file)?;
    if let Some(e) = scan_err {
        return Err(e);
    }

    let mut out = Vec::with_capacity(scans.len());
    let mut shared_io = Some(shared_io);
    for (i, best, scan_io) in scans {
        let domain = domain_of(i);
        let (result, finalize_io) = measured(ctx, meter, || {
            finalize_min_rs(ctx, sorted, size, slab, domain, best)
        })?;
        out.push(MemberOut {
            index: i,
            answer: QueryAnswer::MinRs(result),
            io: scan_io + finalize_io + shared_io.take().unwrap_or_default(),
        });
    }
    Ok(out)
}

/// Converts a member's winning strip into the canonical MinRS answer
/// (widening sweep cells back to full arrangement cells of the domain slab).
fn finalize_min_rs(
    ctx: &EmContext,
    objects: &TupleFile<ObjectRecord>,
    size: RectSize,
    slab: Interval,
    domain: Rect,
    best: Option<MinStrip>,
) -> Result<MaxRsResult> {
    match best {
        None => {
            // Unreachable for a non-degenerate domain (the strips partition
            // the plane, so one of them clips to positive height), but kept
            // as a defensive mirror of the in-memory fallback: evaluate the
            // domain center directly with one scan of the object file.
            let center = domain.center();
            let query_rect = Rect::centered_at(center, size);
            let mut total = 0.0;
            let mut reader = ctx.open_reader(objects);
            while let Some(rec) = reader.next_record()? {
                if query_rect.contains_open(&rec.0.point) {
                    total += rec.0.weight;
                }
            }
            Ok(MaxRsResult {
                center,
                total_weight: total,
                region: domain,
            })
        }
        Some((negated_sum, x, y, from_tuple)) => {
            let x = if from_tuple {
                // Widen the refined cell back to the full arrangement cell of
                // the domain slab (see `crate::sweep`, canonical max-regions).
                let hi = next_breakpoint_after(ctx, objects, size, slab, x.lo)?;
                Interval::new(x.lo, hi.max(x.hi))
            } else {
                x
            };
            let center = Point::new(
                x.representative().clamp(domain.x_lo, domain.x_hi),
                y.representative().clamp(domain.y_lo, domain.y_hi),
            );
            Ok(MaxRsResult {
                center,
                // `0.0 - x` rather than `-x`: an uncovered minimum is +0.0,
                // not the confusing "-0" a plain negation would display
                // (mirrors `min_rs_in_memory`).
                total_weight: 0.0 - negated_sum,
                region: Rect::new(x.lo, x.hi, y.lo, y.hi),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planning_groups_by_sweep_key() {
        let size = RectSize::square(10.0);
        let other = RectSize::square(20.0);
        let domain = Rect::new(0.0, 50.0, 0.0, 50.0);
        let batch = QueryBatch::new(&[
            Query::max_rs(size),
            Query::top_k(size, 3),
            Query::approx_max_crs(10.0),
            Query::max_rs(other),
            Query::min_rs(size, domain),
            Query::min_rs(size, Rect::new(0.0, 50.0, 10.0, 40.0)), // same x-slab
            Query::min_rs(size, Rect::new(5.0, 45.0, 0.0, 50.0)),  // different x-slab
        ])
        .unwrap();
        assert_eq!(batch.len(), 7);
        // {maxrs, topk, crs} @ 10 | maxrs @ 20 | minrs slab [0,50] x2 | minrs slab [5,45]
        assert_eq!(batch.num_groups(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.queries().len(), 7);
    }

    #[test]
    fn degenerate_min_rs_domains_get_singleton_groups() {
        let size = RectSize::square(4.0);
        let point = Rect::new(1.0, 1.0, 2.0, 2.0);
        let batch = QueryBatch::new(&[
            Query::min_rs(size, point),
            Query::min_rs(size, point), // identical, but degenerate: no sharing
        ])
        .unwrap();
        assert_eq!(batch.num_groups(), 2);
    }

    #[test]
    fn empty_batch_is_valid() {
        let batch = QueryBatch::new(&[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.num_groups(), 0);
    }

    #[test]
    fn invalid_queries_fail_planning() {
        assert!(QueryBatch::new(&[Query::MaxRs {
            size: RectSize {
                width: -1.0,
                height: 1.0,
            },
        }])
        .is_err());
    }
}
