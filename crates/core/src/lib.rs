//! # maxrs-core — scalable maximizing range sum in spatial databases
//!
//! This crate implements the algorithms of *"A Scalable Algorithm for
//! Maximizing Range Sum in Spatial Databases"* (Choi, Chung, Tao; PVLDB 5(11),
//! 2012):
//!
//! * [`exact_max_rs`] — **ExactMaxRS**, the external-memory distribution-sweep
//!   algorithm that solves the MaxRS problem in the optimal
//!   `O((N/B) log_{M/B}(N/B))` I/Os,
//! * [`approx_max_crs`] — **ApproxMaxCRS**, the `(1/4)`-approximation for the
//!   circular variant (MaxCRS),
//! * [`max_rs_in_memory`] — the classic in-memory plane sweep, used both as
//!   the recursion base case and as a convenience API for small datasets,
//! * [`exact_max_crs_in_memory`] — the exact MaxCRS reference used to measure
//!   approximation quality (Figure 17 of the paper),
//! * the building blocks (slab partitioning, slab-files, MergeSweep — flat
//!   and pairwise-tree, segment tree, uniform grid) as documented public
//!   modules,
//! * [`MaxRsEngine`] — a facade that auto-selects between the in-memory
//!   sweep, the sequential external sweep and the **parallel slab stage**
//!   from the dataset size, the memory budget and the core count,
//! * [`PreparedDataset`] — sort-once repeated querying: one external x-sort
//!   at [`MaxRsEngine::prepare`] time serves every subsequent [`Query`]
//!   variant sort-free ([`crate::prepared`]),
//! * [`SweepPass`] — the parameterized sweep kernel every strategy and every
//!   query variant instantiates ([`crate::sweep`]),
//! * [`QueryBatch`] / [`PreparedDataset::run_batch`] — batched multi-query
//!   execution: M queries answered in shared sweep passes, grouped by
//!   rectangle size ([`crate::batch`]),
//! * [`ShardedDataset`] / [`MaxRsEngine::prepare_sharded`] — the x-domain
//!   split into balanced shards prepared **concurrently** (each on its own
//!   block device), queries routed to the shards they touch and merged
//!   exactly through the span-event decomposition ([`crate::shard`]).
//!
//! The external-memory algorithms run against a [`maxrs_em::EmContext`], which
//! simulates a block device with a bounded buffer pool and counts every block
//! transfer — the paper's performance metric.
//!
//! ## The engine
//!
//! Most callers only need [`MaxRsEngine`]:
//!
//! ```
//! use maxrs_core::{EngineOptions, ExactMaxRsOptions, ExecutionStrategy, MaxRsEngine};
//! use maxrs_em::EmConfig;
//! use maxrs_geometry::{RectSize, WeightedPoint};
//!
//! // A tight memory budget so even a small dataset must go external.
//! let engine = MaxRsEngine::with_options(EngineOptions {
//!     em_config: EmConfig::new(512, 16 * 512).unwrap(),
//!     exact: ExactMaxRsOptions::default(),
//!     force_strategy: None,
//! });
//!
//! let objects: Vec<WeightedPoint> = (0..500)
//!     .map(|i| WeightedPoint::unit((i % 50) as f64 * 10.0, (i / 50) as f64 * 10.0))
//!     .collect();
//! let run = engine.solve(&objects, RectSize::square(25.0)).unwrap();
//!
//! // 500 rectangles exceed M here, so the engine picked an external strategy
//! // and did real (simulated) I/O; the answer matches the in-memory sweep.
//! assert_ne!(run.strategy, ExecutionStrategy::InMemory);
//! assert!(run.io.total() > 0);
//! let reference = maxrs_core::max_rs_in_memory(&objects, RectSize::square(25.0));
//! assert_eq!(run.result.total_weight, reference.total_weight);
//! ```
//!
//! ## Quick start
//!
//! ```
//! use maxrs_core::{exact_max_rs_from_objects, max_rs_in_memory, ExactMaxRsOptions};
//! use maxrs_em::{EmConfig, EmContext};
//! use maxrs_geometry::{RectSize, WeightedPoint};
//!
//! let objects = vec![
//!     WeightedPoint::unit(1.0, 1.0),
//!     WeightedPoint::unit(1.5, 1.2),
//!     WeightedPoint::unit(9.0, 9.0),
//! ];
//! // Small data: in-memory sweep.
//! let quick = max_rs_in_memory(&objects, RectSize::square(2.0));
//! assert_eq!(quick.total_weight, 2.0);
//!
//! // Same answer through the external-memory pipeline.
//! let ctx = EmContext::new(EmConfig::paper_synthetic());
//! let external = exact_max_rs_from_objects(
//!     &ctx,
//!     &objects,
//!     RectSize::square(2.0),
//!     &ExactMaxRsOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(external.total_weight, 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod crs_exact;
pub mod delta;
pub mod engine;
mod error;
pub mod events;
pub mod exact;
pub mod extensions;
pub mod frontier;
pub mod grid;
pub mod merge_sweep;
pub mod parallel;
pub mod plane_sweep;
pub mod prepared;
pub mod query;
pub mod records;
pub mod reference;
mod result;
pub mod segment_tree;
pub mod shard;
pub mod slab;
pub mod sweep;

pub use approx::approx_max_crs_presorted;
pub use approx::{
    approx_max_crs, approx_max_crs_from_objects, approx_max_crs_in_memory, best_candidate,
    candidate_points, evaluate_candidates, ApproxMaxCrsOptions, SIGMA_FRACTION_LO,
};
pub use batch::QueryBatch;
pub use crs_exact::{closed_disk_weight, exact_max_crs_in_memory};
pub use delta::{CompactionPolicy, CompactionReport, DeltaDataset, DeltaOptions};
pub use engine::{EngineOptions, EngineRun, ExecutionStrategy, MaxRsEngine};
pub use error::{CoreError, EngineError, Result};
pub use events::{
    total_order_bits, validate_object, Event, EventError, EventOutcome, EventReport, LiveRecord,
    LiveSet,
};
pub use exact::{
    exact_max_rs, exact_max_rs_from_objects, load_objects, sort_objects_by_x, ExactMaxRsOptions,
};
pub use extensions::{
    max_k_rs_in_memory, min_range_sum, min_rs_in_memory, min_strip_scan, MinStrip,
};
pub use frontier::{FrontierCursor, FrontierMap};
pub use grid::{grid_cell, UniformGrid, GRID_CELL_LIMIT};
pub use merge_sweep::{merge_sweep, merge_sweep_tree};
pub use parallel::{available_parallelism, parallel_map};
pub use plane_sweep::{
    best_region_from_tuples, max_rs_in_memory, plane_sweep_slab, transform_objects, SweepScratch,
};
pub use prepared::PreparedDataset;
pub use query::{Query, QueryAnswer, QueryRun};
pub use records::{ObjectRecord, RectRecord, SlabTuple, SpanEvent};
pub use reference::{brute_force_max_crs, brute_force_max_rs, circle_objective, rect_objective};
pub use result::{MaxCrsResult, MaxRsResult};
pub use segment_tree::SegmentTree;
pub use shard::{prepare_shard, select_shard_boundaries, shard_slab, ShardLayout, ShardedDataset};
pub use slab::{compute_partition, distribute, BoundarySource, Distribution, SlabPartition};
pub use sweep::{
    extract_best, next_breakpoint_after, solve_rects, transform_to_rect_file,
    transform_to_scaled_rect_file, InputOrder, SweepPass,
};
