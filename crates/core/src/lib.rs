//! # maxrs-core — scalable maximizing range sum in spatial databases
//!
//! This crate implements the algorithms of *"A Scalable Algorithm for
//! Maximizing Range Sum in Spatial Databases"* (Choi, Chung, Tao; PVLDB 5(11),
//! 2012):
//!
//! * [`exact_max_rs`] — **ExactMaxRS**, the external-memory distribution-sweep
//!   algorithm that solves the MaxRS problem in the optimal
//!   `O((N/B) log_{M/B}(N/B))` I/Os,
//! * [`approx_max_crs`] — **ApproxMaxCRS**, the `(1/4)`-approximation for the
//!   circular variant (MaxCRS),
//! * [`max_rs_in_memory`] — the classic in-memory plane sweep, used both as
//!   the recursion base case and as a convenience API for small datasets,
//! * [`exact_max_crs_in_memory`] — the exact MaxCRS reference used to measure
//!   approximation quality (Figure 17 of the paper),
//! * the building blocks (slab partitioning, slab-files, MergeSweep, segment
//!   tree, uniform grid) as documented public modules.
//!
//! The external-memory algorithms run against a [`maxrs_em::EmContext`], which
//! simulates a block device with a bounded buffer pool and counts every block
//! transfer — the paper's performance metric.
//!
//! ## Quick start
//!
//! ```
//! use maxrs_core::{exact_max_rs_from_objects, max_rs_in_memory, ExactMaxRsOptions};
//! use maxrs_em::{EmConfig, EmContext};
//! use maxrs_geometry::{RectSize, WeightedPoint};
//!
//! let objects = vec![
//!     WeightedPoint::unit(1.0, 1.0),
//!     WeightedPoint::unit(1.5, 1.2),
//!     WeightedPoint::unit(9.0, 9.0),
//! ];
//! // Small data: in-memory sweep.
//! let quick = max_rs_in_memory(&objects, RectSize::square(2.0));
//! assert_eq!(quick.total_weight, 2.0);
//!
//! // Same answer through the external-memory pipeline.
//! let ctx = EmContext::new(EmConfig::paper_synthetic());
//! let external = exact_max_rs_from_objects(
//!     &ctx,
//!     &objects,
//!     RectSize::square(2.0),
//!     &ExactMaxRsOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(external.total_weight, 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod crs_exact;
mod error;
pub mod exact;
pub mod extensions;
pub mod grid;
pub mod merge_sweep;
pub mod plane_sweep;
pub mod records;
pub mod reference;
mod result;
pub mod segment_tree;
pub mod slab;

pub use approx::{approx_max_crs, approx_max_crs_from_objects, candidate_points, ApproxMaxCrsOptions};
pub use crs_exact::{closed_disk_weight, exact_max_crs_in_memory};
pub use error::{CoreError, Result};
pub use exact::{
    exact_max_rs, exact_max_rs_from_objects, load_objects, transform_to_rect_file,
    ExactMaxRsOptions,
};
pub use extensions::{max_k_rs_in_memory, min_range_sum, min_rs_in_memory};
pub use grid::UniformGrid;
pub use merge_sweep::merge_sweep;
pub use plane_sweep::{
    best_region_from_tuples, max_rs_in_memory, plane_sweep_slab, transform_objects,
};
pub use records::{ObjectRecord, RectRecord, SlabTuple, SpanEvent};
pub use reference::{brute_force_max_crs, brute_force_max_rs, circle_objective, rect_objective};
pub use result::{MaxCrsResult, MaxRsResult};
pub use segment_tree::SegmentTree;
pub use slab::{compute_partition, distribute, BoundarySource, Distribution, SlabPartition};
