//! Extensions sketched in the paper's future-work section (Section 8):
//! *"it will be naturally feasible to extend our algorithm to deal with the
//! MaxkRS problem or MinRS problem"*.
//!
//! * [`max_k_rs_in_memory`] — **MaxkRS**: report `k` pairwise non-overlapping
//!   placements in decreasing order of covered weight, via the standard greedy
//!   reduction (solve MaxRS, remove the covered objects, repeat).  Greedy is
//!   the baseline the MaxkRS follow-up literature compares against; each
//!   reported placement is optimal for the objects remaining at its turn.
//! * [`min_rs_in_memory`] — **MinRS**: the placement covering the *least*
//!   weight (e.g. the quietest spot).  Solved by negating the weights and
//!   running the very same sweep: `min Σw = −max Σ(−w)`.
//!
//! Both extensions reuse the plane-sweep machinery unchanged, which is exactly
//! the point the authors make; external-memory versions follow by swapping the
//! in-memory sweep for [`crate::exact_max_rs`] in the same way.

use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::plane_sweep::{max_rs_in_memory, plane_sweep_slab};
use crate::records::RectRecord;
use crate::result::MaxRsResult;

/// Greedy MaxkRS: up to `k` non-overlapping placements, best first.
///
/// After each round the objects covered by the chosen rectangle are removed,
/// so later placements never re-count them; rounds stop early once no object
/// remains.  Ties follow the underlying MaxRS tie-breaking (leftmost /
/// bottom-most max-region).
pub fn max_k_rs_in_memory(
    objects: &[WeightedPoint],
    size: RectSize,
    k: usize,
) -> Vec<MaxRsResult> {
    let mut remaining: Vec<WeightedPoint> = objects.to_vec();
    let mut results = Vec::with_capacity(k);
    for _ in 0..k {
        if remaining.is_empty() {
            break;
        }
        let best = max_rs_in_memory(&remaining, size);
        if best.total_weight <= 0.0 {
            break;
        }
        let chosen = Rect::centered_at(best.center, size);
        remaining.retain(|o| !chosen.contains_open(&o.point));
        results.push(best);
    }
    results
}

/// MinRS: among all centers inside the closed `domain` rectangle, a placement
/// whose (open) query rectangle covers the minimum total weight.
///
/// Unlike MaxRS, the unconstrained minimum is trivially 0 (place the rectangle
/// in empty space), so MinRS is parameterized by the region of admissible
/// centers — e.g. the downtown area in which the new facility must lie.  The
/// returned center is an interior point of a cell of minimum location-weight
/// clamped to the domain, mirroring the MaxRS guarantees.
pub fn min_rs_in_memory(objects: &[WeightedPoint], size: RectSize, domain: Rect) -> MaxRsResult {
    let empty_result = || MaxRsResult {
        center: domain.center(),
        total_weight: 0.0,
        region: domain,
    };
    if objects.is_empty() {
        return empty_result();
    }
    // Sweep the x-range of the domain only, on negated weights: the maximum of
    // the negated instance is the negated minimum of the original one.
    // RectRecord weights may be negative (only WeightedPoint insists on
    // non-negativity), so the sweep is reused verbatim.
    let rects: Vec<RectRecord> = objects
        .iter()
        .map(|o| RectRecord::new(o.to_rect(size), -o.weight))
        .collect();
    let slab = Interval::new(domain.x_lo, domain.x_hi);
    let tuples = plane_sweep_slab(&rects, slab);

    // Scan the strips that intersect the domain's y-range, including the
    // implicit weight-0 strip below the first h-line.
    let mut best: Option<(f64, Interval, Interval)> = None; // (negated sum, x, y)
    let mut consider = |sum: f64, x: Interval, y_lo: f64, y_hi: f64| {
        let y_lo = y_lo.max(domain.y_lo);
        let y_hi = y_hi.min(domain.y_hi);
        if y_lo >= y_hi {
            // Only strips of positive height keep the "center achieves the
            // reported weight" guarantee.
            return;
        }
        if best.as_ref().is_none_or(|(b, _, _)| sum > *b) {
            best = Some((sum, x, Interval::new(y_lo, y_hi)));
        }
    };
    let mut prev_y = f64::NEG_INFINITY;
    let mut prev: Option<(f64, Interval)> = Some((0.0, slab));
    for t in &tuples {
        if let Some((sum, x)) = prev {
            consider(sum, x, prev_y, t.y);
        }
        prev_y = t.y;
        prev = Some((t.sum, t.interval()));
    }
    if let Some((sum, x)) = prev {
        consider(sum, x, prev_y, f64::INFINITY);
    }

    match best {
        None => {
            // Degenerate domain (zero height/width): evaluate its center directly.
            let center = domain.center();
            MaxRsResult {
                center,
                total_weight: maxrs_geometry::range_sum_rect(objects, center, size),
                region: domain,
            }
        }
        Some((negated_sum, x, y)) => {
            let center = Point::new(
                x.representative().clamp(domain.x_lo, domain.x_hi),
                y.representative().clamp(domain.y_lo, domain.y_hi),
            );
            MaxRsResult {
                center,
                total_weight: -negated_sum,
                region: Rect::new(x.lo, x.hi, y.lo, y.hi),
            }
        }
    }
}

/// Convenience: the minimum range sum value over the domain only.
pub fn min_range_sum(objects: &[WeightedPoint], size: RectSize, domain: Rect) -> f64 {
    min_rs_in_memory(objects, size, domain).total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::rect_objective;

    fn units(points: &[(f64, f64)]) -> Vec<WeightedPoint> {
        points.iter().map(|&(x, y)| WeightedPoint::unit(x, y)).collect()
    }

    #[test]
    fn max_k_rs_reports_disjoint_clusters_in_order() {
        // Three clusters of sizes 4, 3 and 2, far apart.
        let mut objects = units(&[
            (0.0, 0.0),
            (0.5, 0.5),
            (0.2, 0.8),
            (0.8, 0.1),
            (50.0, 50.0),
            (50.5, 50.5),
            (50.2, 50.8),
            (100.0, 0.0),
            (100.5, 0.5),
        ]);
        objects.push(WeightedPoint::unit(200.0, 200.0)); // singleton
        let size = RectSize::square(3.0);
        let top = max_k_rs_in_memory(&objects, size, 3);
        assert_eq!(top.len(), 3);
        let weights: Vec<f64> = top.iter().map(|r| r.total_weight).collect();
        assert_eq!(weights, vec![4.0, 3.0, 2.0]);
        // Placements must be pairwise non-overlapping.
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let a = Rect::centered_at(top[i].center, size);
                let b = Rect::centered_at(top[j].center, size);
                assert!(!a.overlaps_open(&b), "placements {i} and {j} overlap");
            }
        }
        // Each reported weight is achieved by its center on the full dataset
        // minus the previously covered objects, and trivially bounded by the
        // single-shot optimum.
        assert_eq!(rect_objective(&objects, top[0].center, size), 4.0);
    }

    #[test]
    fn max_k_rs_stops_when_objects_run_out() {
        let objects = units(&[(0.0, 0.0), (0.2, 0.2)]);
        let top = max_k_rs_in_memory(&objects, RectSize::square(1.0), 10);
        assert_eq!(top.len(), 1, "one placement covers everything");
        assert_eq!(top[0].total_weight, 2.0);
        assert!(max_k_rs_in_memory(&[], RectSize::square(1.0), 5).is_empty());
        assert!(max_k_rs_in_memory(&objects, RectSize::square(1.0), 0).is_empty());
    }

    #[test]
    fn min_rs_finds_an_empty_spot_when_one_exists() {
        let objects = units(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let domain = Rect::new(-5.0, 5.0, -5.0, 5.0);
        let r = min_rs_in_memory(&objects, RectSize::square(1.0), domain);
        assert_eq!(r.total_weight, 0.0);
        assert_eq!(rect_objective(&objects, r.center, RectSize::square(1.0)), 0.0);
        assert!(domain.contains_closed(&r.center));
        assert_eq!(min_range_sum(&objects, RectSize::square(1.0), domain), 0.0);
    }

    #[test]
    fn min_rs_in_a_crowded_space() {
        // A 10x10 grid of unit objects with one heavier corner; a 3x3 window
        // centered well inside the grid always covers something, and the
        // minimum avoids the heavy corner.
        let mut objects = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let w = if i < 2 && j < 2 { 5.0 } else { 1.0 };
                objects.push(WeightedPoint::at(i as f64, j as f64, w));
            }
        }
        let size = RectSize::square(3.1);
        let domain = Rect::new(2.0, 7.0, 2.0, 7.0);
        let r = min_rs_in_memory(&objects, size, domain);
        assert!(r.total_weight >= 1.0, "interior windows always cover objects");
        assert_eq!(rect_objective(&objects, r.center, size), r.total_weight);
        assert!(domain.contains_closed(&r.center));
        // The minimum must not sit on the heavy corner.
        assert!(r.total_weight < 5.0 + 9.0);
        // Brute-force cross check over a fine probe grid inside the domain.
        let mut best = f64::INFINITY;
        for cx in 0..=20 {
            for cy in 0..=20 {
                let p = Point::new(2.0 + cx as f64 * 0.25, 2.0 + cy as f64 * 0.25);
                best = best.min(rect_objective(&objects, p, size));
            }
        }
        // The sweep may find an even smaller value than the coarse probe grid,
        // never a larger one.
        assert!(r.total_weight <= best + 1e-9);
    }

    #[test]
    fn min_rs_degenerate_domain_and_empty_input() {
        let domain = Rect::new(-1.0, 1.0, -1.0, 1.0);
        let r = min_rs_in_memory(&[], RectSize::square(2.0), domain);
        assert_eq!(r.total_weight, 0.0);

        // A zero-area domain: the center is evaluated directly.
        let objects = units(&[(0.0, 0.0)]);
        let point_domain = Rect::new(0.0, 0.0, 0.0, 0.0);
        let r = min_rs_in_memory(&objects, RectSize::square(2.0), point_domain);
        assert_eq!(r.center, Point::new(0.0, 0.0));
        assert_eq!(r.total_weight, 1.0);
    }
}
