//! Extensions sketched in the paper's future-work section (Section 8):
//! *"it will be naturally feasible to extend our algorithm to deal with the
//! MaxkRS problem or MinRS problem"*.
//!
//! * [`max_k_rs_in_memory`] — **MaxkRS**: report `k` pairwise non-overlapping
//!   placements in decreasing order of covered weight, via the standard greedy
//!   reduction (solve MaxRS, remove the covered objects, repeat).  Greedy is
//!   the baseline the MaxkRS follow-up literature compares against; each
//!   reported placement is optimal for the objects remaining at its turn.
//! * [`min_rs_in_memory`] — **MinRS**: the placement covering the *least*
//!   weight (e.g. the quietest spot).  Solved by negating the weights and
//!   running the very same sweep: `min Σw = −max Σ(−w)`.
//!
//! Both extensions reuse the plane-sweep machinery unchanged, which is exactly
//! the point the authors make; external-memory versions follow by swapping the
//! in-memory sweep for [`crate::exact_max_rs`] in the same way.

use maxrs_geometry::{Interval, Point, Rect, RectSize, WeightedPoint};

use crate::error::Result;
use crate::plane_sweep::{max_rs_in_memory, plane_sweep_slab};
use crate::records::{RectRecord, SlabTuple};
use crate::result::MaxRsResult;

/// The winning strip of a [`min_strip_scan`]: the (still negated) sum, its
/// x-interval, the domain-clipped y-strip, and whether it came from a tuple
/// (a sweep cell — which the external path must widen back to a full
/// arrangement cell) or from the implicit whole-slab strip.
pub type MinStrip = (f64, Interval, Interval, bool);

/// The MinRS strip scan, shared by [`min_rs_in_memory`] and the engine's
/// external MinRS path so the two can never diverge: walk a y-sorted stream
/// of slab tuples (negated weights), form the strips between consecutive
/// event `y`s — including the implicit weight-0 strip below the first h-line
/// — clip each to the domain's y-range, keep only strips of positive height
/// (interior points must achieve the reported weight), and pick the first
/// strictly-best one.
pub fn min_strip_scan<I>(tuples: I, slab: Interval, domain: Rect) -> Result<Option<MinStrip>>
where
    I: IntoIterator<Item = Result<SlabTuple>>,
{
    let mut best: Option<MinStrip> = None;
    let consider = |sum: f64,
                    x: Interval,
                    y_lo: f64,
                    y_hi: f64,
                    from_tuple: bool,
                    best: &mut Option<MinStrip>| {
        let y_lo = y_lo.max(domain.y_lo);
        let y_hi = y_hi.min(domain.y_hi);
        if y_lo >= y_hi {
            return;
        }
        if best.as_ref().is_none_or(|(b, _, _, _)| sum > *b) {
            *best = Some((sum, x, Interval::new(y_lo, y_hi), from_tuple));
        }
    };
    let mut prev_y = f64::NEG_INFINITY;
    let mut prev: Option<(f64, Interval, bool)> = Some((0.0, slab, false));
    for t in tuples {
        let t = t?;
        if let Some((sum, x, from_tuple)) = prev {
            consider(sum, x, prev_y, t.y, from_tuple, &mut best);
        }
        prev_y = t.y;
        prev = Some((t.sum, t.interval(), true));
    }
    if let Some((sum, x, from_tuple)) = prev {
        consider(sum, x, prev_y, f64::INFINITY, from_tuple, &mut best);
    }
    Ok(best)
}

/// Greedy MaxkRS: up to `k` non-overlapping placements, best first.
///
/// After each round the objects covered by the chosen rectangle are removed,
/// so later placements never re-count them; rounds stop early once no object
/// remains.  Ties follow the underlying MaxRS tie-breaking (leftmost /
/// bottom-most max-region).
pub fn max_k_rs_in_memory(objects: &[WeightedPoint], size: RectSize, k: usize) -> Vec<MaxRsResult> {
    let mut remaining: Vec<WeightedPoint> = objects.to_vec();
    // At most one placement per object exists, so a huge k must not
    // pre-allocate k slots.
    let mut results = Vec::with_capacity(k.min(objects.len()));
    for _ in 0..k {
        if remaining.is_empty() {
            break;
        }
        let best = max_rs_in_memory(&remaining, size);
        if best.total_weight <= 0.0 {
            break;
        }
        let chosen = Rect::centered_at(best.center, size);
        remaining.retain(|o| !chosen.contains_open(&o.point));
        results.push(best);
    }
    results
}

/// MinRS: among all centers inside the closed `domain` rectangle, a placement
/// whose (open) query rectangle covers the minimum total weight.
///
/// Unlike MaxRS, the unconstrained minimum is trivially 0 (place the rectangle
/// in empty space), so MinRS is parameterized by the region of admissible
/// centers — e.g. the downtown area in which the new facility must lie.  The
/// returned center is an interior point of a cell of minimum location-weight
/// clamped to the domain, mirroring the MaxRS guarantees.
///
/// Degenerate domains are answered exactly as well: a point domain evaluates
/// its single admissible center directly, and a zero-width (or zero-height)
/// domain — a *segment* of admissible centers — runs a 1D sweep over the
/// transformed rectangles stabbed by the segment's line.
pub fn min_rs_in_memory(objects: &[WeightedPoint], size: RectSize, domain: Rect) -> MaxRsResult {
    let empty_result = || MaxRsResult {
        center: domain.center(),
        total_weight: 0.0,
        region: domain,
    };
    if objects.is_empty() {
        return empty_result();
    }
    let x_degenerate = domain.x_lo == domain.x_hi;
    let y_degenerate = domain.y_lo == domain.y_hi;
    if x_degenerate && y_degenerate {
        // A point domain: evaluate its only admissible center directly.
        let center = domain.center();
        return MaxRsResult {
            center,
            total_weight: maxrs_geometry::range_sum_rect(objects, center, size),
            region: domain,
        };
    }
    if x_degenerate || y_degenerate {
        // A segment of admissible centers: the 2D sweep's arrangement has no
        // positive-width cell there, so sweep the segment's line directly.
        return min_rs_on_segment(objects, size, domain, x_degenerate);
    }
    // Sweep the x-range of the domain only, on negated weights: the maximum of
    // the negated instance is the negated minimum of the original one.
    // RectRecord weights may be negative (only WeightedPoint insists on
    // non-negativity), so the sweep is reused verbatim.
    let rects: Vec<RectRecord> = objects
        .iter()
        .map(|o| RectRecord::new(o.to_rect(size), -o.weight))
        .collect();
    let slab = Interval::new(domain.x_lo, domain.x_hi);
    let tuples = plane_sweep_slab(&rects, slab);

    // Scan the strips that intersect the domain's y-range, including the
    // implicit weight-0 strip below the first h-line (shared with the
    // engine's external MinRS so the two paths can never diverge).
    let best = min_strip_scan(tuples.into_iter().map(Ok), slab, domain)
        .expect("in-memory tuple stream is infallible");

    match best {
        None => {
            // Unreachable for a non-degenerate domain (the strips partition
            // the plane), kept as a defensive fallback: evaluate the domain
            // center directly.
            let center = domain.center();
            MaxRsResult {
                center,
                total_weight: maxrs_geometry::range_sum_rect(objects, center, size),
                region: domain,
            }
        }
        Some((negated_sum, x, y, _from_tuple)) => {
            let center = Point::new(
                x.representative().clamp(domain.x_lo, domain.x_hi),
                y.representative().clamp(domain.y_lo, domain.y_hi),
            );
            MaxRsResult {
                center,
                // `0.0 - x` rather than `-x`: an uncovered minimum is +0.0,
                // not the confusing "-0" a plain negation would display.
                total_weight: 0.0 - negated_sum,
                region: Rect::new(x.lo, x.hi, y.lo, y.hi),
            }
        }
    }
}

/// MinRS over a degenerate (segment) domain: admissible centers form a
/// vertical (`x_degenerate`) or horizontal segment.  A center `c` covers an
/// object iff the object's transformed rectangle strictly contains `c`, so
/// the coverage along the segment's line is a 1D sum of the open intervals
/// cut out by the rectangles stabbed by that line — swept here directly,
/// with the same first-strictly-smaller tie-breaking and positive-length
/// strip guarantee as the 2D sweep.
fn min_rs_on_segment(
    objects: &[WeightedPoint],
    size: RectSize,
    domain: Rect,
    x_degenerate: bool,
) -> MaxRsResult {
    let (line, segment) = if x_degenerate {
        (domain.x_lo, Interval::new(domain.y_lo, domain.y_hi))
    } else {
        (domain.y_lo, Interval::new(domain.x_lo, domain.x_hi))
    };
    // (coordinate along the segment, weight delta) per stabbed rectangle.
    let mut events: Vec<(f64, f64)> = Vec::new();
    for o in objects {
        let r = o.to_rect(size);
        let (stab_lo, stab_hi, lo, hi) = if x_degenerate {
            (r.x_lo, r.x_hi, r.y_lo, r.y_hi)
        } else {
            (r.y_lo, r.y_hi, r.x_lo, r.x_hi)
        };
        if stab_lo < line && line < stab_hi {
            events.push((lo, o.weight));
            events.push((hi, -o.weight));
        }
    }
    events.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    let mut best: Option<(f64, Interval)> = None;
    let consider = |sum: f64, lo: f64, hi: f64, best: &mut Option<(f64, Interval)>| {
        let lo = lo.max(segment.lo);
        let hi = hi.min(segment.hi);
        if lo >= hi {
            return;
        }
        if best.as_ref().is_none_or(|(b, _)| sum < *b) {
            *best = Some((sum, Interval::new(lo, hi)));
        }
    };
    let mut current = 0.0;
    let mut prev = f64::NEG_INFINITY;
    let mut i = 0;
    while i < events.len() {
        let at = events[i].0;
        consider(current, prev, at, &mut best);
        while i < events.len() && events[i].0 == at {
            current += events[i].1;
            i += 1;
        }
        prev = at;
    }
    consider(current, prev, f64::INFINITY, &mut best);

    // The strips partition the line and the segment has positive length, so
    // at least one clipped strip survives.
    let (sum, strip) = best.expect("a positive-length segment intersects some strip");
    let along = strip.representative().clamp(segment.lo, segment.hi);
    let (center, region) = if x_degenerate {
        (
            Point::new(line, along),
            Rect::new(line, line, strip.lo, strip.hi),
        )
    } else {
        (
            Point::new(along, line),
            Rect::new(strip.lo, strip.hi, line, line),
        )
    };
    MaxRsResult {
        center,
        total_weight: sum,
        region,
    }
}

/// Convenience: the minimum range sum value over the domain only.
pub fn min_range_sum(objects: &[WeightedPoint], size: RectSize, domain: Rect) -> f64 {
    min_rs_in_memory(objects, size, domain).total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::rect_objective;

    fn units(points: &[(f64, f64)]) -> Vec<WeightedPoint> {
        points
            .iter()
            .map(|&(x, y)| WeightedPoint::unit(x, y))
            .collect()
    }

    #[test]
    fn max_k_rs_reports_disjoint_clusters_in_order() {
        // Three clusters of sizes 4, 3 and 2, far apart.
        let mut objects = units(&[
            (0.0, 0.0),
            (0.5, 0.5),
            (0.2, 0.8),
            (0.8, 0.1),
            (50.0, 50.0),
            (50.5, 50.5),
            (50.2, 50.8),
            (100.0, 0.0),
            (100.5, 0.5),
        ]);
        objects.push(WeightedPoint::unit(200.0, 200.0)); // singleton
        let size = RectSize::square(3.0);
        let top = max_k_rs_in_memory(&objects, size, 3);
        assert_eq!(top.len(), 3);
        let weights: Vec<f64> = top.iter().map(|r| r.total_weight).collect();
        assert_eq!(weights, vec![4.0, 3.0, 2.0]);
        // Placements must be pairwise non-overlapping.
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let a = Rect::centered_at(top[i].center, size);
                let b = Rect::centered_at(top[j].center, size);
                assert!(!a.overlaps_open(&b), "placements {i} and {j} overlap");
            }
        }
        // Each reported weight is achieved by its center on the full dataset
        // minus the previously covered objects, and trivially bounded by the
        // single-shot optimum.
        assert_eq!(rect_objective(&objects, top[0].center, size), 4.0);
    }

    #[test]
    fn max_k_rs_stops_when_objects_run_out() {
        let objects = units(&[(0.0, 0.0), (0.2, 0.2)]);
        let top = max_k_rs_in_memory(&objects, RectSize::square(1.0), 10);
        assert_eq!(top.len(), 1, "one placement covers everything");
        assert_eq!(top[0].total_weight, 2.0);
        assert!(max_k_rs_in_memory(&[], RectSize::square(1.0), 5).is_empty());
        assert!(max_k_rs_in_memory(&objects, RectSize::square(1.0), 0).is_empty());
    }

    #[test]
    fn min_rs_finds_an_empty_spot_when_one_exists() {
        let objects = units(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let domain = Rect::new(-5.0, 5.0, -5.0, 5.0);
        let r = min_rs_in_memory(&objects, RectSize::square(1.0), domain);
        assert_eq!(r.total_weight, 0.0);
        assert_eq!(
            rect_objective(&objects, r.center, RectSize::square(1.0)),
            0.0
        );
        assert!(domain.contains_closed(&r.center));
        assert_eq!(min_range_sum(&objects, RectSize::square(1.0), domain), 0.0);
    }

    #[test]
    fn min_rs_in_a_crowded_space() {
        // A 10x10 grid of unit objects with one heavier corner; a 3x3 window
        // centered well inside the grid always covers something, and the
        // minimum avoids the heavy corner.
        let mut objects = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let w = if i < 2 && j < 2 { 5.0 } else { 1.0 };
                objects.push(WeightedPoint::at(i as f64, j as f64, w));
            }
        }
        let size = RectSize::square(3.1);
        let domain = Rect::new(2.0, 7.0, 2.0, 7.0);
        let r = min_rs_in_memory(&objects, size, domain);
        assert!(
            r.total_weight >= 1.0,
            "interior windows always cover objects"
        );
        assert_eq!(rect_objective(&objects, r.center, size), r.total_weight);
        assert!(domain.contains_closed(&r.center));
        // The minimum must not sit on the heavy corner.
        assert!(r.total_weight < 5.0 + 9.0);
        // Brute-force cross check over a fine probe grid inside the domain.
        let mut best = f64::INFINITY;
        for cx in 0..=20 {
            for cy in 0..=20 {
                let p = Point::new(2.0 + cx as f64 * 0.25, 2.0 + cy as f64 * 0.25);
                best = best.min(rect_objective(&objects, p, size));
            }
        }
        // The sweep may find an even smaller value than the coarse probe grid,
        // never a larger one.
        assert!(r.total_weight <= best + 1e-9);
    }

    #[test]
    fn max_k_rs_with_k_beyond_the_candidate_count_returns_what_exists() {
        // Three well-separated singletons, k = 10: exactly three placements
        // come back, each of weight 1, pairwise disjoint.
        let objects = units(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]);
        let size = RectSize::square(2.0);
        let top = max_k_rs_in_memory(&objects, size, 10);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|r| r.total_weight == 1.0));
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                let a = Rect::centered_at(top[i].center, size);
                let b = Rect::centered_at(top[j].center, size);
                assert!(!a.overlaps_open(&b));
            }
        }
    }

    #[test]
    fn max_k_rs_with_zero_total_weight_stops_immediately() {
        // Weight 0 is the smallest weight `WeightedPoint` admits (negative
        // object weights are rejected by its constructor); a zero-weight
        // placement is "no placement" and the greedy loop must not spin on it.
        let objects: Vec<WeightedPoint> = (0..5)
            .map(|i| WeightedPoint::at(i as f64, 0.0, 0.0))
            .collect();
        assert!(max_k_rs_in_memory(&objects, RectSize::square(1.0), 3).is_empty());
    }

    #[test]
    fn max_k_rs_breaks_weight_ties_deterministically_leftmost_first() {
        // Two clusters of identical weight at the same y: the sweep reports
        // the leftmost max-interval first, so round 1 must pick the left
        // cluster and round 2 the right one — on every run.
        let objects = units(&[(0.0, 0.0), (0.5, 0.5), (100.0, 0.0), (100.5, 0.5)]);
        let size = RectSize::square(2.0);
        let first = max_k_rs_in_memory(&objects, size, 2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].total_weight, 2.0);
        assert_eq!(first[1].total_weight, 2.0);
        assert!(
            first[0].center.x < 50.0,
            "tie must resolve to the left cluster"
        );
        assert!(first[1].center.x > 50.0);
        for _ in 0..3 {
            assert_eq!(max_k_rs_in_memory(&objects, size, 2), first);
        }
    }

    #[test]
    fn negative_rect_weights_flow_through_the_sweep() {
        // The MinRS reduction feeds negative weights into the plane sweep
        // (only `WeightedPoint` insists on non-negativity).  With every
        // rectangle weight negative the best location-weight is 0: an empty
        // cell beats any covered one.
        use crate::plane_sweep::{best_region_from_tuples, plane_sweep_slab};
        let rects = vec![
            RectRecord::new(Rect::new(0.0, 2.0, 0.0, 2.0), -1.0),
            RectRecord::new(Rect::new(1.0, 3.0, 1.0, 3.0), -2.5),
        ];
        // Unbounded slab: an uncovered cell always exists, so the per-strip
        // maximum never drops below 0 and the best region has weight 0.
        let tuples = plane_sweep_slab(&rects, Interval::UNBOUNDED);
        let best = best_region_from_tuples(&tuples).unwrap();
        assert_eq!(best.total_weight, 0.0);
        assert!(tuples.iter().all(|t| t.sum <= 0.0));
        // Slab [1, 2] is covered by both rectangles between y = 1 and 2: the
        // most negative stack (-3.5) is now unavoidable there.
        let tuples = plane_sweep_slab(&rects, Interval::new(1.0, 2.0));
        let sums: Vec<f64> = tuples.iter().map(|t| t.sum).collect();
        assert_eq!(sums, vec![-1.0, -3.5, -2.5, 0.0]);
    }

    #[test]
    fn min_rs_reports_positive_zero_and_breaks_ties_deterministically() {
        let objects = units(&[(0.0, 0.0), (10.0, 10.0)]);
        let domain = Rect::new(-20.0, 20.0, -20.0, 20.0);
        let r = min_rs_in_memory(&objects, RectSize::square(1.0), domain);
        // The uncovered minimum is +0.0, not -0.0 (the sweep negates weights).
        assert_eq!(r.total_weight.to_bits(), 0.0f64.to_bits());
        // Many strips tie at 0; repeated runs must agree exactly.
        for _ in 0..3 {
            assert_eq!(min_rs_in_memory(&objects, RectSize::square(1.0), domain), r);
        }
    }

    #[test]
    fn min_rs_with_all_zero_weights_is_zero_everywhere() {
        let objects: Vec<WeightedPoint> = (0..9)
            .map(|i| WeightedPoint::at((i % 3) as f64, (i / 3) as f64, 0.0))
            .collect();
        let domain = Rect::new(0.0, 2.0, 0.0, 2.0);
        let r = min_rs_in_memory(&objects, RectSize::square(1.5), domain);
        assert_eq!(r.total_weight, 0.0);
        assert!(domain.contains_closed(&r.center));
    }

    #[test]
    fn min_rs_segment_domains_count_coverage_correctly() {
        // One object at the origin, 2x2 query: every center on the vertical
        // segment x = 0, y in [-0.5, 0.5] strictly covers it, so the minimum
        // is 1 — not the 0 a naive "no positive-width cell" answer would give.
        let objects = units(&[(0.0, 0.0)]);
        let size = RectSize::square(2.0);
        let vertical = Rect::new(0.0, 0.0, -0.5, 0.5);
        let r = min_rs_in_memory(&objects, size, vertical);
        assert_eq!(r.total_weight, 1.0);
        assert!(vertical.contains_closed(&r.center));
        assert_eq!(rect_objective(&objects, r.center, size), 1.0);
        // Same along a horizontal segment.
        let horizontal = Rect::new(-0.5, 0.5, 0.0, 0.0);
        let r = min_rs_in_memory(&objects, size, horizontal);
        assert_eq!(r.total_weight, 1.0);

        // A longer segment that leaves the object's influence: the sweep must
        // find the uncovered part (centers with y >= 1 no longer cover it).
        let long = Rect::new(0.0, 0.0, -0.5, 5.0);
        let r = min_rs_in_memory(&objects, size, long);
        assert_eq!(r.total_weight, 0.0);
        assert_eq!(rect_objective(&objects, r.center, size), 0.0);

        // Two objects with a gap: the segment sweep finds the dip between
        // them (centers near y = 0 cover neither object strictly... the gap
        // around y = 3 covers only what the objective confirms).
        let objects = units(&[(0.0, 0.0), (0.0, 6.0)]);
        let segment = Rect::new(0.0, 0.0, 0.0, 6.0);
        let r = min_rs_in_memory(&objects, size, segment);
        assert_eq!(r.total_weight, 0.0, "centers around y = 3 cover neither");
        assert_eq!(rect_objective(&objects, r.center, size), r.total_weight);
    }

    #[test]
    fn min_rs_degenerate_domain_and_empty_input() {
        let domain = Rect::new(-1.0, 1.0, -1.0, 1.0);
        let r = min_rs_in_memory(&[], RectSize::square(2.0), domain);
        assert_eq!(r.total_weight, 0.0);

        // A zero-area domain: the center is evaluated directly.
        let objects = units(&[(0.0, 0.0)]);
        let point_domain = Rect::new(0.0, 0.0, 0.0, 0.0);
        let r = min_rs_in_memory(&objects, RectSize::square(2.0), point_domain);
        assert_eq!(r.center, Point::new(0.0, 0.0));
        assert_eq!(r.total_weight, 1.0);
    }
}
