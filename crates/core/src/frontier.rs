//! Locality-aware ordered map for sweep frontiers.
//!
//! Every sweep-shaped structure in this workspace — the stream engine's
//! per-cell caches, the delta-main index, the candidate heaps — walks its
//! keys in order and touches, with overwhelming probability, a key *adjacent*
//! to the last one it touched.  `std::collections::BTreeMap` answers each of
//! those probes with a full root-to-leaf descent through pointer-chased
//! nodes.  [`FrontierMap`] is a drop-in ordered map tuned for exactly this
//! access pattern:
//!
//! * **Flat `Vec`-backed nodes.**  All B+-tree nodes live in one arena
//!   (`Vec<Node>`), addressed by `u32` ids with a free list, so the tree is a
//!   few contiguous allocations instead of one allocation per node.
//! * **Last-accessed-leaf cache.**  The map remembers the leaf it last
//!   touched; a probe whose key falls inside that leaf's occupied key range
//!   (or extends the map at either end) skips the descent entirely.  This is
//!   the `sweep-bptree` technique: sequential and local workloads hit the
//!   cache almost always.
//! * **Owned cursors.**  [`FrontierCursor`] walks entries through the leaf
//!   linked list (`advance` / `prev`) in O(1) amortized per step, replacing
//!   the repeated `range(..)` re-probes a `BTreeMap` frontier needs.
//! * **Bulk load.**  [`FrontierMap::bulk_load`] packs sorted input straight
//!   into leaves bottom-up, O(n), without per-key descents.
//!
//! Keys must be `Copy + Ord`.  Float keys are used through the total-order
//! bit trick ([`crate::events::total_order_bits`]), which is `NaN`-free and
//! order-preserving for every value the sweep produces.

use std::fmt;

/// Maximum entries per leaf node.
const LEAF_CAP: usize = 32;
/// Minimum entries per non-root leaf (rebalance below this).
const LEAF_MIN: usize = LEAF_CAP / 2;
/// Maximum children per inner node.
const INNER_CAP: usize = 16;
/// Minimum children per non-root inner node.
const INNER_MIN: usize = INNER_CAP / 2;
/// Sentinel id for "no node".
const NONE_ID: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        prev: u32,
        next: u32,
    },
    Inner {
        /// `seps.len() == children.len() - 1`; keys `>= seps[i]` route to
        /// `children[i + 1]`.
        seps: Vec<K>,
        children: Vec<u32>,
    },
    Free {
        next_free: u32,
        /// Retired leaf buffers, kept (cleared, capacity intact) so the next
        /// split reuses them instead of round-tripping the allocator.
        keys: Vec<K>,
        vals: Vec<V>,
    },
}

/// A locality-aware ordered map over flat `Vec`-backed B+-tree nodes.
///
/// See the [module docs](crate::frontier) for the design.  The public API is
/// the `BTreeMap` slice the sweep structures use — `insert` / `remove` /
/// `get` / ordered iteration — plus cursors ([`FrontierMap::cursor_first`],
/// [`FrontierMap::seek`], [`FrontierMap::seek_gt`]) and
/// [`FrontierMap::bulk_load`].
#[derive(Clone)]
pub struct FrontierMap<K, V> {
    nodes: Vec<Node<K, V>>,
    root: u32,
    len: usize,
    free: u32,
    /// Last-accessed leaf hint; validated against the leaf's current occupied
    /// key range before every use, so a stale hint is a miss, never an error.
    hot: std::cell::Cell<u32>,
    /// Bumped on every mutation; outstanding cursors carry the generation
    /// they were created under and refuse to walk a mutated map.
    generation: u64,
    /// Reusable descent-path buffer for the slow insert/remove paths, so a
    /// split or rebalance never heap-allocates per operation.
    scratch_path: Vec<(u32, usize)>,
}

/// An owned cursor over a [`FrontierMap`], positioned on one entry.
///
/// Cursors are cheap (`Copy`) and walk the leaf linked list directly:
/// [`FrontierCursor::advance`] and [`FrontierCursor::prev`] are O(1)
/// amortized, against the O(log n) re-probe a `BTreeMap::range` frontier
/// pays per step.  A cursor is pinned to the map generation it was created
/// under; using it after any mutation panics (the sweep structures never hold
/// cursors across mutations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierCursor {
    leaf: u32,
    idx: u32,
    generation: u64,
}

impl<K: Copy + Ord, V> Default for FrontierMap<K, V> {
    fn default() -> Self {
        FrontierMap::new()
    }
}

impl<K: Copy + Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for FrontierMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Copy + Ord, V> FrontierMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FrontierMap {
            nodes: vec![Node::Leaf {
                keys: Vec::with_capacity(LEAF_CAP + 1),
                vals: Vec::with_capacity(LEAF_CAP + 1),
                prev: NONE_ID,
                next: NONE_ID,
            }],
            root: 0,
            len: 0,
            free: NONE_ID,
            hot: std::cell::Cell::new(NONE_ID),
            generation: 0,
            scratch_path: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the node arena allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::Leaf {
            keys: Vec::with_capacity(LEAF_CAP + 1),
            vals: Vec::with_capacity(LEAF_CAP + 1),
            prev: NONE_ID,
            next: NONE_ID,
        });
        self.root = 0;
        self.len = 0;
        self.free = NONE_ID;
        self.hot.set(NONE_ID);
        self.generation += 1;
    }

    // ---- lookups -------------------------------------------------------------

    /// Returns a reference to the value stored under `k`.
    pub fn get(&self, k: &K) -> Option<&V> {
        let leaf = self.locate_leaf(k);
        match &self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(k) {
                Ok(i) => Some(&vals[i]),
                Err(_) => None,
            },
            _ => unreachable!("locate_leaf returned a non-leaf"),
        }
    }

    /// Returns a mutable reference to the value stored under `k`.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        let leaf = self.locate_leaf(k);
        match &mut self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(k) {
                Ok(i) => Some(&mut vals[i]),
                Err(_) => None,
            },
            _ => unreachable!("locate_leaf returned a non-leaf"),
        }
    }

    /// `true` when `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// The entry with the smallest key, or `None` when empty.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        let leaf = self.edge_leaf(false);
        match &self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => keys.first().map(|k| (k, &vals[0])),
            _ => unreachable!(),
        }
    }

    /// The entry with the largest key, or `None` when empty.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        let leaf = self.edge_leaf(true);
        match &self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.len() {
                0 => None,
                n => Some((&keys[n - 1], &vals[n - 1])),
            },
            _ => unreachable!(),
        }
    }

    // ---- mutation ------------------------------------------------------------

    /// Inserts `v` under `k`, returning the previous value if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        self.generation += 1;
        // Hot path: the key belongs to the cached leaf (inside its occupied
        // range, or extending the map at either global end) and fits without
        // a split.
        if let Some(leaf) = self.hot_leaf_for_insert(&k) {
            let fits = match &self.nodes[leaf as usize] {
                Node::Leaf { keys, .. } => keys.len() < LEAF_CAP || keys.binary_search(&k).is_ok(),
                _ => false,
            };
            if fits {
                return self.insert_into_leaf_no_split(leaf, k, v);
            }
        }
        // Slow path: full descent with a recorded path for splits.  The path
        // buffer is owned by the map and reused across operations.
        let mut path = std::mem::take(&mut self.scratch_path);
        path.clear();
        let leaf = self.descend_recording(&k, &mut path);
        let (replaced, overflow) = {
            match &mut self.nodes[leaf as usize] {
                Node::Leaf { keys, vals, .. } => match keys.binary_search(&k) {
                    Ok(i) => (Some(std::mem::replace(&mut vals[i], v)), false),
                    Err(i) => {
                        keys.insert(i, k);
                        vals.insert(i, v);
                        (None, keys.len() > LEAF_CAP)
                    }
                },
                _ => unreachable!(),
            }
        };
        if replaced.is_none() {
            self.len += 1;
        }
        self.hot.set(leaf);
        if overflow {
            self.split_leaf(leaf, &path);
        }
        self.scratch_path = path;
        replaced
    }

    /// Returns a mutable reference to the value under `k`, inserting
    /// `default()` first when absent.
    ///
    /// Single descent: `locate_leaf` routes by separators (the hot hint is
    /// only taken when `k` lies inside the leaf's occupied range), so its
    /// answer is the correct insertion leaf even when `k` is absent.  When
    /// the leaf has room the entry is placed in-place; only an overflowing
    /// leaf falls back to the splitting insert.
    pub fn get_or_insert_with(&mut self, k: K, default: impl FnOnce() -> V) -> &mut V {
        let leaf = self.locate_leaf(&k);
        let (search, full) = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, .. } => (keys.binary_search(&k), keys.len() >= LEAF_CAP),
            _ => unreachable!("locate_leaf returned a non-leaf"),
        };
        let i = match search {
            Ok(i) => i,
            Err(_) if full => {
                self.insert(k, default());
                return self.get_mut(&k).expect("key inserted above");
            }
            Err(i) => {
                self.generation += 1;
                self.len += 1;
                match &mut self.nodes[leaf as usize] {
                    Node::Leaf { keys, vals, .. } => {
                        keys.insert(i, k);
                        vals.insert(i, default());
                    }
                    _ => unreachable!(),
                }
                i
            }
        };
        match &mut self.nodes[leaf as usize] {
            Node::Leaf { vals, .. } => &mut vals[i],
            _ => unreachable!(),
        }
    }

    /// Removes the entry under `k`, returning its value if present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        self.generation += 1;
        // Hot path: key in the cached leaf and removing cannot underflow.
        if let Some(leaf) = self.hot_leaf_covering(k) {
            let no_underflow = match &self.nodes[leaf as usize] {
                Node::Leaf { keys, .. } => keys.len() > LEAF_MIN,
                _ => false,
            };
            if no_underflow || self.root == leaf {
                if let Node::Leaf { keys, vals, .. } = &mut self.nodes[leaf as usize] {
                    if let Ok(i) = keys.binary_search(k) {
                        keys.remove(i);
                        let v = vals.remove(i);
                        self.len -= 1;
                        return Some(v);
                    }
                    return None;
                }
            }
        }
        // Slow path: full descent, remove, rebalance upward.  The path
        // buffer is owned by the map and reused across operations.
        let mut path = std::mem::take(&mut self.scratch_path);
        path.clear();
        let leaf = self.descend_recording(k, &mut path);
        let removed = match &mut self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(k) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            _ => unreachable!(),
        };
        if removed.is_some() {
            self.len -= 1;
            self.hot.set(leaf);
            self.rebalance_after_remove(leaf, &mut path);
        }
        self.scratch_path = path;
        removed
    }

    /// Replaces the contents with `items`, which must be sorted by strictly
    /// ascending key.  Leaves are packed bottom-up in O(n) without per-key
    /// descents.
    pub fn bulk_load(&mut self, items: impl IntoIterator<Item = (K, V)>) {
        self.generation += 1;
        self.nodes.clear();
        self.free = NONE_ID;
        self.hot.set(NONE_ID);

        let mut keys: Vec<K> = Vec::new();
        let mut vals: Vec<V> = Vec::new();
        for (k, v) in items {
            if let Some(last) = keys.last() {
                assert!(*last < k, "bulk_load input must be strictly ascending");
            }
            keys.push(k);
            vals.push(v);
        }
        self.len = keys.len();
        if keys.is_empty() {
            self.nodes.push(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                prev: NONE_ID,
                next: NONE_ID,
            });
            self.root = 0;
            return;
        }

        // Pack leaves with near-even sizes so no leaf starts underfull.
        let n = keys.len();
        let leaf_count = n.div_ceil(LEAF_CAP);
        let mut level: Vec<(K, u32)> = Vec::with_capacity(leaf_count);
        let mut vals_iter = vals.into_iter();
        let mut taken = 0usize;
        for i in 0..leaf_count {
            let size = (n * (i + 1)) / leaf_count - (n * i) / leaf_count;
            let leaf_keys: Vec<K> = keys[taken..taken + size].to_vec();
            let leaf_vals: Vec<V> = vals_iter.by_ref().take(size).collect();
            taken += size;
            let id = self.nodes.len() as u32;
            let prev = if i == 0 { NONE_ID } else { id - 1 };
            self.nodes.push(Node::Leaf {
                keys: leaf_keys,
                vals: leaf_vals,
                prev,
                next: NONE_ID,
            });
            if i > 0 {
                if let Node::Leaf { next, .. } = &mut self.nodes[(id - 1) as usize] {
                    *next = id;
                }
            }
            level.push((keys[taken - size], id));
        }

        // Build inner levels until a single root remains.
        while level.len() > 1 {
            let m = level.len();
            let group_count = m.div_ceil(INNER_CAP);
            let mut next_level: Vec<(K, u32)> = Vec::with_capacity(group_count);
            let mut at = 0usize;
            for g in 0..group_count {
                let size = (m * (g + 1)) / group_count - (m * g) / group_count;
                let chunk = &level[at..at + size];
                at += size;
                let id = self.nodes.len() as u32;
                self.nodes.push(Node::Inner {
                    seps: chunk[1..].iter().map(|&(k, _)| k).collect(),
                    children: chunk.iter().map(|&(_, id)| id).collect(),
                });
                next_level.push((chunk[0].0, id));
            }
            level = next_level;
        }
        self.root = level[0].1;
    }

    // ---- cursors and iteration ------------------------------------------------

    /// A cursor on the smallest entry, or `None` when empty.
    pub fn cursor_first(&self) -> Option<FrontierCursor> {
        if self.is_empty() {
            return None;
        }
        Some(FrontierCursor {
            leaf: self.edge_leaf(false),
            idx: 0,
            generation: self.generation,
        })
    }

    /// A cursor on the largest entry, or `None` when empty.
    pub fn cursor_last(&self) -> Option<FrontierCursor> {
        if self.is_empty() {
            return None;
        }
        let leaf = self.edge_leaf(true);
        let idx = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, .. } => keys.len() - 1,
            _ => unreachable!(),
        };
        Some(FrontierCursor {
            leaf,
            idx: idx as u32,
            generation: self.generation,
        })
    }

    /// A cursor on the first entry with key `>= k`, or `None` when every key
    /// is smaller.
    pub fn seek(&self, k: &K) -> Option<FrontierCursor> {
        self.seek_by(k, false)
    }

    /// A cursor on the first entry with key `> k` (strict successor), or
    /// `None` when every key is `<= k`.
    pub fn seek_gt(&self, k: &K) -> Option<FrontierCursor> {
        self.seek_by(k, true)
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> FrontierIter<'_, K, V> {
        FrontierIter {
            map: self,
            leaf: if self.is_empty() {
                NONE_ID
            } else {
                self.edge_leaf(false)
            },
            idx: 0,
        }
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    // ---- internals -----------------------------------------------------------

    fn seek_by(&self, k: &K, strict: bool) -> Option<FrontierCursor> {
        let leaf = self.locate_leaf(k);
        let (idx, next) = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, next, .. } => {
                let idx = if strict {
                    keys.partition_point(|key| key <= k)
                } else {
                    keys.partition_point(|key| key < k)
                };
                (idx, *next)
            }
            _ => unreachable!(),
        };
        let (leaf, idx) = if idx
            == match &self.nodes[leaf as usize] {
                Node::Leaf { keys, .. } => keys.len(),
                _ => unreachable!(),
            } {
            // Past the end of this leaf: the successor is the first entry of
            // the next leaf (non-root leaves are never empty).
            if next == NONE_ID {
                return None;
            }
            (next, 0)
        } else {
            (leaf, idx)
        };
        Some(FrontierCursor {
            leaf,
            idx: idx as u32,
            generation: self.generation,
        })
    }

    /// The leaf the key `k` routes to, using the hot hint when it covers `k`.
    fn locate_leaf(&self, k: &K) -> u32 {
        if let Some(leaf) = self.hot_leaf_covering(k) {
            return leaf;
        }
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => {
                    self.hot.set(id);
                    return id;
                }
                Node::Inner { seps, children } => {
                    id = children[seps.partition_point(|s| s <= k)];
                }
                Node::Free { .. } => unreachable!("descended into a freed node"),
            }
        }
    }

    /// Hot-leaf hit test for lookups/removals: the key must lie inside the
    /// leaf's *occupied* key range, which is always a sound routing answer.
    fn hot_leaf_covering(&self, k: &K) -> Option<u32> {
        let id = self.hot.get();
        if id == NONE_ID {
            return None;
        }
        match self.nodes.get(id as usize) {
            Some(Node::Leaf { keys, .. }) if !keys.is_empty() => {
                if *k >= keys[0] && *k <= *keys.last().expect("non-empty") {
                    Some(id)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Hot-leaf hit test for inserts: additionally accepts keys extending the
    /// map at either global end (the leftmost leaf owns `(-inf, ..]`, the
    /// rightmost `[.., +inf)`), which covers ascending and descending bulk
    /// insertion.  Keys falling in the gap *between* two leaves miss — only
    /// the separators, which we do not consult here, can route those.
    fn hot_leaf_for_insert(&self, k: &K) -> Option<u32> {
        let id = self.hot.get();
        if id == NONE_ID {
            return None;
        }
        match self.nodes.get(id as usize) {
            Some(Node::Leaf {
                keys, prev, next, ..
            }) if !keys.is_empty() => {
                let first = keys[0];
                let last = *keys.last().expect("non-empty");
                let covered = (*k >= first && *k <= last)
                    || (*prev == NONE_ID && *k < first)
                    || (*next == NONE_ID && *k > last);
                covered.then_some(id)
            }
            _ => None,
        }
    }

    /// Inserts into `leaf` knowing it cannot overflow (hot path).
    fn insert_into_leaf_no_split(&mut self, leaf: u32, k: K, v: V) -> Option<V> {
        match &mut self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(&k) {
                Ok(i) => Some(std::mem::replace(&mut vals[i], v)),
                Err(i) => {
                    keys.insert(i, k);
                    vals.insert(i, v);
                    self.len += 1;
                    None
                }
            },
            _ => unreachable!(),
        }
    }

    /// Full descent from the root recording `(inner node, child index)` pairs.
    fn descend_recording(&self, k: &K, path: &mut Vec<(u32, usize)>) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return id,
                Node::Inner { seps, children } => {
                    let ci = seps.partition_point(|s| s <= k);
                    path.push((id, ci));
                    id = children[ci];
                }
                Node::Free { .. } => unreachable!("descended into a freed node"),
            }
        }
    }

    /// Leftmost (`false`) or rightmost (`true`) leaf.
    fn edge_leaf(&self, rightmost: bool) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return id,
                Node::Inner { children, .. } => {
                    id = if rightmost {
                        *children.last().expect("inner nodes have children")
                    } else {
                        children[0]
                    };
                }
                Node::Free { .. } => unreachable!(),
            }
        }
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if self.free != NONE_ID {
            let id = self.free;
            match &self.nodes[id as usize] {
                Node::Free { next_free, .. } => self.free = *next_free,
                _ => unreachable!("free list points at a live node"),
            }
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, id: u32) {
        if self.hot.get() == id {
            self.hot.set(NONE_ID);
        }
        let old = std::mem::replace(
            &mut self.nodes[id as usize],
            Node::Free {
                next_free: self.free,
                keys: Vec::new(),
                vals: Vec::new(),
            },
        );
        // A retired leaf parks its buffers on the free entry for reuse.
        if let Node::Leaf {
            mut keys, mut vals, ..
        } = old
        {
            keys.clear();
            vals.clear();
            if let Node::Free {
                keys: spare_keys,
                vals: spare_vals,
                ..
            } = &mut self.nodes[id as usize]
            {
                *spare_keys = keys;
                *spare_vals = vals;
            }
        }
        self.free = id;
    }

    /// Leaf buffers for a fresh leaf: recycled from the free-list head when a
    /// retired leaf parked its buffers there, freshly reserved otherwise.
    fn take_leaf_buffers(&mut self) -> (Vec<K>, Vec<V>) {
        if self.free != NONE_ID {
            if let Node::Free { keys, vals, .. } = &mut self.nodes[self.free as usize] {
                if keys.capacity() > 0 {
                    return (std::mem::take(keys), std::mem::take(vals));
                }
            }
        }
        (
            Vec::with_capacity(LEAF_CAP + 1),
            Vec::with_capacity(LEAF_CAP + 1),
        )
    }

    /// Splits an overflowing leaf, inserting the new separator into the
    /// parent chain (splitting inner nodes upward as needed).
    fn split_leaf(&mut self, leaf: u32, path: &[(u32, usize)]) {
        let (sep, right_id) = {
            let (mut right_keys, mut right_vals) = self.take_leaf_buffers();
            let old_next = match &mut self.nodes[leaf as usize] {
                Node::Leaf {
                    keys, vals, next, ..
                } => {
                    let mid = keys.len() / 2;
                    right_keys.extend(keys.drain(mid..));
                    right_vals.extend(vals.drain(mid..));
                    *next
                }
                _ => unreachable!(),
            };
            let sep = right_keys[0];
            let right_id = self.alloc(Node::Leaf {
                keys: right_keys,
                vals: right_vals,
                prev: leaf,
                next: old_next,
            });
            if let Node::Leaf { next, .. } = &mut self.nodes[leaf as usize] {
                *next = right_id;
            }
            if old_next != NONE_ID {
                if let Node::Leaf { prev, .. } = &mut self.nodes[old_next as usize] {
                    *prev = right_id;
                }
            }
            (sep, right_id)
        };
        self.insert_into_parent(leaf, sep, right_id, path);
    }

    /// Inserts `(sep, right_id)` just after `left_id` in its parent,
    /// propagating inner splits to the root.
    fn insert_into_parent(&mut self, left_id: u32, sep: K, right_id: u32, path: &[(u32, usize)]) {
        let Some(&(parent, ci)) = path.last() else {
            // `left_id` was the root: grow a new root.
            let new_root = self.alloc(Node::Inner {
                seps: vec![sep],
                children: vec![left_id, right_id],
            });
            self.root = new_root;
            return;
        };
        let overflow = match &mut self.nodes[parent as usize] {
            Node::Inner { seps, children } => {
                debug_assert_eq!(children[ci], left_id);
                seps.insert(ci, sep);
                children.insert(ci + 1, right_id);
                children.len() > INNER_CAP
            }
            _ => unreachable!(),
        };
        if overflow {
            self.split_inner(parent, &path[..path.len() - 1]);
        }
    }

    /// Splits an overflowing inner node, pushing the middle separator up.
    fn split_inner(&mut self, inner: u32, path: &[(u32, usize)]) {
        let (up_sep, right_id) = {
            let (right_seps, right_children, up_sep) = match &mut self.nodes[inner as usize] {
                Node::Inner { seps, children } => {
                    let m = children.len() / 2;
                    let right_children = children.split_off(m);
                    let mut right_seps = seps.split_off(m - 1);
                    let up_sep = right_seps.remove(0);
                    (right_seps, right_children, up_sep)
                }
                _ => unreachable!(),
            };
            let right_id = self.alloc(Node::Inner {
                seps: right_seps,
                children: right_children,
            });
            (up_sep, right_id)
        };
        self.insert_into_parent(inner, up_sep, right_id, path);
    }

    /// Restores B+-tree invariants after a removal from `leaf`.
    fn rebalance_after_remove(&mut self, leaf: u32, path: &mut Vec<(u32, usize)>) {
        let underfull = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, .. } => keys.len() < LEAF_MIN,
            _ => unreachable!(),
        };
        if !underfull || leaf == self.root {
            return;
        }
        let (parent, ci) = *path.last().expect("non-root leaf has a parent");
        self.rebalance_leaf(parent, ci);
        self.rebalance_inner_chain(path);
    }

    /// Borrows into or merges the underfull leaf `children[ci]` of `parent`.
    fn rebalance_leaf(&mut self, parent: u32, ci: usize) {
        let (left_sib, right_sib, child) = match &self.nodes[parent as usize] {
            Node::Inner { children, .. } => (
                ci.checked_sub(1).map(|i| children[i]),
                children.get(ci + 1).copied(),
                children[ci],
            ),
            _ => unreachable!(),
        };
        let left_len = left_sib.map(|id| self.leaf_len(id));
        let right_len = right_sib.map(|id| self.leaf_len(id));

        if let (Some(left), Some(llen)) = (left_sib, left_len) {
            if llen > LEAF_MIN {
                // Rotate the left sibling's last entry to the child's front.
                let (k, v) = match &mut self.nodes[left as usize] {
                    Node::Leaf { keys, vals, .. } => (
                        keys.pop().expect("non-empty"),
                        vals.pop().expect("non-empty"),
                    ),
                    _ => unreachable!(),
                };
                match &mut self.nodes[child as usize] {
                    Node::Leaf { keys, vals, .. } => {
                        keys.insert(0, k);
                        vals.insert(0, v);
                    }
                    _ => unreachable!(),
                }
                match &mut self.nodes[parent as usize] {
                    Node::Inner { seps, .. } => seps[ci - 1] = k,
                    _ => unreachable!(),
                }
                return;
            }
        }
        if let (Some(right), Some(rlen)) = (right_sib, right_len) {
            if rlen > LEAF_MIN {
                // Rotate the right sibling's first entry to the child's back.
                let (k, v, new_first) = match &mut self.nodes[right as usize] {
                    Node::Leaf { keys, vals, .. } => {
                        let k = keys.remove(0);
                        let v = vals.remove(0);
                        (k, v, keys[0])
                    }
                    _ => unreachable!(),
                };
                match &mut self.nodes[child as usize] {
                    Node::Leaf { keys, vals, .. } => {
                        keys.push(k);
                        vals.push(v);
                    }
                    _ => unreachable!(),
                }
                match &mut self.nodes[parent as usize] {
                    Node::Inner { seps, .. } => seps[ci] = new_first,
                    _ => unreachable!(),
                }
                return;
            }
        }
        // Merge with a sibling (both at LEAF_MIN or below: the merged leaf
        // holds at most 2*LEAF_MIN - 1 <= LEAF_CAP entries).
        if left_sib.is_some() {
            self.merge_leaves(parent, ci - 1);
        } else {
            self.merge_leaves(parent, ci);
        }
    }

    /// Merges leaf `children[li + 1]` of `parent` into `children[li]` and
    /// drops the separator between them.
    fn merge_leaves(&mut self, parent: u32, li: usize) {
        let (left, right) = match &self.nodes[parent as usize] {
            Node::Inner { children, .. } => (children[li], children[li + 1]),
            _ => unreachable!(),
        };
        let (mut rkeys, mut rvals, rnext) = match &mut self.nodes[right as usize] {
            Node::Leaf {
                keys, vals, next, ..
            } => (std::mem::take(keys), std::mem::take(vals), *next),
            _ => unreachable!(),
        };
        match &mut self.nodes[left as usize] {
            Node::Leaf {
                keys, vals, next, ..
            } => {
                keys.append(&mut rkeys);
                vals.append(&mut rvals);
                *next = rnext;
            }
            _ => unreachable!(),
        }
        if rnext != NONE_ID {
            if let Node::Leaf { prev, .. } = &mut self.nodes[rnext as usize] {
                *prev = left;
            }
        }
        self.dealloc(right);
        match &mut self.nodes[parent as usize] {
            Node::Inner { seps, children } => {
                seps.remove(li);
                children.remove(li + 1);
            }
            _ => unreachable!(),
        }
    }

    /// Walks the recorded path upward fixing underfull inner nodes.
    fn rebalance_inner_chain(&mut self, path: &mut Vec<(u32, usize)>) {
        while let Some((node, _)) = path.pop() {
            let child_count = match &self.nodes[node as usize] {
                Node::Inner { children, .. } => children.len(),
                _ => unreachable!(),
            };
            if node == self.root {
                if child_count == 1 {
                    // Collapse a single-child root.
                    let only = match &self.nodes[node as usize] {
                        Node::Inner { children, .. } => children[0],
                        _ => unreachable!(),
                    };
                    self.root = only;
                    self.dealloc(node);
                }
                return;
            }
            if child_count >= INNER_MIN {
                return;
            }
            let (parent, ci) = *path.last().expect("non-root inner has a parent");
            self.rebalance_inner(parent, ci);
        }
    }

    /// Borrows into or merges the underfull inner node `children[ci]` of
    /// `parent`.
    fn rebalance_inner(&mut self, parent: u32, ci: usize) {
        let (left_sib, right_sib, child) = match &self.nodes[parent as usize] {
            Node::Inner { children, .. } => (
                ci.checked_sub(1).map(|i| children[i]),
                children.get(ci + 1).copied(),
                children[ci],
            ),
            _ => unreachable!(),
        };
        let sep_left = ci.checked_sub(1).map(|i| self.parent_sep(parent, i));
        let sep_right = self.parent_sep_opt(parent, ci);

        if let Some(left) = left_sib {
            if self.inner_child_count(left) > INNER_MIN {
                // Rotate: parent separator comes down, left's last separator
                // goes up, left's last child moves to the child's front.
                let (moved_child, new_up) = match &mut self.nodes[left as usize] {
                    Node::Inner { seps, children } => (
                        children.pop().expect("non-empty"),
                        seps.pop().expect("non-empty"),
                    ),
                    _ => unreachable!(),
                };
                let down = sep_left.expect("left sibling implies a separator");
                match &mut self.nodes[child as usize] {
                    Node::Inner { seps, children } => {
                        seps.insert(0, down);
                        children.insert(0, moved_child);
                    }
                    _ => unreachable!(),
                }
                match &mut self.nodes[parent as usize] {
                    Node::Inner { seps, .. } => seps[ci - 1] = new_up,
                    _ => unreachable!(),
                }
                return;
            }
        }
        if let Some(right) = right_sib {
            if self.inner_child_count(right) > INNER_MIN {
                let (moved_child, new_up) = match &mut self.nodes[right as usize] {
                    Node::Inner { seps, children } => (children.remove(0), seps.remove(0)),
                    _ => unreachable!(),
                };
                let down = sep_right.expect("right sibling implies a separator");
                match &mut self.nodes[child as usize] {
                    Node::Inner { seps, children } => {
                        seps.push(down);
                        children.push(moved_child);
                    }
                    _ => unreachable!(),
                }
                match &mut self.nodes[parent as usize] {
                    Node::Inner { seps, .. } => seps[ci] = new_up,
                    _ => unreachable!(),
                }
                return;
            }
        }
        if left_sib.is_some() {
            self.merge_inner(parent, ci - 1);
        } else {
            self.merge_inner(parent, ci);
        }
    }

    /// Merges inner `children[li + 1]` of `parent` into `children[li]`,
    /// pulling the separator between them down.
    fn merge_inner(&mut self, parent: u32, li: usize) {
        let (left, right, down) = match &self.nodes[parent as usize] {
            Node::Inner { seps, children } => (children[li], children[li + 1], seps[li]),
            _ => unreachable!(),
        };
        let (mut rseps, mut rchildren) = match &mut self.nodes[right as usize] {
            Node::Inner { seps, children } => (std::mem::take(seps), std::mem::take(children)),
            _ => unreachable!(),
        };
        match &mut self.nodes[left as usize] {
            Node::Inner { seps, children } => {
                seps.push(down);
                seps.append(&mut rseps);
                children.append(&mut rchildren);
            }
            _ => unreachable!(),
        }
        self.dealloc(right);
        match &mut self.nodes[parent as usize] {
            Node::Inner { seps, children } => {
                seps.remove(li);
                children.remove(li + 1);
            }
            _ => unreachable!(),
        }
    }

    fn leaf_len(&self, id: u32) -> usize {
        match &self.nodes[id as usize] {
            Node::Leaf { keys, .. } => keys.len(),
            _ => unreachable!("sibling of a leaf must be a leaf"),
        }
    }

    fn inner_child_count(&self, id: u32) -> usize {
        match &self.nodes[id as usize] {
            Node::Inner { children, .. } => children.len(),
            _ => unreachable!("sibling of an inner node must be an inner node"),
        }
    }

    fn parent_sep(&self, parent: u32, i: usize) -> K {
        match &self.nodes[parent as usize] {
            Node::Inner { seps, .. } => seps[i],
            _ => unreachable!(),
        }
    }

    fn parent_sep_opt(&self, parent: u32, i: usize) -> Option<K> {
        match &self.nodes[parent as usize] {
            Node::Inner { seps, .. } => seps.get(i).copied(),
            _ => unreachable!(),
        }
    }
}

impl FrontierCursor {
    /// The key of the entry under the cursor.
    pub fn key<'a, K: Copy + Ord, V>(&self, map: &'a FrontierMap<K, V>) -> &'a K {
        self.check(map);
        match &map.nodes[self.leaf as usize] {
            Node::Leaf { keys, .. } => &keys[self.idx as usize],
            _ => unreachable!("cursor points at a non-leaf"),
        }
    }

    /// The value of the entry under the cursor.
    pub fn value<'a, K: Copy + Ord, V>(&self, map: &'a FrontierMap<K, V>) -> &'a V {
        self.check(map);
        match &map.nodes[self.leaf as usize] {
            Node::Leaf { vals, .. } => &vals[self.idx as usize],
            _ => unreachable!("cursor points at a non-leaf"),
        }
    }

    /// The entry under the cursor.
    pub fn entry<'a, K: Copy + Ord, V>(&self, map: &'a FrontierMap<K, V>) -> (&'a K, &'a V) {
        self.check(map);
        match &map.nodes[self.leaf as usize] {
            Node::Leaf { keys, vals, .. } => (&keys[self.idx as usize], &vals[self.idx as usize]),
            _ => unreachable!("cursor points at a non-leaf"),
        }
    }

    /// Moves to the next entry in key order, or `None` at the end.
    pub fn advance<K: Copy + Ord, V>(self, map: &FrontierMap<K, V>) -> Option<FrontierCursor> {
        self.check(map);
        match &map.nodes[self.leaf as usize] {
            Node::Leaf { keys, next, .. } => {
                if (self.idx as usize) + 1 < keys.len() {
                    Some(FrontierCursor {
                        idx: self.idx + 1,
                        ..self
                    })
                } else if *next != NONE_ID {
                    Some(FrontierCursor {
                        leaf: *next,
                        idx: 0,
                        generation: self.generation,
                    })
                } else {
                    None
                }
            }
            _ => unreachable!("cursor points at a non-leaf"),
        }
    }

    /// Moves to the previous entry in key order, or `None` at the start.
    pub fn prev<K: Copy + Ord, V>(self, map: &FrontierMap<K, V>) -> Option<FrontierCursor> {
        self.check(map);
        match &map.nodes[self.leaf as usize] {
            Node::Leaf { prev, .. } => {
                if self.idx > 0 {
                    Some(FrontierCursor {
                        idx: self.idx - 1,
                        ..self
                    })
                } else if *prev != NONE_ID {
                    let prev_leaf = *prev;
                    let last = match &map.nodes[prev_leaf as usize] {
                        Node::Leaf { keys, .. } => keys.len() - 1,
                        _ => unreachable!(),
                    };
                    Some(FrontierCursor {
                        leaf: prev_leaf,
                        idx: last as u32,
                        generation: self.generation,
                    })
                } else {
                    None
                }
            }
            _ => unreachable!("cursor points at a non-leaf"),
        }
    }

    fn check<K: Copy + Ord, V>(&self, map: &FrontierMap<K, V>) {
        assert_eq!(
            self.generation, map.generation,
            "FrontierCursor used after the map was mutated"
        );
    }
}

/// Ordered iterator over a [`FrontierMap`] (see [`FrontierMap::iter`]).
pub struct FrontierIter<'a, K, V> {
    map: &'a FrontierMap<K, V>,
    leaf: u32,
    idx: usize,
}

impl<'a, K: Copy + Ord, V> Iterator for FrontierIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if self.leaf == NONE_ID {
                return None;
            }
            match &self.map.nodes[self.leaf as usize] {
                Node::Leaf {
                    keys, vals, next, ..
                } => {
                    if self.idx < keys.len() {
                        let i = self.idx;
                        self.idx += 1;
                        return Some((&keys[i], &vals[i]));
                    }
                    self.leaf = *next;
                    self.idx = 0;
                }
                _ => unreachable!("leaf chain contains a non-leaf"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    /// Structural invariants: node occupancy, separator routing, leaf chain
    /// order, and len bookkeeping.
    fn check_invariants(map: &FrontierMap<u64, u64>) {
        #[allow(clippy::too_many_arguments)]
        fn walk(
            map: &FrontierMap<u64, u64>,
            id: u32,
            lo: Option<u64>,
            hi: Option<u64>,
            is_root: bool,
            count: &mut usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) {
            match &map.nodes[id as usize] {
                Node::Leaf { keys, vals, .. } => {
                    assert_eq!(keys.len(), vals.len());
                    assert!(keys.len() <= LEAF_CAP, "leaf overflow");
                    if !is_root {
                        assert!(!keys.is_empty(), "empty non-root leaf");
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                    for k in keys {
                        if let Some(lo) = lo {
                            assert!(*k >= lo, "key below separator");
                        }
                        if let Some(hi) = hi {
                            assert!(*k < hi, "key at/above separator");
                        }
                    }
                    *count += keys.len();
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                        None => *leaf_depth = Some(depth),
                    }
                }
                Node::Inner { seps, children } => {
                    assert_eq!(seps.len() + 1, children.len());
                    assert!(children.len() >= 2, "inner node with < 2 children");
                    assert!(children.len() <= INNER_CAP, "inner overflow");
                    assert!(seps.windows(2).all(|w| w[0] < w[1]), "unsorted seps");
                    for (i, &c) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(seps[i - 1]) };
                        let chi = if i == children.len() - 1 {
                            hi
                        } else {
                            Some(seps[i])
                        };
                        walk(map, c, clo, chi, false, count, depth + 1, leaf_depth);
                    }
                }
                Node::Free { .. } => panic!("reachable free node"),
            }
        }
        let mut count = 0;
        let mut leaf_depth = None;
        walk(
            map,
            map.root,
            None,
            None,
            true,
            &mut count,
            0,
            &mut leaf_depth,
        );
        assert_eq!(count, map.len(), "len out of sync");

        // The leaf chain must visit every key in ascending order.
        let chained: Vec<u64> = map.keys().copied().collect();
        assert!(chained.windows(2).all(|w| w[0] < w[1]), "chain unsorted");
        assert_eq!(chained.len(), map.len());
    }

    #[test]
    fn empty_map() {
        let map: FrontierMap<u64, u64> = FrontierMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.get(&1), None);
        assert!(map.cursor_first().is_none());
        assert!(map.cursor_last().is_none());
        assert!(map.seek(&0).is_none());
        assert!(map.first_key_value().is_none());
        assert!(map.last_key_value().is_none());
        assert_eq!(map.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map = FrontierMap::new();
        for i in 0..1000u64 {
            assert_eq!(map.insert(i * 3, i), None);
        }
        assert_eq!(map.len(), 1000);
        check_invariants(&map);
        for i in 0..1000u64 {
            assert_eq!(map.get(&(i * 3)), Some(&i));
            assert_eq!(map.get(&(i * 3 + 1)), None);
        }
        assert_eq!(map.insert(30, 999), Some(10));
        assert_eq!(map.len(), 1000);
        for i in 0..1000u64 {
            let expect = if i == 10 { 999 } else { i };
            assert_eq!(map.remove(&(i * 3)), Some(expect), "i={i}");
        }
        assert!(map.is_empty());
        check_invariants(&map);
    }

    #[test]
    fn descending_inserts_hit_the_left_edge() {
        let mut map = FrontierMap::new();
        for i in (0..500u64).rev() {
            map.insert(i, i);
        }
        check_invariants(&map);
        assert_eq!(map.first_key_value(), Some((&0, &0)));
        assert_eq!(map.last_key_value(), Some((&499, &499)));
    }

    #[test]
    fn cursor_walks_both_ways() {
        let mut map = FrontierMap::new();
        for i in 0..200u64 {
            map.insert(i * 2, i);
        }
        let mut cur = map.cursor_first();
        let mut seen = Vec::new();
        while let Some(c) = cur {
            seen.push(*c.key(&map));
            cur = c.advance(&map);
        }
        assert_eq!(seen, (0..200u64).map(|i| i * 2).collect::<Vec<_>>());

        let mut cur = map.cursor_last();
        let mut back = Vec::new();
        while let Some(c) = cur {
            back.push(*c.key(&map));
            cur = c.prev(&map);
        }
        seen.reverse();
        assert_eq!(back, seen);
    }

    #[test]
    #[should_panic(expected = "mutated")]
    fn cursor_is_invalidated_by_mutation() {
        let mut map = FrontierMap::new();
        map.insert(1u64, 1u64);
        map.insert(2, 2);
        let cur = map.cursor_first().unwrap();
        map.insert(3, 3);
        let _ = cur.advance(&map);
    }

    #[test]
    fn seek_semantics() {
        let mut map = FrontierMap::new();
        for i in 0..100u64 {
            map.insert(i * 10, i);
        }
        let c = map.seek(&35).unwrap();
        assert_eq!(*c.key(&map), 40);
        let c = map.seek(&40).unwrap();
        assert_eq!(*c.key(&map), 40);
        let c = map.seek_gt(&40).unwrap();
        assert_eq!(*c.key(&map), 50);
        assert!(map.seek(&991).is_none());
        assert!(map.seek_gt(&990).is_none());
        let c = map.seek(&0).unwrap();
        assert_eq!(*c.key(&map), 0);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        for n in [0usize, 1, 5, 31, 32, 33, 200, 1024, 5000] {
            let mut bulk = FrontierMap::new();
            bulk.bulk_load((0..n as u64).map(|i| (i * 7, i)));
            assert_eq!(bulk.len(), n, "n={n}");
            check_invariants(&bulk);
            let collected: Vec<(u64, u64)> = bulk.iter().map(|(&k, &v)| (k, v)).collect();
            let expect: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 7, i)).collect();
            assert_eq!(collected, expect, "n={n}");
            // The loaded tree must support further mutation.
            bulk.insert(1, 1000);
            bulk.remove(&0);
            assert_eq!(bulk.get(&1), Some(&1000));
        }
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut map: FrontierMap<u64, Vec<u64>> = FrontierMap::new();
        map.get_or_insert_with(5, Vec::new).push(1);
        map.get_or_insert_with(5, || panic!("must not run")).push(2);
        assert_eq!(map.get(&5), Some(&vec![1, 2]));
    }

    #[test]
    fn differential_random_against_btreemap() {
        let mut seed = 0x5EEDu64;
        for round in 0..8 {
            let mut map: FrontierMap<u64, u64> = FrontierMap::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let key_space = [16u64, 64, 256, 4096][round % 4];
            for step in 0..4000 {
                let k = xorshift(&mut seed) % key_space;
                match xorshift(&mut seed) % 4 {
                    0 => {
                        assert_eq!(
                            map.remove(&k),
                            model.remove(&k),
                            "round={round} step={step}"
                        );
                    }
                    1 => {
                        let c = map.seek(&k);
                        let m = model.range(k..).next();
                        assert_eq!(
                            c.map(|c| (*c.key(&map), *c.value(&map))),
                            m.map(|(&k, &v)| (k, v)),
                            "seek round={round} step={step}"
                        );
                    }
                    _ => {
                        let v = xorshift(&mut seed);
                        assert_eq!(
                            map.insert(k, v),
                            model.insert(k, v),
                            "round={round} step={step}"
                        );
                    }
                }
                assert_eq!(map.len(), model.len());
            }
            check_invariants(&map);
            let a: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
            let b: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(a, b, "round={round}");
        }
    }

    #[test]
    fn monotone_churn_does_not_leak_nodes() {
        // The delta-main pattern: monotone key inserts at the right edge while
        // the oldest keys expire at the left edge.  Without rebalancing this
        // leaks underfull leaves; with it the arena stays proportional to the
        // live population.
        let mut map = FrontierMap::new();
        let window = 256u64;
        for i in 0..20_000u64 {
            map.insert(i, i);
            if i >= window {
                assert_eq!(map.remove(&(i - window)), Some(i - window));
            }
        }
        assert_eq!(map.len(), window as usize);
        check_invariants(&map);
        let live_nodes = map
            .nodes
            .iter()
            .filter(|n| !matches!(n, Node::Free { .. }))
            .count();
        // 256 entries need at least 8 full leaves; allow generous slack but
        // forbid the thousands a leak would produce.
        assert!(live_nodes < 64, "arena leaked: {live_nodes} live nodes");
        assert!(map.nodes.len() < 4096, "arena grew without bound");
    }

    #[test]
    fn clear_resets() {
        let mut map = FrontierMap::new();
        for i in 0..100u64 {
            map.insert(i, i);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.iter().count(), 0);
        map.insert(7, 7);
        assert_eq!(map.get(&7), Some(&7));
        check_invariants(&map);
    }
}
