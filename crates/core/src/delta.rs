//! [`DeltaDataset`]: a delta-main design — streaming updates over the
//! external-memory MaxRS pipeline.
//!
//! [`PreparedDataset`] realizes the paper's static
//! world: sort the objects by x once, answer every query sort-free.  A
//! `DeltaDataset` keeps that **sort-once invariant under updates**: the
//! disk-resident sorted **main** (base run) absorbs a stream of
//! [`Event`]s through an in-memory **delta** — inserts held in an x-ordered
//! index, deletions of base-resident objects as a tombstone multiset — and
//! every [`Query`] variant is answered by merging the delta into the
//! [`SweepPass`](crate::sweep::SweepPass) kernel's input as one merged
//! x-ordered stream ([`InputOrder::PresortedByX`](crate::InputOrder)): **no
//! re-sort, ever**.  Canonical max-regions (see [`crate::sweep`]) make the
//! answers bit-identical to preparing the net survivor set from scratch —
//! the property the `delta_determinism` differential suite replays
//! ≥10k-event sequences to enforce.
//!
//! # Compaction
//!
//! Queries over a large delta pay a merge scan per sweep pass, so a
//! **compaction** periodically propagates the delta into the main: one
//! `O(N/B)` sequential pass ([`maxrs_em::merge_run`]) builds a new sorted
//! base run (tombstoned records dropped, delta inserts merged in), the old
//! run is RAII-deleted, and the delta resets to empty.  Compaction is
//! **answer-invariant** — it changes the physical layout, never the record
//! multiset — and its I/O is metered with an [`IoSnapshot`] so tests can
//! hold it to a constant factor of the `2·N/B` merge floor.  It runs either
//! explicitly ([`DeltaDataset::compact`]) or automatically under a
//! [`CompactionPolicy`] threshold checked after every
//! [`apply`](DeltaDataset::apply) batch.
//!
//! # Event semantics
//!
//! Events are applied by the **shared** [`LiveSet`] helper — the same
//! duplicate-insert / unknown-delete / window-clamp rules as the in-memory
//! `StreamEngine`, so the two dynamic engines cannot drift apart (a
//! cross-engine equivalence test replays one sequence into both).
//!
//! # Serving
//!
//! A concurrent server never queries a `DeltaDataset` directly; it takes
//! immutable [`snapshot`](DeltaDataset::snapshot)s
//! ([`PreparedDataset<'static>`]) and swaps them atomically, so in-flight
//! queries keep answering against the pre-update snapshot while updates and
//! compaction proceed — see `maxrs-serve`'s `DatasetRegistry::apply`.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use maxrs_em::{merge_run, EmContext, IoSnapshot, TupleFile};
use maxrs_geometry::WeightedPoint;

use crate::batch::{run_batch_external, QueryBatch};
use crate::engine::{answer_in_memory, EngineOptions, ExecutionStrategy, MaxRsEngine};
use crate::error::{CoreError, Result};
use crate::events::{total_order_bits, Event, EventOutcome, LiveRecord, LiveSet};
use crate::frontier::FrontierMap;
use crate::prepared::PreparedDataset;
use crate::query::{Query, QueryRun};
use crate::records::ObjectRecord;

/// When a [`DeltaDataset`] propagates its delta into the base run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Only on explicit [`DeltaDataset::compact`] calls.
    #[default]
    Manual,
    /// Automatically after an [`apply`](DeltaDataset::apply) batch that
    /// leaves at least `max_delta` pending delta records (inserts +
    /// tombstones).
    DeltaThreshold {
        /// Pending-record threshold that triggers a compaction.
        max_delta: u64,
    },
}

/// Construction options of a [`DeltaDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeltaOptions {
    /// The compaction policy (default: [`CompactionPolicy::Manual`]).
    pub policy: CompactionPolicy,
    /// Optional sliding window auto-expiring objects (stream time units),
    /// with the same semantics as the stream engine's window.
    pub window: Option<f64>,
}

/// What one [`DeltaDataset::compact`] did — the update-propagation cost the
/// delta experiments measure and the property tests bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Blocks transferred by the merge pass (one sequential read of the old
    /// base + one sequential write of the new run, including its flush).
    pub io: IoSnapshot,
    /// Records in the base run before the merge.
    pub base_before: u64,
    /// Records in the new base run (= the net dataset size).
    pub base_after: u64,
    /// Delta records propagated (inserts + tombstones); zero means the
    /// compaction was a no-op and did no I/O.
    pub delta_records: u64,
}

/// The bit-exact identity of an [`ObjectRecord`] — tombstones match base
/// records by exact `(x, y, weight)` bit patterns (the record format carries
/// no id), counted as a multiset so duplicate records are handled correctly.
type RecordKey = (u64, u64, u64);

fn record_key(o: &WeightedPoint) -> RecordKey {
    (o.point.x.to_bits(), o.point.y.to_bits(), o.weight.to_bits())
}

/// Center-x order of the transformed rectangles == object x order, for every
/// query size (see [`crate::prepared`]); NaN is unreachable (validated).
fn by_x(a: &ObjectRecord, b: &ObjectRecord) -> Ordering {
    a.0.point
        .x
        .partial_cmp(&b.0.point.x)
        .unwrap_or(Ordering::Equal)
}

/// A dynamic dataset over the external-memory pipeline: a sorted base run
/// plus an in-memory delta, queried through one merged x-ordered stream and
/// periodically compacted (module docs).
///
/// ```
/// use maxrs_core::{DeltaDataset, DeltaOptions, Event, MaxRsEngine, Query};
/// use maxrs_geometry::RectSize;
///
/// let engine = MaxRsEngine::new();
/// let mut cafes = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
/// cafes
///     .apply(&[
///         Event::insert(1, 1.0, 1.0, 1.0, 0.0),
///         Event::insert(2, 1.4, 1.2, 1.0, 1.0),
///         Event::insert(3, 6.0, 6.0, 1.0, 2.0),
///     ])
///     .unwrap();
/// let best = cafes.run(&Query::max_rs(RectSize::square(2.0))).unwrap();
/// assert_eq!(best.answer.best_weight(), 2.0);
///
/// // Updates take effect immediately; compaction only changes the layout.
/// cafes.apply(&[Event::delete(2, 3.0)]).unwrap();
/// cafes.compact().unwrap();
/// let best = cafes.run(&Query::max_rs(RectSize::square(2.0))).unwrap();
/// assert_eq!(best.answer.best_weight(), 1.0);
/// ```
#[derive(Debug)]
pub struct DeltaDataset {
    opts: EngineOptions,
    policy: CompactionPolicy,
    ctx: Box<EmContext>,
    /// The sorted base run of the last compaction; `Some` until `Drop`.
    base: Option<TupleFile<ObjectRecord>>,
    base_len: u64,
    /// The canonical event semantics: ids, clock, window expiry.
    live: LiveSet,
    /// Ids of live objects whose record resides in `base`.
    in_base: HashSet<u64>,
    /// Delta inserts in x order, keyed by (x total-order bits, arrival seq),
    /// held in a locality-aware [`FrontierMap`]: arrivals append at the right
    /// edge (the hot-leaf fast path) and the merge walks a cursor.
    delta: FrontierMap<(u64, u64), WeightedPoint>,
    /// Locator of each delta insert for O(log n) removal by id.
    delta_index: HashMap<u64, (u64, u64)>,
    delta_seq: u64,
    /// Multiset of base records logically deleted since the last compaction.
    tombstones: HashMap<RecordKey, u64>,
    tombstone_count: u64,
    compactions: u64,
}

impl DeltaDataset {
    /// Creates an empty dynamic dataset with the `engine`'s configuration
    /// (its [`EngineOptions::em_config`] provisions the owned context) and
    /// the given delta options.
    pub fn new(engine: &MaxRsEngine, options: DeltaOptions) -> Result<Self> {
        let opts = *engine.options();
        let live = LiveSet::new(options.window).map_err(CoreError::from)?;
        let ctx = Box::new(EmContext::new(opts.em_config));
        let base = ctx.create_writer::<ObjectRecord>()?.finish()?;
        Ok(DeltaDataset {
            opts,
            policy: options.policy,
            ctx,
            base: Some(base),
            base_len: 0,
            live,
            in_base: HashSet::new(),
            delta: FrontierMap::new(),
            delta_index: HashMap::new(),
            delta_seq: 0,
            tombstones: HashMap::new(),
            tombstone_count: 0,
            compactions: 0,
        })
    }

    /// Number of live objects (base survivors + delta inserts).
    pub fn len(&self) -> u64 {
        self.live.len() as u64
    }

    /// `true` when no object is alive.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The stream clock (`-∞` before the first event).
    pub fn now(&self) -> f64 {
        self.live.now()
    }

    /// `true` when `id` refers to a live object.
    pub fn contains(&self, id: u64) -> bool {
        self.live.contains(id)
    }

    /// The live objects in insertion order — the net dataset a from-scratch
    /// [`MaxRsEngine::prepare`] would be given to answer the same queries.
    pub fn survivors(&self) -> Vec<WeightedPoint> {
        self.live.survivors()
    }

    /// Records in the sorted base run (may include records already
    /// tombstoned but not yet compacted away).
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    /// Pending delta records: in-memory inserts plus tombstones.  This is
    /// the quantity [`CompactionPolicy::DeltaThreshold`] bounds and the
    /// x-axis of the delta experiments.
    pub fn delta_len(&self) -> u64 {
        self.delta.len() as u64 + self.tombstone_count
    }

    /// How many compactions have run (explicit and policy-triggered).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The compaction policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// The dataset's owned external-memory context — for I/O accounting
    /// ([`EmContext::stats`], [`EmContext::disk_blocks`]) in tests and
    /// experiments.
    pub fn context(&self) -> &EmContext {
        &self.ctx
    }

    /// Applies a batch of events through the canonical [`LiveSet`]
    /// semantics, routing the effects into the delta: inserts enter the
    /// x-ordered in-memory index, removals of base-resident records become
    /// tombstones, removals of delta-resident records cancel in place.
    /// Stops at the first error (events before it are applied; as in the
    /// stream engine, a failed event's clock advance sticks).  After the
    /// batch, a [`CompactionPolicy::DeltaThreshold`] may trigger a
    /// compaction.
    ///
    /// Returns the accumulated outcome ([`EventOutcome::applied`] is the
    /// conjunction over the batch, `expired` the total).
    pub fn apply(&mut self, events: &[Event]) -> Result<EventOutcome> {
        let mut total = EventOutcome {
            applied: true,
            ..Default::default()
        };
        for event in events {
            let report = self.live.apply(event).map_err(CoreError::from)?;
            for gone in &report.expired {
                self.note_removed(gone);
            }
            if let Some(gone) = &report.deleted {
                self.note_removed(gone);
            }
            if let Some(added) = &report.inserted {
                self.note_inserted(added);
            }
            total.applied &= report.outcome.applied;
            total.expired += report.outcome.expired;
        }
        if let CompactionPolicy::DeltaThreshold { max_delta } = self.policy {
            if self.delta_len() >= max_delta && self.delta_len() > 0 {
                self.compact()?;
            }
        }
        Ok(total)
    }

    /// Answers one [`Query`] against the current net dataset — a batch of
    /// one, so the per-query and batched paths cannot diverge.
    pub fn run(&self, query: &Query) -> Result<QueryRun> {
        let mut runs = self.run_batch(std::slice::from_ref(query))?;
        Ok(runs.pop().expect("one run per query"))
    }

    /// Answers a batch of queries in shared sweep passes over **one merged
    /// x-ordered stream** of base + delta (no re-sort); with an empty delta
    /// the base run is swept directly.  Answers are bit-identical to a
    /// from-scratch [`MaxRsEngine::prepare`] over
    /// [`survivors`](DeltaDataset::survivors) — canonical max-regions make
    /// them independent of how the sorted stream was obtained.
    pub fn run_batch(&self, queries: &[Query]) -> Result<Vec<QueryRun>> {
        self.run_planned(&QueryBatch::new(queries)?)
    }

    /// [`run_batch`](DeltaDataset::run_batch) for a pre-planned
    /// [`QueryBatch`].
    pub fn run_planned(&self, batch: &QueryBatch) -> Result<Vec<QueryRun>> {
        let engine = MaxRsEngine::with_options(self.opts);
        let net = self.len();
        let (strategy, workers) = engine.select_for(net, self.ctx.config());
        if strategy == ExecutionStrategy::InMemory {
            // Mirror `prepare`: small nets are answered in memory at zero
            // I/O (bit-identical either way, by canonicalization).
            engine.guard_in_memory_capacity(net, self.ctx.config())?;
            let survivors = self.survivors();
            return Ok(batch
                .queries()
                .iter()
                .map(|query| QueryRun {
                    answer: answer_in_memory(&survivors, query),
                    strategy: ExecutionStrategy::InMemory,
                    workers: 1,
                    io: IoSnapshot::default(),
                })
                .collect());
        }
        let merged = if self.delta_len() == 0 {
            None
        } else {
            Some(self.build_merged()?)
        };
        let file = match &merged {
            Some(f) => f,
            None => self.base.as_ref().expect("base present until drop"),
        };
        let runs = run_batch_external(&self.ctx, file, batch, strategy, workers, &self.opts.exact);
        if let Some(f) = merged {
            // Delete the per-query merge file before propagating any run
            // error, so failed queries leave no orphans.
            let deleted = self.ctx.delete_file(f);
            let runs = runs?;
            deleted?;
            return Ok(runs);
        }
        runs
    }

    /// Propagates the delta into the base: **one** `O(N/B)` sequential
    /// merge pass ([`maxrs_em::merge_run`]) builds the new sorted run with
    /// tombstoned records dropped and delta inserts merged in, the old run
    /// is deleted, and the delta resets to empty.  Answer-invariant by
    /// construction (the record multiset is unchanged); a no-op at zero
    /// pending records.  The report meters the pass's I/O.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        let base_before = self.base_len;
        let delta_records = self.delta_len();
        if delta_records == 0 {
            return Ok(CompactionReport {
                io: IoSnapshot::default(),
                base_before,
                base_after: base_before,
                delta_records: 0,
            });
        }
        let before = self.ctx.stats();
        let merged = self.build_merged()?;
        // Materialize the new run: its dirty blocks belong to the
        // compaction, not to whichever query happens to evict them first
        // (mirrors `prepare`).
        self.ctx.flush_file(&merged)?;
        let io = self.ctx.stats().since(&before);
        if let Some(old) = self.base.take() {
            self.ctx.delete_file(old)?;
        }
        self.base_len = merged.len();
        self.base = Some(merged);
        self.delta.clear();
        self.delta_index.clear();
        self.delta_seq = 0;
        self.tombstones.clear();
        self.tombstone_count = 0;
        self.in_base = self.live.ids().collect();
        self.compactions += 1;
        Ok(CompactionReport {
            io,
            base_before,
            base_after: self.base_len,
            delta_records,
        })
    }

    /// An immutable [`PreparedDataset`] of the current net dataset, built
    /// **without sorting**: the merged x-ordered stream is copied into a
    /// fresh context of the same configuration.  Serving layers swap such
    /// snapshots atomically so readers are never torn by updates or
    /// compaction.
    pub fn snapshot(&self) -> Result<PreparedDataset<'static>> {
        let engine = MaxRsEngine::with_options(self.opts);
        let net = self.len();
        let (strategy, _) = engine.select_for(net, self.ctx.config());
        if strategy == ExecutionStrategy::InMemory {
            engine.guard_in_memory_capacity(net, self.ctx.config())?;
            return Ok(PreparedDataset::from_memory(self.opts, self.survivors()));
        }
        let merged = if self.delta_len() == 0 {
            None
        } else {
            Some(self.build_merged()?)
        };
        let source = match &merged {
            Some(f) => f,
            None => self.base.as_ref().expect("base present until drop"),
        };
        let ctx = Box::new(EmContext::new(self.opts.em_config));
        let copied = (|| {
            let before = ctx.stats();
            let mut reader = self.ctx.open_reader(source);
            let mut writer = ctx.create_writer::<ObjectRecord>()?;
            while let Some(rec) = reader.next_record()? {
                writer.push(&rec)?;
            }
            let sorted = writer.finish()?;
            ctx.flush_file(&sorted)?;
            Ok::<_, CoreError>((sorted, ctx.stats().since(&before)))
        })();
        if let Some(f) = merged {
            let deleted = self.ctx.delete_file(f);
            let (sorted, io) = copied?;
            deleted?;
            return Ok(PreparedDataset::from_sorted_owned(
                self.opts, ctx, sorted, io,
            ));
        }
        let (sorted, io) = copied?;
        Ok(PreparedDataset::from_sorted_owned(
            self.opts, ctx, sorted, io,
        ))
    }

    /// Builds the merged net run: base (minus tombstones) + delta inserts,
    /// in x order, in one sequential pass.
    fn build_merged(&self) -> Result<TupleFile<ObjectRecord>> {
        let base = self.base.as_ref().expect("base present until drop");
        // Walk the delta with an owned cursor instead of re-probing the map:
        // O(1) amortized per step through the leaf chain.
        let mut updates: Vec<ObjectRecord> = Vec::with_capacity(self.delta.len());
        let mut cur = self.delta.cursor_first();
        while let Some(c) = cur {
            updates.push(ObjectRecord(*c.value(&self.delta)));
            cur = c.advance(&self.delta);
        }
        let mut tombs = self.tombstones.clone();
        merge_run(
            &self.ctx,
            base,
            &updates,
            by_x,
            move |rec: &ObjectRecord| {
                let key = record_key(&rec.0);
                match tombs.get_mut(&key) {
                    Some(count) => {
                        *count -= 1;
                        if *count == 0 {
                            tombs.remove(&key);
                        }
                        false
                    }
                    None => true,
                }
            },
        )
        .map_err(CoreError::from)
    }

    fn note_inserted(&mut self, added: &LiveRecord) {
        let key = (total_order_bits(added.object.point.x), self.delta_seq);
        self.delta_seq += 1;
        self.delta.insert(key, added.object);
        self.delta_index.insert(added.id, key);
    }

    fn note_removed(&mut self, gone: &LiveRecord) {
        if self.in_base.remove(&gone.id) {
            *self.tombstones.entry(record_key(&gone.object)).or_insert(0) += 1;
            self.tombstone_count += 1;
        } else if let Some(key) = self.delta_index.remove(&gone.id) {
            self.delta.remove(&key);
        } else {
            debug_assert!(false, "live object was neither in base nor delta");
        }
    }
}

impl Drop for DeltaDataset {
    fn drop(&mut self) {
        if let Some(base) = self.base.take() {
            // Deleting can only fail if the file is already gone; either way
            // its blocks are no longer allocated.
            let _ = self.ctx.delete_file(base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactMaxRsOptions;
    use maxrs_em::EmConfig;
    use maxrs_geometry::RectSize;

    fn external_engine() -> MaxRsEngine {
        MaxRsEngine::with_options(EngineOptions {
            em_config: EmConfig::new(512, 32 * 512).unwrap(),
            exact: ExactMaxRsOptions {
                memory_rects: Some(64),
                parallelism: 1,
                ..Default::default()
            },
            force_strategy: None,
        })
    }

    fn insert_events(n: usize, seed: u64) -> Vec<Event> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|i| {
                Event::insert(
                    i as u64,
                    (next() % 1000) as f64,
                    (next() % 1000) as f64,
                    1.0 + (next() % 4) as f64,
                    i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn delta_answers_match_from_scratch_prepare() {
        let engine = external_engine();
        let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
        let events = insert_events(600, 3);
        delta.apply(&events).unwrap();
        delta.compact().unwrap();
        delta
            .apply(
                &insert_events(200, 9)[..]
                    .to_vec()
                    .iter()
                    .map(|e| match *e {
                        Event::Insert { id, object, at } => Event::Insert {
                            id: id + 1000,
                            object,
                            at: at + 1000.0,
                        },
                        other => other,
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        delta
            .apply(&[Event::delete(5, 2000.0), Event::delete(1003, 2000.0)])
            .unwrap();

        let prepared = engine.prepare(&delta.survivors()).unwrap();
        let query = Query::max_rs(RectSize::square(80.0));
        assert_eq!(
            delta.run(&query).unwrap().answer,
            prepared.run(&query).unwrap().answer
        );
    }

    #[test]
    fn compaction_is_answer_invariant_and_empties_the_delta() {
        let engine = external_engine();
        let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
        delta.apply(&insert_events(500, 7)).unwrap();
        delta
            .apply(&[Event::delete(3, 600.0), Event::delete(4, 600.0)])
            .unwrap();
        let query = Query::max_rs(RectSize::square(120.0));
        let before = delta.run(&query).unwrap().answer;
        assert!(delta.delta_len() > 0);
        let report = delta.compact().unwrap();
        assert_eq!(delta.delta_len(), 0);
        assert_eq!(report.base_after, delta.len());
        assert_eq!(delta.base_len(), 498);
        assert!(report.io.total() > 0);
        assert_eq!(delta.run(&query).unwrap().answer, before);
        // A second compaction is a free no-op.
        let noop = delta.compact().unwrap();
        assert_eq!(noop.delta_records, 0);
        assert_eq!(noop.io.total(), 0);
    }

    #[test]
    fn threshold_policy_compacts_automatically() {
        let engine = external_engine();
        let mut delta = DeltaDataset::new(
            &engine,
            DeltaOptions {
                policy: CompactionPolicy::DeltaThreshold { max_delta: 100 },
                window: None,
            },
        )
        .unwrap();
        delta.apply(&insert_events(350, 1)).unwrap();
        assert!(delta.compactions() >= 1);
        assert!(delta.delta_len() < 100);
    }

    #[test]
    fn window_expiry_flows_into_tombstones() {
        let engine = external_engine();
        let mut delta = DeltaDataset::new(
            &engine,
            DeltaOptions {
                policy: CompactionPolicy::Manual,
                window: Some(100.0),
            },
        )
        .unwrap();
        // Inserts arrive at t = 0..299 with a 100-unit window, so the 200
        // oldest expire while the batch is still streaming in.
        let outcome = delta.apply(&insert_events(300, 5)).unwrap();
        assert_eq!(outcome.expired, 200);
        delta.compact().unwrap();
        assert_eq!(delta.len(), 100);
        assert_eq!(delta.base_len(), 100);
        // By t = 500 every remaining window has ended; the expiries of
        // base-resident objects become tombstones.
        let outcome = delta.apply(&[Event::tick(500.0)]).unwrap();
        assert_eq!(outcome.expired, 100);
        assert!(delta.is_empty());
        assert_eq!(delta.delta_len(), 100, "expiries tombstone the base");
        delta.compact().unwrap();
        assert_eq!(delta.base_len(), 0);
    }

    #[test]
    fn duplicate_insert_is_a_checked_error() {
        let engine = MaxRsEngine::new();
        let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
        delta
            .apply(&[Event::insert(1, 0.0, 0.0, 1.0, 0.0)])
            .unwrap();
        let err = delta.apply(&[Event::insert(1, 5.0, 5.0, 1.0, 1.0)]);
        assert!(matches!(err, Err(CoreError::Event(_))), "{err:?}");
        // Unknown deletes are no-ops.
        let outcome = delta.apply(&[Event::delete(42, 2.0)]).unwrap();
        assert!(!outcome.applied);
    }

    #[test]
    fn dropping_returns_disk_blocks_to_baseline() {
        let engine = external_engine();
        let ctx_probe;
        {
            let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
            delta.apply(&insert_events(400, 11)).unwrap();
            delta.compact().unwrap();
            assert!(delta.context().disk_blocks() > 0);
            ctx_probe = delta.context().disk_blocks();
            assert!(ctx_probe > 0);
        }
        // The context died with the dataset; nothing to leak.  The stronger
        // invariant — merge temporaries never outlive their query — is
        // asserted against a live context:
        let mut delta = DeltaDataset::new(&engine, DeltaOptions::default()).unwrap();
        delta.apply(&insert_events(400, 11)).unwrap();
        delta.compact().unwrap();
        delta.context().flush_all().unwrap();
        let baseline = delta.context().disk_blocks();
        let files = delta.context().num_files();
        delta
            .apply(
                &insert_events(50, 13)
                    .iter()
                    .map(|e| match *e {
                        Event::Insert { id, object, at } => Event::Insert {
                            id: id + 500,
                            object,
                            at,
                        },
                        other => other,
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let query = Query::max_rs(RectSize::square(100.0));
        delta.run(&query).unwrap();
        delta.context().flush_all().unwrap();
        assert_eq!(delta.context().num_files(), files, "merge file leaked");
        assert_eq!(delta.context().disk_blocks(), baseline, "blocks leaked");
    }
}
